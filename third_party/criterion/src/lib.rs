//! Offline stand-in for `criterion`.
//!
//! The build environment has no crates.io access, so the real `criterion`
//! cannot be fetched. This crate keeps the same registration API
//! (`criterion_group!`/`criterion_main!`, `Criterion::benchmark_group`,
//! `Bencher::iter`/`iter_batched`) but runs each benchmark body a small
//! fixed number of times and prints a rough mean — enough to keep
//! `cargo bench`/`cargo test --benches` compiling and executing, without
//! statistical rigor.

use std::hint::black_box as std_black_box;
use std::time::Instant;

/// Re-export of `std::hint::black_box` under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Criterion {
        // Keep the configured shape but clamp hard: this stub is for
        // smoke-running benches, not measurement.
        self.sample_size = n.clamp(1, 20);
        self
    }

    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
        }
    }

    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(id, self.sample_size, f);
        self
    }
}

pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id);
        run_bench(&full, self.criterion.sample_size, f);
        self
    }

    pub fn finish(self) {}
}

fn run_bench<F: FnMut(&mut Bencher)>(id: &str, samples: usize, mut f: F) {
    let mut bencher = Bencher {
        iters: samples.max(1) as u64,
        elapsed_ns: 0,
        timed_iters: 0,
    };
    f(&mut bencher);
    let mean = bencher
        .elapsed_ns
        .checked_div(bencher.timed_iters)
        .unwrap_or(0);
    println!(
        "bench {id}: ~{mean} ns/iter ({} iters)",
        bencher.timed_iters
    );
}

pub struct Bencher {
    iters: u64,
    elapsed_ns: u64,
    timed_iters: u64,
}

impl Bencher {
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std_black_box(routine());
        }
        self.elapsed_ns += start.elapsed().as_nanos() as u64;
        self.timed_iters += self.iters;
    }

    pub fn iter_batched<I, R, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> R,
    {
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            std_black_box(routine(input));
            self.elapsed_ns += start.elapsed().as_nanos() as u64;
            self.timed_iters += 1;
        }
    }
}

#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_bodies_run() {
        let mut c = Criterion::default().sample_size(3);
        let mut count = 0u32;
        {
            let mut g = c.benchmark_group("grp");
            g.bench_function("inc", |b| b.iter(|| count += 1));
            g.finish();
        }
        assert!(count >= 3);

        let mut batched = 0u32;
        c.bench_function("batched", |b| {
            b.iter_batched(|| 2u32, |x| batched += x, BatchSize::SmallInput)
        });
        assert!(batched >= 6);
    }
}
