//! The JSON value tree, its accessors, and the `json!` macro.

use crate::{Deserialize, Error, Number, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// The map type behind [`Value::Object`]. The real crate's default build
/// also sorts keys, so a `BTreeMap` alias is behavior-compatible.
pub type Map<K = String, V = Value> = BTreeMap<K, V>;

/// A JSON value.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum Value {
    #[default]
    Null,
    Bool(bool),
    Number(Number),
    String(String),
    Array(Vec<Value>),
    Object(Map<String, Value>),
}

static NULL: Value = Value::Null;

impl Value {
    /// Member of an object by key, `None` for non-objects/missing keys.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(m) => m.get(key),
            _ => None,
        }
    }

    /// Mutable member of an object by key.
    pub fn get_mut(&mut self, key: &str) -> Option<&mut Value> {
        match self {
            Value::Object(m) => m.get_mut(key),
            _ => None,
        }
    }

    /// Whether this is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Whether this is a boolean.
    pub fn is_boolean(&self) -> bool {
        matches!(self, Value::Bool(_))
    }

    /// Whether this is a number.
    pub fn is_number(&self) -> bool {
        matches!(self, Value::Number(_))
    }

    /// Whether this is an integer representable as `i64`.
    pub fn is_i64(&self) -> bool {
        matches!(self, Value::Number(n) if n.is_i64())
    }

    /// Whether this is a non-negative integer.
    pub fn is_u64(&self) -> bool {
        matches!(self, Value::Number(n) if n.is_u64())
    }

    /// Whether this is a float.
    pub fn is_f64(&self) -> bool {
        matches!(self, Value::Number(n) if n.is_f64())
    }

    /// Whether this is a string.
    pub fn is_string(&self) -> bool {
        matches!(self, Value::String(_))
    }

    /// Whether this is an array.
    pub fn is_array(&self) -> bool {
        matches!(self, Value::Array(_))
    }

    /// Whether this is an object.
    pub fn is_object(&self) -> bool {
        matches!(self, Value::Object(_))
    }

    /// The boolean payload, if any.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as `i64`, if it is an in-range integer.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) => n.as_i64(),
            _ => None,
        }
    }

    /// The value as `u64`, if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }

    /// The value as `f64`, if it is numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => n.as_f64(),
            _ => None,
        }
    }

    /// The string payload, if any.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The array payload, if any.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// Mutable array payload, if any.
    pub fn as_array_mut(&mut self) -> Option<&mut Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The object payload, if any.
    pub fn as_object(&self) -> Option<&Map<String, Value>> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// Mutable object payload, if any.
    pub fn as_object_mut(&mut self) -> Option<&mut Map<String, Value>> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// Replace with `Null`, returning the previous value.
    pub fn take(&mut self) -> Value {
        std::mem::take(self)
    }
}

impl fmt::Display for Value {
    /// Compact JSON text (the same bytes [`crate::to_string`] produces).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        crate::ser::write_value(f, self)
    }
}

impl std::ops::Index<&str> for Value {
    type Output = Value;

    /// Object member access; `Null` for non-objects and missing keys.
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<String> for Value {
    type Output = Value;

    fn index(&self, key: String) -> &Value {
        &self[key.as_str()]
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;

    /// Array element access; `Null` out of bounds or for non-arrays.
    fn index(&self, idx: usize) -> &Value {
        match self {
            Value::Array(a) => a.get(idx).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Value {
        Value::Bool(b)
    }
}

impl From<String> for Value {
    fn from(s: String) -> Value {
        Value::String(s)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Value {
        Value::String(s.to_string())
    }
}

impl From<Number> for Value {
    fn from(n: Number) -> Value {
        Value::Number(n)
    }
}

impl From<f64> for Value {
    fn from(f: f64) -> Value {
        Number::from_f64(f)
            .map(Value::Number)
            .unwrap_or(Value::Null)
    }
}

impl From<f32> for Value {
    fn from(f: f32) -> Value {
        Value::from(f64::from(f))
    }
}

macro_rules! impl_value_from_int {
    ($($t:ty),*) => {$(
        impl From<$t> for Value {
            fn from(i: $t) -> Value {
                Value::Number(Number::from(i))
            }
        }
    )*};
}

impl_value_from_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(items: Vec<T>) -> Value {
        Value::Array(items.into_iter().map(Into::into).collect())
    }
}

impl<T: Into<Value>> From<Option<T>> for Value {
    fn from(opt: Option<T>) -> Value {
        opt.map(Into::into).unwrap_or(Value::Null)
    }
}

impl From<Map<String, Value>> for Value {
    fn from(m: Map<String, Value>) -> Value {
        Value::Object(m)
    }
}

impl FromIterator<Value> for Value {
    fn from_iter<I: IntoIterator<Item = Value>>(iter: I) -> Value {
        Value::Array(iter.into_iter().collect())
    }
}

/// Convert any serializable value into a [`Value`].
///
/// Unlike the real crate this cannot fail (the value model is total), so
/// it returns `Value` directly; `json!` relies on it for interpolation.
pub fn to_value<T: Serialize + ?Sized>(v: &T) -> Value {
    v.to_json_value()
}

// --- Serialize / Deserialize impls for the standard types the workspace
// --- feeds through `json!`, `to_vec`, and `from_slice`.

impl Serialize for Value {
    fn to_json_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_json_value(v: &Value) -> Result<Value, Error> {
        Ok(v.clone())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_json_value(&self) -> Value {
        (**self).to_json_value()
    }
}

impl Serialize for bool {
    fn to_json_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Serialize for str {
    fn to_json_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for String {
    fn to_json_value(&self) -> Value {
        Value::String(self.clone())
    }
}

macro_rules! impl_serde_num {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json_value(&self) -> Value {
                Value::Number(Number::from(*self))
            }
        }
    )*};
}

impl_serde_num!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_json_value(&self) -> Value {
        Value::from(*self)
    }
}

impl Serialize for f32 {
    fn to_json_value(&self) -> Value {
        Value::from(*self)
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_json_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_json_value).collect())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_json_value(&self) -> Value {
        self.as_slice().to_json_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_json_value(&self) -> Value {
        match self {
            Some(v) => v.to_json_value(),
            None => Value::Null,
        }
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_json_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_json_value()))
                .collect(),
        )
    }
}

macro_rules! impl_de_int {
    ($($t:ty: $via:ident),*) => {$(
        impl Deserialize for $t {
            fn from_json_value(v: &Value) -> Result<$t, Error> {
                v.$via()
                    .and_then(|n| <$t>::try_from(n).ok())
                    .ok_or_else(|| Error::msg(concat!("expected ", stringify!($t))))
            }
        }
    )*};
}

impl_de_int!(u8: as_u64, u16: as_u64, u32: as_u64, u64: as_u64, usize: as_u64,
             i8: as_i64, i16: as_i64, i32: as_i64, i64: as_i64, isize: as_i64);

impl Deserialize for bool {
    fn from_json_value(v: &Value) -> Result<bool, Error> {
        v.as_bool().ok_or_else(|| Error::msg("expected bool"))
    }
}

impl Deserialize for f64 {
    fn from_json_value(v: &Value) -> Result<f64, Error> {
        v.as_f64().ok_or_else(|| Error::msg("expected number"))
    }
}

impl Deserialize for String {
    fn from_json_value(v: &Value) -> Result<String, Error> {
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| Error::msg("expected string"))
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_json_value(v: &Value) -> Result<Vec<T>, Error> {
        v.as_array()
            .ok_or_else(|| Error::msg("expected array"))?
            .iter()
            .map(T::from_json_value)
            .collect()
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_json_value(v: &Value) -> Result<Option<T>, Error> {
        if v.is_null() {
            Ok(None)
        } else {
            T::from_json_value(v).map(Some)
        }
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_json_value(v: &Value) -> Result<BTreeMap<String, V>, Error> {
        v.as_object()
            .ok_or_else(|| Error::msg("expected object"))?
            .iter()
            .map(|(k, val)| Ok((k.clone(), V::from_json_value(val)?)))
            .collect()
    }
}

/// Build a [`Value`] from JSON-shaped syntax with expression interpolation.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    (true) => { $crate::Value::Bool(true) };
    (false) => { $crate::Value::Bool(false) };
    ([]) => { $crate::Value::Array(::std::vec::Vec::new()) };
    ([ $($tt:tt)+ ]) => { $crate::json_internal!(@array [] $($tt)+) };
    ({}) => { $crate::Value::Object($crate::Map::new()) };
    ({ $($tt:tt)+ }) => {{
        let mut object = $crate::Map::new();
        $crate::json_internal!(@object object () ($($tt)+) ($($tt)+));
        $crate::Value::Object(object)
    }};
    ($other:expr) => { $crate::to_value(&$other) };
}

/// Recursive muncher behind [`json!`]. Not public API.
#[macro_export]
#[doc(hidden)]
macro_rules! json_internal {
    // ---- arrays: accumulate parsed elements, munch one element at a time
    (@array [$($elems:expr),*]) => {
        $crate::Value::Array(::std::vec![$($elems),*])
    };
    (@array [$($elems:expr),*] null $(, $($rest:tt)*)?) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json!(null)] $($($rest)*)?)
    };
    (@array [$($elems:expr),*] true $(, $($rest:tt)*)?) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json!(true)] $($($rest)*)?)
    };
    (@array [$($elems:expr),*] false $(, $($rest:tt)*)?) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json!(false)] $($($rest)*)?)
    };
    (@array [$($elems:expr),*] [$($arr:tt)*] $(, $($rest:tt)*)?) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json!([$($arr)*])] $($($rest)*)?)
    };
    (@array [$($elems:expr),*] {$($map:tt)*} $(, $($rest:tt)*)?) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json!({$($map)*})] $($($rest)*)?)
    };
    (@array [$($elems:expr),*] $next:expr $(, $($rest:tt)*)?) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json!($next)] $($($rest)*)?)
    };

    // ---- objects: munch "key: value," pairs into `$object`
    (@object $object:ident () () ()) => {};
    // insert a completed entry whose value was a munched tt-group
    (@object $object:ident [$key:expr] ($value:expr) , $($rest:tt)*) => {
        $object.insert(($key).into(), $value);
        $crate::json_internal!(@object $object () ($($rest)*) ($($rest)*));
    };
    (@object $object:ident [$key:expr] ($value:expr)) => {
        $object.insert(($key).into(), $value);
    };
    // next entry: key literal followed by a value of each shape
    (@object $object:ident ($($key:tt)+) (: null $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json!(null)) $($rest)*);
    };
    (@object $object:ident ($($key:tt)+) (: true $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json!(true)) $($rest)*);
    };
    (@object $object:ident ($($key:tt)+) (: false $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json!(false)) $($rest)*);
    };
    (@object $object:ident ($($key:tt)+) (: [$($arr:tt)*] $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json!([$($arr)*])) $($rest)*);
    };
    (@object $object:ident ($($key:tt)+) (: {$($map:tt)*} $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json!({$($map)*})) $($rest)*);
    };
    (@object $object:ident ($($key:tt)+) (: $value:expr , $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json!($value)) , $($rest)*);
    };
    (@object $object:ident ($($key:tt)+) (: $value:expr) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json!($value)));
    };
    // accumulate key tokens until the ':' is reached
    (@object $object:ident ($($key:tt)*) ($tt:tt $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object ($($key)* $tt) ($($rest)*) $copy);
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interpolation_accepts_references_and_exprs() {
        let n: i64 = 7;
        let r = &n;
        let s = format!("x{n}");
        let v = json!({"n": r, "s": s, "list": (0..3).map(Value::from).collect::<Vec<_>>()});
        assert_eq!(v["n"], json!(7));
        assert_eq!(v["s"], json!("x7"));
        assert_eq!(v["list"][2], json!(2));
    }

    #[test]
    fn trailing_commas_allowed() {
        let v = json!({"a": 1,});
        assert_eq!(v["a"].as_i64(), Some(1));
        let a = json!([1, 2,]);
        assert_eq!(a[1].as_i64(), Some(2));
    }

    #[test]
    fn option_maps_to_null() {
        let some: Option<i64> = Some(3);
        let none: Option<i64> = None;
        assert_eq!(json!(some), json!(3));
        assert!(json!(none).is_null());
    }

    #[test]
    fn take_leaves_null() {
        let mut v = json!({"a": 1});
        let t = v.take();
        assert!(v.is_null());
        assert_eq!(t["a"].as_i64(), Some(1));
    }
}
