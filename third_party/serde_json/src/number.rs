//! JSON numbers: integers kept exact, floats kept finite.

use std::fmt;

#[derive(Debug, Clone, Copy)]
enum N {
    /// Non-negative integer.
    PosInt(u64),
    /// Negative integer.
    NegInt(i64),
    /// Finite float.
    Float(f64),
}

/// A JSON number. Integers are stored exactly; floats are always finite
/// ([`Number::from_f64`] rejects NaN and infinities, as the real crate
/// does).
#[derive(Debug, Clone, Copy)]
pub struct Number(N);

impl Number {
    /// A float number, or `None` for NaN/infinite input.
    pub fn from_f64(f: f64) -> Option<Number> {
        if f.is_finite() {
            Some(Number(N::Float(f)))
        } else {
            None
        }
    }

    /// The value as `i64` if it is an integer in range.
    pub fn as_i64(&self) -> Option<i64> {
        match self.0 {
            N::PosInt(u) => i64::try_from(u).ok(),
            N::NegInt(i) => Some(i),
            N::Float(_) => None,
        }
    }

    /// The value as `u64` if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self.0 {
            N::PosInt(u) => Some(u),
            N::NegInt(_) | N::Float(_) => None,
        }
    }

    /// The value as `f64` (integers convert losslessly up to 2^53).
    pub fn as_f64(&self) -> Option<f64> {
        match self.0 {
            N::PosInt(u) => Some(u as f64),
            N::NegInt(i) => Some(i as f64),
            N::Float(f) => Some(f),
        }
    }

    /// Whether the number is an integer representable as `i64`.
    pub fn is_i64(&self) -> bool {
        self.as_i64().is_some()
    }

    /// Whether the number is a non-negative integer.
    pub fn is_u64(&self) -> bool {
        matches!(self.0, N::PosInt(_))
    }

    /// Whether the number is a float.
    pub fn is_f64(&self) -> bool {
        matches!(self.0, N::Float(_))
    }
}

impl PartialEq for Number {
    fn eq(&self, other: &Number) -> bool {
        match (self.0, other.0) {
            (N::PosInt(a), N::PosInt(b)) => a == b,
            (N::NegInt(a), N::NegInt(b)) => a == b,
            // NegInt is only constructed for negatives, so cross-variant
            // integers are never numerically equal.
            (N::Float(a), N::Float(b)) => a == b,
            _ => false,
        }
    }
}

impl fmt::Display for Number {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.0 {
            N::PosInt(u) => write!(f, "{u}"),
            N::NegInt(i) => write!(f, "{i}"),
            // {:?} keeps a trailing ".0" on integral floats, matching the
            // real crate's output (and keeping floats distinguishable).
            N::Float(x) => write!(f, "{x:?}"),
        }
    }
}

macro_rules! impl_from_unsigned {
    ($($t:ty),*) => {$(
        impl From<$t> for Number {
            fn from(u: $t) -> Number {
                Number(N::PosInt(u as u64))
            }
        }
    )*};
}

macro_rules! impl_from_signed {
    ($($t:ty),*) => {$(
        impl From<$t> for Number {
            fn from(i: $t) -> Number {
                if i < 0 {
                    Number(N::NegInt(i as i64))
                } else {
                    Number(N::PosInt(i as u64))
                }
            }
        }
    )*};
}

impl_from_unsigned!(u8, u16, u32, u64, usize);
impl_from_signed!(i8, i16, i32, i64, isize);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn integer_equality_across_signedness() {
        assert_eq!(Number::from(5i64), Number::from(5u64));
        assert_ne!(Number::from(-5i64), Number::from(5u64));
    }

    #[test]
    fn float_never_equals_integer() {
        assert_ne!(Number::from_f64(5.0).unwrap(), Number::from(5i64));
    }

    #[test]
    fn from_f64_rejects_non_finite() {
        assert!(Number::from_f64(f64::NAN).is_none());
        assert!(Number::from_f64(f64::INFINITY).is_none());
    }

    #[test]
    fn display_keeps_float_marker() {
        assert_eq!(Number::from_f64(2.0).unwrap().to_string(), "2.0");
        assert_eq!(Number::from(2u64).to_string(), "2");
        assert_eq!(Number::from(-7i64).to_string(), "-7");
    }

    #[test]
    fn conversions() {
        let n = Number::from(-3i64);
        assert_eq!(n.as_i64(), Some(-3));
        assert_eq!(n.as_u64(), None);
        assert_eq!(n.as_f64(), Some(-3.0));
        assert!(n.is_i64() && !n.is_u64() && !n.is_f64());
    }
}
