//! Offline drop-in subset of `serde_json`.
//!
//! The build environment for this workspace has no access to a crates.io
//! registry, so the real `serde_json` cannot be fetched. This crate
//! implements the subset of its API the workspace uses: [`Value`],
//! [`Number`], [`Map`], the [`json!`] macro, a JSON parser/printer, and
//! value-model [`Serialize`]/[`Deserialize`] traits (re-exported by the
//! sibling `serde` stub) backing `to_string`/`to_vec`/`from_str`/
//! `from_slice`.
//!
//! Fidelity notes:
//! - `Map` is a `BTreeMap` alias (the real crate's default, sorted keys);
//! - number equality follows the real crate: integers compare across
//!   signedness by numeric value, floats only equal floats;
//! - serialization is compact (no pretty printer) and deterministic.

mod de;
mod number;
mod ser;
mod value;

pub use de::{from_slice, from_str};
pub use number::Number;
pub use ser::{to_string, to_vec};
pub use value::{to_value, Map, Value};

use std::fmt;

/// Error raised by parsing or (de)serialization.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
    /// 1-based line of the parse error (0 for data-model errors).
    line: usize,
    /// 1-based column of the parse error (0 for data-model errors).
    column: usize,
}

impl Error {
    pub(crate) fn msg(msg: impl Into<String>) -> Error {
        Error {
            msg: msg.into(),
            line: 0,
            column: 0,
        }
    }

    /// Data-model error raised by a [`Deserialize`] impl (no position).
    pub fn custom(msg: impl Into<String>) -> Error {
        Error::msg(msg)
    }

    pub(crate) fn at(msg: impl Into<String>, line: usize, column: usize) -> Error {
        Error {
            msg: msg.into(),
            line,
            column,
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line > 0 {
            write!(
                f,
                "{} at line {} column {}",
                self.msg, self.line, self.column
            )
        } else {
            f.write_str(&self.msg)
        }
    }
}

impl std::error::Error for Error {}

/// Serialize into the JSON data model.
///
/// This is a value-model trait (`self` → [`Value`]) rather than the real
/// serde's visitor architecture; it is what the workspace's manual impls
/// provide and what [`to_string`]/[`to_vec`] consume.
pub trait Serialize {
    /// The JSON value representing `self`.
    fn to_json_value(&self) -> Value;
}

/// Deserialize from the JSON data model.
pub trait Deserialize: Sized {
    /// Reconstruct `Self` from a JSON value.
    fn from_json_value(v: &Value) -> Result<Self, Error>;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn macro_builds_nested_values() {
        let v = json!({
            "a": 1,
            "b": [true, null, "s"],
            "c": {"inner": 2.5},
        });
        assert_eq!(v["a"], json!(1));
        assert_eq!(v["b"][0], Value::Bool(true));
        assert!(v["b"][1].is_null());
        assert_eq!(v["c"]["inner"].as_f64(), Some(2.5));
    }

    #[test]
    fn round_trips_through_text() {
        let v = json!({"k": [1, -2, 3.5, "x\n\"y\"", {"n": null}], "z": true});
        let s = to_string(&v).unwrap();
        let back: Value = from_str(&s).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn integers_compare_across_signedness() {
        assert_eq!(json!(1i64), json!(1u64));
        assert_ne!(json!(1), json!(1.0));
    }

    #[test]
    fn missing_index_is_null() {
        let v = json!({"a": 1});
        assert!(v["nope"].is_null());
        assert!(v[3].is_null());
    }

    #[test]
    fn parse_errors_carry_position() {
        let e = from_str::<Value>("{\"a\": }").unwrap_err();
        assert!(e.to_string().contains("line 1"));
    }

    #[test]
    fn escapes_and_unicode_round_trip() {
        let v = json!("tab\t backslash \\ quote \" control \u{1} emoji \u{1F600}");
        let s = to_string(&v).unwrap();
        let back: Value = from_str(&s).unwrap();
        assert_eq!(v, back);
    }
}
