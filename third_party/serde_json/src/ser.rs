//! Compact JSON text output.

use crate::{Error, Serialize, Value};
use std::fmt::{self, Write};

/// Serialize to a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write!(out, "{}", value.to_json_value()).map_err(|e| Error::msg(e.to_string()))?;
    Ok(out)
}

/// Serialize to compact JSON bytes.
pub fn to_vec<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>, Error> {
    to_string(value).map(String::into_bytes)
}

/// Write `v` as compact JSON into any formatter (backs `Display for Value`).
pub(crate) fn write_value(f: &mut fmt::Formatter<'_>, v: &Value) -> fmt::Result {
    match v {
        Value::Null => f.write_str("null"),
        Value::Bool(true) => f.write_str("true"),
        Value::Bool(false) => f.write_str("false"),
        Value::Number(n) => write!(f, "{n}"),
        Value::String(s) => write_escaped(f, s),
        Value::Array(items) => {
            f.write_char('[')?;
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    f.write_char(',')?;
                }
                write_value(f, item)?;
            }
            f.write_char(']')
        }
        Value::Object(map) => {
            f.write_char('{')?;
            for (i, (k, val)) in map.iter().enumerate() {
                if i > 0 {
                    f.write_char(',')?;
                }
                write_escaped(f, k)?;
                f.write_char(':')?;
                write_value(f, val)?;
            }
            f.write_char('}')
        }
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_char('"')?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            '\u{08}' => f.write_str("\\b")?,
            '\u{0c}' => f.write_str("\\f")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => f.write_char(c)?,
        }
    }
    f.write_char('"')
}

#[cfg(test)]
mod tests {
    use crate::json;

    #[test]
    fn compact_output_sorted_keys() {
        let v = json!({"b": 2, "a": [1, null, "x"]});
        assert_eq!(v.to_string(), r#"{"a":[1,null,"x"],"b":2}"#);
    }

    #[test]
    fn control_characters_escape() {
        assert_eq!(json!("a\u{1}b").to_string(), r#""a\u0001b""#);
        assert_eq!(json!("q\"\\").to_string(), r#""q\"\\""#);
    }
}
