//! Recursive-descent JSON parser.

use crate::{Deserialize, Error, Map, Number, Value};

/// Parse a JSON string into any [`Deserialize`] type.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser::new(s);
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos < p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    T::from_json_value(&v)
}

/// Parse JSON bytes (must be UTF-8) into any [`Deserialize`] type.
pub fn from_slice<T: Deserialize>(bytes: &[u8]) -> Result<T, Error> {
    let s = std::str::from_utf8(bytes).map_err(|e| Error::msg(format!("invalid UTF-8: {e}")))?;
    from_str(s)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

/// Nesting limit mirroring the real crate's recursion guard.
const MAX_DEPTH: usize = 128;

impl<'a> Parser<'a> {
    fn new(s: &'a str) -> Parser<'a> {
        Parser {
            bytes: s.as_bytes(),
            pos: 0,
            depth: 0,
        }
    }

    fn err(&self, msg: &str) -> Error {
        let mut line = 1;
        let mut col = 1;
        for &b in &self.bytes[..self.pos.min(self.bytes.len())] {
            if b == b'\n' {
                line += 1;
                col = 1;
            } else {
                col += 1;
            }
        }
        Error::at(msg, line, col)
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek();
        if b.is_some() {
            self.pos += 1;
        }
        b
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn eat_keyword(&mut self, kw: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(value)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            return Err(self.err("recursion limit exceeded"));
        }
        let v = match self.peek() {
            Some(b'n') => self.eat_keyword("null", Value::Null),
            Some(b't') => self.eat_keyword("true", Value::Bool(true)),
            Some(b'f') => self.eat_keyword("false", Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::String),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }?;
        self.depth -= 1;
        Ok(v)
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(Value::Array(items)),
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut map = Map::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(Value::Object(map)),
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{08}'),
                    Some(b'f') => out.push('\u{0c}'),
                    Some(b'u') => out.push(self.parse_unicode_escape()?),
                    _ => return Err(self.err("invalid escape")),
                },
                Some(b) if b < 0x80 => out.push(b as char),
                Some(b) => {
                    // multi-byte UTF-8: the input is a valid str, so
                    // re-decode from the byte position
                    let start = self.pos - 1;
                    let s = std::str::from_utf8(&self.bytes[start..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let c = s.chars().next().ok_or_else(|| self.err("invalid UTF-8"))?;
                    self.pos = start + c.len_utf8();
                    let _ = b;
                    out.push(c);
                }
            }
        }
    }

    fn parse_unicode_escape(&mut self) -> Result<char, Error> {
        let first = self.parse_hex4()?;
        // surrogate pair
        if (0xD800..0xDC00).contains(&first) {
            if self.bump() != Some(b'\\') || self.bump() != Some(b'u') {
                return Err(self.err("unpaired surrogate"));
            }
            let second = self.parse_hex4()?;
            if !(0xDC00..0xE000).contains(&second) {
                return Err(self.err("invalid low surrogate"));
            }
            let c = 0x10000 + ((first - 0xD800) << 10) + (second - 0xDC00);
            char::from_u32(c).ok_or_else(|| self.err("invalid surrogate pair"))
        } else {
            char::from_u32(first).ok_or_else(|| self.err("invalid unicode escape"))
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        let mut v = 0u32;
        for _ in 0..4 {
            let d = match self.bump() {
                Some(b @ b'0'..=b'9') => u32::from(b - b'0'),
                Some(b @ b'a'..=b'f') => u32::from(b - b'a') + 10,
                Some(b @ b'A'..=b'F') => u32::from(b - b'A') + 10,
                _ => return Err(self.err("invalid hex escape")),
            };
            v = v * 16 + d;
        }
        Ok(v)
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::Number(Number::from(u)));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Number(Number::from(i)));
            }
        }
        let f: f64 = text.parse().map_err(|_| self.err("invalid number"))?;
        Number::from_f64(f)
            .map(Value::Number)
            .ok_or_else(|| self.err("non-finite number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    #[test]
    fn parses_scalars_and_containers() {
        let v: Value = from_str(r#"{"a": [1, -2, 3.5, true, null], "s": "x"}"#).unwrap();
        assert_eq!(v, json!({"a": [1, -2, 3.5, true, null], "s": "x"}));
    }

    #[test]
    fn parses_escapes_and_surrogates() {
        let v: Value = from_str(r#""line\nA😀""#).unwrap();
        assert_eq!(v.as_str(), Some("line\nA\u{1F600}"));
    }

    #[test]
    fn big_u64_stays_exact() {
        let v: Value = from_str("18446744073709551615").unwrap();
        assert_eq!(v.as_u64(), Some(u64::MAX));
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<Value>("{,}").is_err());
        assert!(from_str::<Value>("[1 2]").is_err());
        assert!(from_str::<Value>("01x").is_err());
        assert!(from_str::<Value>("\"unterminated").is_err());
    }

    #[test]
    fn typed_deserialization() {
        let xs: Vec<u64> = from_str("[1,2,3]").unwrap();
        assert_eq!(xs, vec![1, 2, 3]);
        let s: String = from_slice(b"\"hi\"").unwrap();
        assert_eq!(s, "hi");
        assert!(from_str::<u64>("-1").is_err());
    }
}
