//! Offline mini property-testing framework.
//!
//! The build environment for this workspace has no crates.io access, so
//! the real `proptest` cannot be fetched. This crate reimplements the
//! subset of its API the workspace's tests use: [`strategy::Strategy`]
//! with `prop_map`/`prop_filter`/`boxed`, integer-range and regex-subset
//! string strategies, [`collection::vec`], [`option::of`],
//! [`arbitrary::any`], tuple strategies, and the `proptest!`,
//! `prop_oneof!`, `prop_assert!`, `prop_assert_eq!`/`_ne!` macros —
//! including deterministic seeding and binary-search shrinking with
//! backtracking.

pub mod arbitrary;
pub mod collection;
pub mod option;
pub mod rng;
pub mod strategy;
pub mod strings;
pub mod test_runner;

pub mod prelude {
    /// The conventional short alias used as `prop::collection::vec(..)`.
    pub use crate as prop;
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Uniform choice among strategy arms producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

/// Assert inside a property body; failure aborts only this case and feeds
/// the shrinker.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseFailure::new(
                format!($($fmt)*),
                file!(),
                line!(),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(*left == *right, $($fmt)*);
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `(left != right)`\n  both: `{:?}`",
            left
        );
    }};
}

/// Declare property tests. Each `fn` becomes a `#[test]` that runs the
/// body over generated inputs, shrinking failures.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config = $cfg;
            let strategy = ($($strat,)+);
            $crate::test_runner::run(
                config,
                concat!(module_path!(), "::", stringify!($name)),
                strategy,
                |($($pat,)+)| {
                    $body
                    ::std::result::Result::Ok(())
                },
            );
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn small_even() -> impl Strategy<Value = i64> {
        (0i64..200).prop_filter("even", |v| v % 2 == 0)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_binds_multiple_params(
            xs in prop::collection::vec(any::<i64>(), 0..8),
            flag in any::<bool>(),
        ) {
            prop_assert!(xs.len() < 8);
            let _ = flag;
        }

        #[test]
        fn oneof_and_filter_compose(v in prop_oneof![small_even(), Just(1000i64)]) {
            prop_assert!(v % 2 == 0 || v == 1000);
            prop_assert_ne!(v, 999);
        }

        #[test]
        fn option_strategy_in_macro(ov in prop::option::of(1u8..5)) {
            if let Some(v) = ov {
                prop_assert!((1..5).contains(&v));
            }
        }

        #[test]
        fn string_strategy_in_macro(s in "[a-c]{1,3}") {
            prop_assert!(!s.is_empty() && s.len() <= 3);
            prop_assert!(s.chars().all(|c| ('a'..='c').contains(&c)));
        }
    }
}
