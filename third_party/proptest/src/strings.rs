//! String strategies from a regex subset, as `impl Strategy for &str`.
//!
//! Supported syntax (what the workspace's tests use, plus a little):
//! literal chars, `\`-escapes, char classes `[...]` with ranges,
//! leading-`^` negation, `&&` intersection and nested classes, and the
//! quantifiers `{m}`, `{m,n}`, `?`, `*`, `+` (the unbounded ones cap at 8).
//! Negation is relative to printable ASCII (0x20..=0x7E).

use crate::rng::TestRng;
use crate::strategy::{Strategy, ValueTree};
use std::collections::BTreeSet;

#[derive(Clone)]
struct Segment {
    choices: Vec<char>,
    min: usize,
    max: usize,
}

fn parse_pattern(pattern: &str) -> Result<Vec<Segment>, String> {
    let cs: Vec<char> = pattern.chars().collect();
    let mut i = 0;
    let mut segs = Vec::new();
    while i < cs.len() {
        let choices: Vec<char> = match cs[i] {
            '[' => {
                let (set, ni) = parse_class(&cs, i)?;
                i = ni;
                set.into_iter().collect()
            }
            '\\' => {
                let c = *cs.get(i + 1).ok_or("trailing backslash")?;
                i += 2;
                vec![unescape(c)]
            }
            c => {
                i += 1;
                vec![c]
            }
        };
        if choices.is_empty() {
            return Err(format!("empty character class in '{pattern}'"));
        }
        let (min, max) = parse_quantifier(&cs, &mut i)?;
        segs.push(Segment { choices, min, max });
    }
    Ok(segs)
}

fn unescape(c: char) -> char {
    match c {
        'n' => '\n',
        'r' => '\r',
        't' => '\t',
        other => other,
    }
}

fn parse_quantifier(cs: &[char], i: &mut usize) -> Result<(usize, usize), String> {
    match cs.get(*i) {
        Some('?') => {
            *i += 1;
            Ok((0, 1))
        }
        Some('*') => {
            *i += 1;
            Ok((0, 8))
        }
        Some('+') => {
            *i += 1;
            Ok((1, 8))
        }
        Some('{') => {
            let close = cs[*i..]
                .iter()
                .position(|&c| c == '}')
                .ok_or("unterminated quantifier")?
                + *i;
            let body: String = cs[*i + 1..close].iter().collect();
            *i = close + 1;
            let (lo, hi) = match body.split_once(',') {
                Some((lo, hi)) => (lo.trim().to_string(), hi.trim().to_string()),
                None => (body.trim().to_string(), body.trim().to_string()),
            };
            let lo: usize = lo
                .parse()
                .map_err(|_| format!("bad quantifier {{{body}}}"))?;
            let hi: usize = hi
                .parse()
                .map_err(|_| format!("bad quantifier {{{body}}}"))?;
            if lo > hi {
                return Err(format!("inverted quantifier {{{body}}}"));
            }
            Ok((lo, hi))
        }
        _ => Ok((1, 1)),
    }
}

/// Parse a class starting at `cs[i] == '['`; returns the set and the index
/// one past the closing `]`.
fn parse_class(cs: &[char], mut i: usize) -> Result<(BTreeSet<char>, usize), String> {
    i += 1; // consume '['
    let negated = if cs.get(i) == Some(&'^') {
        i += 1;
        true
    } else {
        false
    };
    let mut operands: Vec<BTreeSet<char>> = Vec::new();
    let mut current: BTreeSet<char> = BTreeSet::new();
    loop {
        match cs.get(i) {
            None => return Err("unterminated character class".into()),
            Some(']') => {
                i += 1;
                break;
            }
            Some('&') if cs.get(i + 1) == Some(&'&') => {
                i += 2;
                operands.push(std::mem::take(&mut current));
            }
            Some('[') => {
                let (inner, ni) = parse_class(cs, i)?;
                i = ni;
                current.extend(inner);
            }
            Some('\\') => {
                let c = unescape(*cs.get(i + 1).ok_or("trailing backslash in class")?);
                i += 2;
                current.insert(c);
            }
            Some(&c) => {
                i += 1;
                if cs.get(i) == Some(&'-') && cs.get(i + 1).is_some_and(|&n| n != ']') {
                    let mut hi = cs[i + 1];
                    i += 2;
                    if hi == '\\' {
                        hi = unescape(*cs.get(i).ok_or("trailing backslash in range")?);
                        i += 1;
                    }
                    if c > hi {
                        return Err(format!("inverted range {c}-{hi}"));
                    }
                    current.extend(c..=hi);
                } else {
                    current.insert(c);
                }
            }
        }
    }
    operands.push(current);
    let mut set = operands
        .into_iter()
        .reduce(|a, b| a.intersection(&b).copied().collect())
        .unwrap_or_default();
    if negated {
        let universe: BTreeSet<char> = (0x20u8..=0x7E).map(char::from).collect();
        set = universe.difference(&set).copied().collect();
    }
    Ok((set, i))
}

impl Strategy for &'static str {
    type Value = String;

    fn new_tree(&self, rng: &mut TestRng) -> Box<dyn ValueTree<Value = String>> {
        let segments =
            parse_pattern(self).unwrap_or_else(|e| panic!("bad string pattern '{self}': {e}"));
        let samples = segments
            .iter()
            .map(|seg| {
                let count = seg.min + rng.below((seg.max - seg.min + 1) as u64) as usize;
                let chars = (0..count)
                    .map(|_| seg.choices[rng.below(seg.choices.len() as u64) as usize])
                    .collect();
                SegSample {
                    choices: seg.choices.clone(),
                    min: seg.min,
                    chars,
                }
            })
            .collect();
        Box::new(StringTree {
            segs: samples,
            truncating: true,
            trunc_cursor: 0,
            char_cursor: (0, 0),
            last: None,
        })
    }
}

struct SegSample {
    choices: Vec<char>,
    min: usize,
    chars: Vec<char>,
}

enum Undo {
    Pop(usize, char),
    Replace(usize, usize, char),
}

struct StringTree {
    segs: Vec<SegSample>,
    truncating: bool,
    trunc_cursor: usize,
    char_cursor: (usize, usize),
    last: Option<Undo>,
}

impl ValueTree for StringTree {
    type Value = String;

    fn current(&self) -> String {
        self.segs.iter().flat_map(|s| s.chars.iter()).collect()
    }

    fn simplify(&mut self) -> bool {
        if self.truncating {
            while self.trunc_cursor < self.segs.len() {
                let seg = &mut self.segs[self.trunc_cursor];
                if seg.chars.len() > seg.min {
                    let c = seg.chars.pop().expect("non-empty");
                    self.last = Some(Undo::Pop(self.trunc_cursor, c));
                    return true;
                }
                self.trunc_cursor += 1;
            }
            self.truncating = false;
        }
        let (mut si, mut ci) = self.char_cursor;
        while si < self.segs.len() {
            let seg = &mut self.segs[si];
            let lowest = seg.choices[0];
            while ci < seg.chars.len() {
                if seg.chars[ci] != lowest {
                    let old = seg.chars[ci];
                    seg.chars[ci] = lowest;
                    self.char_cursor = (si, ci);
                    self.last = Some(Undo::Replace(si, ci, old));
                    return true;
                }
                ci += 1;
            }
            si += 1;
            ci = 0;
        }
        self.char_cursor = (si, 0);
        false
    }

    fn complicate(&mut self) -> bool {
        match self.last.take() {
            Some(Undo::Pop(i, c)) => {
                self.segs[i].chars.push(c);
                // This element was load-bearing; stop truncating this
                // segment.
                self.trunc_cursor = i + 1;
                true
            }
            Some(Undo::Replace(i, j, c)) => {
                self.segs[i].chars[j] = c;
                self.char_cursor = (i, j + 1);
                true
            }
            None => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(pattern: &'static str, seed: u64) -> String {
        let mut rng = TestRng::new(seed);
        pattern.new_tree(&mut rng).current()
    }

    #[test]
    fn ident_pattern_shape() {
        for seed in 0..50 {
            let s = sample("[a-z][a-z0-9_]{0,6}", seed);
            assert!(!s.is_empty() && s.len() <= 7, "{s:?}");
            let mut it = s.chars();
            assert!(it.next().unwrap().is_ascii_lowercase());
            assert!(it.all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_'));
        }
    }

    #[test]
    fn intersection_with_negated_class() {
        // Printable ASCII except double quote, backslash, single quote.
        for seed in 0..50 {
            let s = sample("[ -~&&[^\"\\\\']]{0,12}", seed);
            assert!(s.len() <= 12);
            assert!(
                s.chars()
                    .all(|c| (' '..='~').contains(&c) && c != '"' && c != '\\' && c != '\''),
                "{s:?}"
            );
        }
    }

    #[test]
    fn literals_and_quantifiers() {
        assert_eq!(sample("abc", 1), "abc");
        let s = sample("x{3}", 9);
        assert_eq!(s, "xxx");
        let s = sample("[01]{2,4}", 4);
        assert!((2..=4).contains(&s.len()));
        assert!(s.chars().all(|c| c == '0' || c == '1'));
    }

    #[test]
    fn shrinks_toward_shortest_lowest() {
        let mut rng = TestRng::new(77);
        let mut tree = "[a-z]{0,8}".new_tree(&mut rng);
        // Fail whenever the string is non-empty: minimal should be one
        // lowest char.
        while tree.current().is_empty() {
            tree = "[a-z]{0,8}".new_tree(&mut rng);
        }
        let fails = |s: &String| !s.is_empty();
        let mut steps = 0;
        'outer: while steps < 1000 {
            steps += 1;
            if !tree.simplify() {
                break;
            }
            while !fails(&tree.current()) {
                steps += 1;
                if steps >= 1000 || !tree.complicate() {
                    break 'outer;
                }
            }
        }
        assert_eq!(tree.current(), "a");
    }
}
