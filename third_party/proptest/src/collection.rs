//! `prop::collection::vec` — variable-length vectors with removal-then-
//! element shrinking.

use crate::rng::TestRng;
use crate::strategy::{Strategy, ValueTree};
use std::ops::Range;

pub fn vec<S>(element: S, size: Range<usize>) -> VecStrategy<S>
where
    S: Strategy,
{
    assert!(size.start < size.end, "empty vec size range");
    VecStrategy { element, size }
}

pub struct VecStrategy<S> {
    element: S,
    size: Range<usize>,
}

impl<S> Strategy for VecStrategy<S>
where
    S: Strategy,
    S::Value: 'static,
{
    type Value = Vec<S::Value>;

    fn new_tree(&self, rng: &mut TestRng) -> Box<dyn ValueTree<Value = Vec<S::Value>>> {
        let span = (self.size.end - self.size.start) as u64;
        let len = self.size.start + rng.below(span) as usize;
        let trees = (0..len).map(|_| self.element.new_tree(rng)).collect();
        Box::new(VecTree {
            trees,
            included: vec![true; len],
            min: self.size.start,
            remove_cursor: 0,
            shrink_cursor: 0,
            removing: true,
            last: Last::None,
        })
    }
}

enum Last {
    None,
    Removed(usize),
    Shrunk(usize),
}

struct VecTree<T> {
    trees: Vec<Box<dyn ValueTree<Value = T>>>,
    included: Vec<bool>,
    min: usize,
    remove_cursor: usize,
    shrink_cursor: usize,
    removing: bool,
    last: Last,
}

impl<T> VecTree<T> {
    fn included_count(&self) -> usize {
        self.included.iter().filter(|&&b| b).count()
    }
}

impl<T> ValueTree for VecTree<T> {
    type Value = Vec<T>;

    fn current(&self) -> Vec<T> {
        self.trees
            .iter()
            .zip(&self.included)
            .filter(|(_, &inc)| inc)
            .map(|(t, _)| t.current())
            .collect()
    }

    fn simplify(&mut self) -> bool {
        if self.removing {
            while self.remove_cursor < self.trees.len() {
                let i = self.remove_cursor;
                self.remove_cursor += 1;
                if self.included[i] && self.included_count() > self.min {
                    self.included[i] = false;
                    self.last = Last::Removed(i);
                    return true;
                }
            }
            self.removing = false;
        }
        while self.shrink_cursor < self.trees.len() {
            let i = self.shrink_cursor;
            if !self.included[i] {
                self.shrink_cursor += 1;
                continue;
            }
            if self.trees[i].simplify() {
                self.last = Last::Shrunk(i);
                return true;
            }
            self.shrink_cursor += 1;
        }
        false
    }

    fn complicate(&mut self) -> bool {
        match self.last {
            Last::Removed(i) => {
                // The removed element was load-bearing: restore it (the
                // cursor has already moved past it).
                self.included[i] = true;
                self.last = Last::None;
                true
            }
            Last::Shrunk(i) => {
                // Even if the element reports exhaustion it restores its
                // last failing value, so re-testing is safe.
                self.trees[i].complicate();
                true
            }
            Last::None => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_lengths_in_range() {
        let strat = vec(0u8..10, 2..7);
        let mut rng = TestRng::new(5);
        for _ in 0..100 {
            let v = strat.new_tree(&mut rng).current();
            assert!((2..7).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 10));
        }
    }

    #[test]
    fn shrinks_away_irrelevant_elements() {
        // Failure depends only on "contains a value >= 50": the minimal
        // counterexample is a single-element vector [50].
        let strat = vec(0i64..100, 0..12);
        let mut rng = TestRng::new(11);
        loop {
            let mut tree = strat.new_tree(&mut rng);
            let fails = |v: &Vec<i64>| v.iter().any(|&x| x >= 50);
            if !fails(&tree.current()) {
                continue;
            }
            let mut steps = 0;
            'outer: while steps < 10_000 {
                steps += 1;
                if !tree.simplify() {
                    break;
                }
                while !fails(&tree.current()) {
                    steps += 1;
                    if steps >= 10_000 || !tree.complicate() {
                        break 'outer;
                    }
                }
            }
            assert_eq!(tree.current(), vec![50]);
            break;
        }
    }
}
