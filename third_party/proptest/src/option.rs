//! `proptest::option::of` — optional values (shrink tries `None` first).

use crate::rng::TestRng;
use crate::strategy::{Strategy, ValueTree};

pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
    OptionStrategy { inner }
}

pub struct OptionStrategy<S> {
    inner: S,
}

impl<S> Strategy for OptionStrategy<S>
where
    S: Strategy,
    S::Value: 'static,
{
    type Value = Option<S::Value>;
    fn new_tree(&self, rng: &mut TestRng) -> Box<dyn ValueTree<Value = Option<S::Value>>> {
        let inner = if rng.chance(1, 4) {
            None
        } else {
            Some(self.inner.new_tree(rng))
        };
        Box::new(OptionTree {
            inner,
            forced_none: false,
            tried_none: false,
        })
    }
}

struct OptionTree<T> {
    inner: Option<Box<dyn ValueTree<Value = T>>>,
    forced_none: bool,
    tried_none: bool,
}

impl<T> ValueTree for OptionTree<T> {
    type Value = Option<T>;

    fn current(&self) -> Option<T> {
        if self.forced_none {
            None
        } else {
            self.inner.as_ref().map(|t| t.current())
        }
    }

    fn simplify(&mut self) -> bool {
        match &mut self.inner {
            None => false,
            Some(_) if self.forced_none => false,
            Some(tree) => {
                if !self.tried_none {
                    self.tried_none = true;
                    self.forced_none = true;
                    true
                } else {
                    tree.simplify()
                }
            }
        }
    }

    fn complicate(&mut self) -> bool {
        if self.forced_none {
            self.forced_none = false;
            true
        } else {
            match &mut self.inner {
                Some(tree) => tree.complicate(),
                None => false,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn produces_both_variants() {
        let strat = of(0u8..10);
        let mut rng = TestRng::new(23);
        let mut none = 0;
        let mut some = 0;
        for _ in 0..100 {
            match strat.new_tree(&mut rng).current() {
                None => none += 1,
                Some(v) => {
                    assert!(v < 10);
                    some += 1;
                }
            }
        }
        assert!(none > 0 && some > 0);
    }

    #[test]
    fn shrink_tries_none_then_restores() {
        let strat = of(5u8..10);
        let mut rng = TestRng::new(1);
        loop {
            let mut tree = strat.new_tree(&mut rng);
            if tree.current().is_none() {
                continue;
            }
            assert!(tree.simplify());
            assert_eq!(tree.current(), None);
            assert!(tree.complicate());
            assert!(tree.current().is_some());
            break;
        }
    }
}
