//! Deterministic RNG for test-case generation (splitmix64).

/// One round of splitmix64 — also used to derive per-case seeds.
pub fn splitmix(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Deterministic generator handed to [`crate::strategy::Strategy::new_tree`].
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn new(seed: u64) -> TestRng {
        TestRng { state: seed }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        splitmix(self.state)
    }

    /// Uniform value in `0..n`. Panics if `n == 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0)");
        // Modulo bias is irrelevant at test-generation fidelity.
        self.next_u64() % n
    }

    /// True with probability `num/den`.
    pub fn chance(&mut self, num: u64, den: u64) -> bool {
        self.below(den) < num
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let a: Vec<u64> = (0..4).map(|_| TestRng::new(7).next_u64()).collect();
        assert!(a.iter().all(|&x| x == a[0]));
        let mut r = TestRng::new(7);
        let b: Vec<u64> = (0..4).map(|_| r.next_u64()).collect();
        assert_eq!(b[0], a[0]);
        assert!(b.windows(2).all(|w| w[0] != w[1]));
    }

    #[test]
    fn below_stays_in_range() {
        let mut r = TestRng::new(42);
        for _ in 0..200 {
            assert!(r.below(7) < 7);
        }
    }
}
