//! `any::<T>()` — full-domain strategies for primitives.

use crate::rng::TestRng;
use crate::strategy::{BoolTree, IntTree, IntValue, Strategy, ValueTree};
use std::marker::PhantomData;

pub trait Arbitrary: Sized + 'static {
    fn any_tree(rng: &mut TestRng) -> Box<dyn ValueTree<Value = Self>>;
}

pub struct Any<T>(PhantomData<T>);

pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn new_tree(&self, rng: &mut TestRng) -> Box<dyn ValueTree<Value = T>> {
        T::any_tree(rng)
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn any_tree(rng: &mut TestRng) -> Box<dyn ValueTree<Value = $t>> {
                let raw = rng.next_u64() as $t;
                Box::new(IntTree::<$t>::new(
                    raw.to_i128(),
                    <$t as IntValue>::MIN_I128,
                    <$t as IntValue>::MAX_I128 + 1,
                ))
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn any_tree(rng: &mut TestRng) -> Box<dyn ValueTree<Value = bool>> {
        Box::new(BoolTree::new(rng.next_u64() & 1 == 1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn any_i64_covers_negatives() {
        let mut rng = TestRng::new(17);
        let strat = any::<i64>();
        let mut saw_neg = false;
        let mut saw_pos = false;
        for _ in 0..64 {
            let v = strat.new_tree(&mut rng).current();
            saw_neg |= v < 0;
            saw_pos |= v > 0;
        }
        assert!(saw_neg && saw_pos);
    }

    #[test]
    fn bool_shrinks_to_false() {
        let mut t = BoolTree::new(true);
        assert!(t.simplify());
        assert!(!t.current());
        assert!(!t.simplify());
    }
}
