//! Core strategy/value-tree machinery: generation plus binary-search
//! shrinking.
//!
//! Contract between the runner and a [`ValueTree`]:
//! - `simplify()` is called only when `current()` FAILS the test; it moves
//!   to a simpler candidate and returns false when no simpler candidate
//!   exists (leaving `current()` at the best known failing value).
//! - `complicate()` is called only when `current()` PASSES; it backtracks
//!   toward the last known failing value. Returning false restores that
//!   failing value.

use crate::rng::TestRng;
use std::marker::PhantomData;
use std::rc::Rc;

pub trait ValueTree {
    type Value;
    fn current(&self) -> Self::Value;
    fn simplify(&mut self) -> bool;
    fn complicate(&mut self) -> bool;
}

pub trait Strategy {
    type Value;

    fn new_tree(&self, rng: &mut TestRng) -> Box<dyn ValueTree<Value = Self::Value>>;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map {
            source: self,
            f: Rc::new(f),
        }
    }

    fn prop_filter<F>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            source: self,
            whence,
            pred: Rc::new(f),
        }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

/// A type-erased, cheaply clonable strategy (`Rc` under the hood).
pub struct BoxedStrategy<T>(Rc<dyn Strategy<Value = T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn new_tree(&self, rng: &mut TestRng) -> Box<dyn ValueTree<Value = T>> {
        self.0.new_tree(rng)
    }
}

// ---------------------------------------------------------------- Just

/// Strategy producing one constant value; never shrinks.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

struct JustTree<T: Clone>(T);

impl<T: Clone> ValueTree for JustTree<T> {
    type Value = T;
    fn current(&self) -> T {
        self.0.clone()
    }
    fn simplify(&mut self) -> bool {
        false
    }
    fn complicate(&mut self) -> bool {
        false
    }
}

impl<T: Clone + 'static> Strategy for Just<T> {
    type Value = T;
    fn new_tree(&self, _rng: &mut TestRng) -> Box<dyn ValueTree<Value = T>> {
        Box::new(JustTree(self.0.clone()))
    }
}

// ----------------------------------------------------------------- Map

pub struct Map<S, F: ?Sized> {
    source: S,
    f: Rc<F>,
}

struct MapTree<I, O, F: ?Sized + Fn(I) -> O> {
    inner: Box<dyn ValueTree<Value = I>>,
    f: Rc<F>,
}

impl<I, O, F: ?Sized + Fn(I) -> O> ValueTree for MapTree<I, O, F> {
    type Value = O;
    fn current(&self) -> O {
        (self.f)(self.inner.current())
    }
    fn simplify(&mut self) -> bool {
        self.inner.simplify()
    }
    fn complicate(&mut self) -> bool {
        self.inner.complicate()
    }
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    S::Value: 'static,
    O: 'static,
    F: Fn(S::Value) -> O + 'static,
{
    type Value = O;
    fn new_tree(&self, rng: &mut TestRng) -> Box<dyn ValueTree<Value = O>> {
        Box::new(MapTree {
            inner: self.source.new_tree(rng),
            f: Rc::clone(&self.f),
        })
    }
}

// -------------------------------------------------------------- Filter

pub struct Filter<S, F: ?Sized> {
    source: S,
    whence: &'static str,
    pred: Rc<F>,
}

struct FilterTree<I, F: ?Sized + Fn(&I) -> bool> {
    inner: Box<dyn ValueTree<Value = I>>,
    pred: Rc<F>,
}

impl<I, F: ?Sized + Fn(&I) -> bool> ValueTree for FilterTree<I, F> {
    type Value = I;
    fn current(&self) -> I {
        self.inner.current()
    }
    fn simplify(&mut self) -> bool {
        if !self.inner.simplify() {
            return false;
        }
        // Skip candidates the predicate rejects by telling the inner tree
        // to backtrack (a rejected candidate is unusable, same as passing).
        let mut tries = 0;
        while !(self.pred)(&self.inner.current()) {
            tries += 1;
            if tries > 32 || !self.inner.complicate() {
                return false;
            }
        }
        true
    }
    fn complicate(&mut self) -> bool {
        let mut ok = self.inner.complicate();
        let mut tries = 0;
        while ok && !(self.pred)(&self.inner.current()) {
            tries += 1;
            if tries > 32 {
                return false;
            }
            ok = self.inner.complicate();
        }
        ok
    }
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    S::Value: 'static,
    F: Fn(&S::Value) -> bool + 'static,
{
    type Value = S::Value;
    fn new_tree(&self, rng: &mut TestRng) -> Box<dyn ValueTree<Value = S::Value>> {
        for _ in 0..200 {
            let tree = self.source.new_tree(rng);
            if (self.pred)(&tree.current()) {
                return Box::new(FilterTree {
                    inner: tree,
                    pred: Rc::clone(&self.pred),
                });
            }
        }
        panic!(
            "prop_filter '{}' rejected 200 samples in a row",
            self.whence
        );
    }
}

// --------------------------------------------------------------- OneOf

/// Uniform choice between boxed alternatives (backs `prop_oneof!`).
pub struct OneOf<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> OneOf<T> {
    pub fn new(options: Vec<BoxedStrategy<T>>) -> OneOf<T> {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        OneOf { options }
    }
}

impl<T> Strategy for OneOf<T> {
    type Value = T;
    fn new_tree(&self, rng: &mut TestRng) -> Box<dyn ValueTree<Value = T>> {
        let idx = rng.below(self.options.len() as u64) as usize;
        self.options[idx].new_tree(rng)
    }
}

// ------------------------------------------------------------ integers

/// Integer primitives usable with range strategies and `any`.
pub trait IntValue: Copy + 'static {
    fn from_i128(v: i128) -> Self;
    fn to_i128(self) -> i128;
    const MIN_I128: i128;
    const MAX_I128: i128;
}

macro_rules! impl_int_value {
    ($($t:ty),*) => {$(
        impl IntValue for $t {
            fn from_i128(v: i128) -> $t { v as $t }
            fn to_i128(self) -> i128 { self as i128 }
            const MIN_I128: i128 = <$t>::MIN as i128;
            const MAX_I128: i128 = <$t>::MAX as i128;
        }
    )*};
}

impl_int_value!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Binary-search shrinker over a single integer, moving toward a target
/// (0 when the range contains it, else the closest bound).
pub struct IntTree<T> {
    target: i128,
    dir: i128,
    /// Distance of the candidate from the target, along `dir`.
    p_curr: i128,
    /// Distance of the last known failing value.
    p_hi: i128,
    /// Distance of the largest known passing value below `p_curr`.
    p_lo: Option<i128>,
    _marker: PhantomData<T>,
}

impl<T: IntValue> IntTree<T> {
    pub fn new(value: i128, lo_bound: i128, hi_bound_excl: i128) -> IntTree<T> {
        let target = if lo_bound <= 0 && 0 < hi_bound_excl {
            0
        } else if lo_bound > 0 {
            lo_bound
        } else {
            hi_bound_excl - 1
        };
        let dir = (value - target).signum();
        IntTree {
            target,
            dir,
            p_curr: (value - target) * dir,
            p_hi: (value - target) * dir,
            p_lo: None,
            _marker: PhantomData,
        }
    }
}

impl<T: IntValue> ValueTree for IntTree<T> {
    type Value = T;

    fn current(&self) -> T {
        T::from_i128(self.target + self.dir * self.p_curr)
    }

    fn simplify(&mut self) -> bool {
        self.p_hi = self.p_curr;
        let low = self.p_lo.map(|l| l + 1).unwrap_or(0);
        if self.p_curr <= low {
            return false;
        }
        self.p_curr = low + (self.p_curr - low) / 2;
        true
    }

    fn complicate(&mut self) -> bool {
        self.p_lo = Some(self.p_curr);
        if self.p_curr >= self.p_hi {
            return false;
        }
        self.p_curr += (self.p_hi - self.p_curr + 1) / 2;
        true
    }
}

impl<T: IntValue> Strategy for std::ops::Range<T> {
    type Value = T;
    fn new_tree(&self, rng: &mut TestRng) -> Box<dyn ValueTree<Value = T>> {
        let lo = self.start.to_i128();
        let hi = self.end.to_i128();
        assert!(lo < hi, "empty integer range strategy");
        let span = (hi - lo) as u128;
        let offset = (rng.next_u64() as u128) % span;
        Box::new(IntTree::<T>::new(lo + offset as i128, lo, hi))
    }
}

/// Shrinks `true` to `false` once.
pub struct BoolTree {
    curr: bool,
    exhausted: bool,
}

impl BoolTree {
    pub fn new(curr: bool) -> BoolTree {
        BoolTree {
            curr,
            exhausted: false,
        }
    }
}

impl ValueTree for BoolTree {
    type Value = bool;
    fn current(&self) -> bool {
        self.curr
    }
    fn simplify(&mut self) -> bool {
        if self.curr && !self.exhausted {
            self.curr = false;
            true
        } else {
            false
        }
    }
    fn complicate(&mut self) -> bool {
        self.curr = true;
        self.exhausted = true;
        false
    }
}

// -------------------------------------------------------------- tuples

macro_rules! tuple_strategy {
    ($Tree:ident: $($V:ident => $idx:tt),+) => {
        pub struct $Tree<$($V),+> {
            trees: ($(Box<dyn ValueTree<Value = $V>>,)+),
            idx: usize,
        }

        impl<$($V),+> ValueTree for $Tree<$($V),+> {
            type Value = ($($V,)+);

            fn current(&self) -> Self::Value {
                ($(self.trees.$idx.current(),)+)
            }

            fn simplify(&mut self) -> bool {
                $(
                    if self.idx == $idx {
                        if self.trees.$idx.simplify() {
                            return true;
                        }
                        self.idx += 1;
                    }
                )+
                false
            }

            fn complicate(&mut self) -> bool {
                $(
                    if self.idx == $idx {
                        // The component restores its last failing value even
                        // when it reports exhaustion, so re-testing is safe
                        // and lets later components keep shrinking.
                        self.trees.$idx.complicate();
                        return true;
                    }
                )+
                false
            }
        }

        impl<$($V: Strategy + 'static),+> Strategy for ($($V,)+)
        where
            $($V::Value: 'static),+
        {
            type Value = ($($V::Value,)+);
            fn new_tree(
                &self,
                rng: &mut TestRng,
            ) -> Box<dyn ValueTree<Value = Self::Value>> {
                Box::new($Tree {
                    trees: ($(self.$idx.new_tree(rng),)+),
                    idx: 0,
                })
            }
        }
    };
}

tuple_strategy!(TupleTree1: V0 => 0);
tuple_strategy!(TupleTree2: V0 => 0, V1 => 1);
tuple_strategy!(TupleTree3: V0 => 0, V1 => 1, V2 => 2);
tuple_strategy!(TupleTree4: V0 => 0, V1 => 1, V2 => 2, V3 => 3);
tuple_strategy!(TupleTree5: V0 => 0, V1 => 1, V2 => 2, V3 => 3, V4 => 4);
tuple_strategy!(TupleTree6: V0 => 0, V1 => 1, V2 => 2, V3 => 3, V4 => 4, V5 => 5);

#[cfg(test)]
mod tests {
    use super::*;

    fn shrink_to_minimal<T, F>(tree: &mut dyn ValueTree<Value = T>, fails: F) -> T
    where
        F: Fn(&T) -> bool,
    {
        assert!(fails(&tree.current()), "initial value must fail");
        let mut steps = 0;
        'outer: while steps < 10_000 {
            steps += 1;
            if !tree.simplify() {
                break;
            }
            while !fails(&tree.current()) {
                steps += 1;
                if steps >= 10_000 || !tree.complicate() {
                    break 'outer;
                }
            }
        }
        tree.current()
    }

    #[test]
    fn int_shrinks_to_boundary() {
        // Fails when >= 57: the minimal failing value is exactly 57.
        let mut tree = IntTree::<i64>::new(100_000, 0, 1_000_000);
        let min = shrink_to_minimal(&mut tree, |v| *v >= 57);
        assert_eq!(min, 57);
    }

    #[test]
    fn negative_int_shrinks_toward_zero() {
        let mut tree = IntTree::<i64>::new(-9000, -10_000, 10_000);
        let min = shrink_to_minimal(&mut tree, |v| *v <= -13);
        assert_eq!(min, -13);
    }

    #[test]
    fn tuple_shrinks_componentwise() {
        let strat = (0i64..1000, 0i64..1000);
        let mut rng = TestRng::new(99);
        loop {
            let mut tree = strat.new_tree(&mut rng);
            let (a, b) = tree.current();
            if a + b < 150 {
                continue; // need an initially failing case
            }
            let (x, y) = shrink_to_minimal(&mut *tree, |(a, b)| a + b >= 150);
            assert_eq!(x + y, 150, "minimal boundary pair, got ({x},{y})");
            break;
        }
    }

    #[test]
    fn filter_never_yields_rejected_values() {
        let strat = (0i64..100).prop_filter("even", |v| v % 2 == 0);
        let mut rng = TestRng::new(3);
        for _ in 0..50 {
            let mut tree = strat.new_tree(&mut rng);
            assert_eq!(tree.current() % 2, 0);
            while tree.simplify() {
                assert_eq!(tree.current() % 2, 0);
            }
        }
    }

    #[test]
    fn map_applies_function() {
        let strat = (1i64..10).prop_map(|v| v * 3);
        let mut rng = TestRng::new(1);
        let tree = strat.new_tree(&mut rng);
        assert_eq!(tree.current() % 3, 0);
    }
}
