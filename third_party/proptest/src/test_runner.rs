//! Case loop + shrinking driver behind the `proptest!` macro.

use crate::rng::{splitmix, TestRng};
use crate::strategy::Strategy;
use std::panic::{catch_unwind, AssertUnwindSafe};

#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 32 }
    }
}

/// A failed assertion inside a property body (`prop_assert*` early
/// return).
#[derive(Clone, Debug)]
pub struct TestCaseFailure {
    pub message: String,
    pub file: &'static str,
    pub line: u32,
}

impl TestCaseFailure {
    pub fn new(message: String, file: &'static str, line: u32) -> TestCaseFailure {
        TestCaseFailure {
            message,
            file,
            line,
        }
    }
}

impl std::fmt::Display for TestCaseFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} at {}:{}", self.message, self.file, self.line)
    }
}

/// Total simplify/complicate steps spent per failing case.
const SHRINK_BUDGET: usize = 4096;

fn run_case<V, F>(test: &F, value: V) -> Result<(), TestCaseFailure>
where
    F: Fn(V) -> Result<(), TestCaseFailure>,
{
    match catch_unwind(AssertUnwindSafe(|| test(value))) {
        Ok(r) => r,
        Err(payload) => {
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "test body panicked".to_string());
            Err(TestCaseFailure::new(format!("panic: {msg}"), "<body>", 0))
        }
    }
}

fn hash_name(name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Run `config.cases` generated cases of `test`, shrinking and panicking
/// on the first failure. Deterministic: seeds derive from the test name
/// and case index, so failures reproduce run-to-run.
pub fn run<S, F>(config: ProptestConfig, name: &str, strategy: S, test: F)
where
    S: Strategy,
    F: Fn(S::Value) -> Result<(), TestCaseFailure>,
{
    let base = hash_name(name);
    for case in 0..config.cases {
        let seed = base ^ splitmix(u64::from(case));
        let mut rng = TestRng::new(seed);
        let mut tree = strategy.new_tree(&mut rng);
        let first_failure = match run_case(&test, tree.current()) {
            Ok(()) => continue,
            Err(e) => e,
        };

        let mut steps = 0usize;
        'outer: while steps < SHRINK_BUDGET {
            steps += 1;
            if !tree.simplify() {
                break;
            }
            while run_case(&test, tree.current()).is_ok() {
                steps += 1;
                if steps >= SHRINK_BUDGET || !tree.complicate() {
                    break 'outer;
                }
            }
        }

        // The tree normally rests on the minimal failing value; if the
        // shrink budget expired mid-backtrack, fall back to the original
        // failure message.
        let final_failure = run_case(&test, tree.current())
            .err()
            .unwrap_or(first_failure);
        panic!(
            "proptest '{name}' failed (case {case}, seed {seed:#018x}, \
             {steps} shrink steps): {final_failure}"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passing_property_completes() {
        run(
            ProptestConfig::with_cases(16),
            "unit::passing",
            0u8..10,
            |v| {
                if v < 10 {
                    Ok(())
                } else {
                    Err(TestCaseFailure::new(
                        "out of range".into(),
                        file!(),
                        line!(),
                    ))
                }
            },
        );
    }

    #[test]
    fn failing_property_shrinks_and_panics() {
        let result = catch_unwind(|| {
            run(
                ProptestConfig::with_cases(64),
                "unit::failing",
                (0i64..10_000).prop_map(|v| v),
                |v| {
                    if v < 123 {
                        Ok(())
                    } else {
                        Err(TestCaseFailure::new(
                            format!("too big: {v}"),
                            file!(),
                            line!(),
                        ))
                    }
                },
            )
        });
        let msg = match result {
            Err(payload) => payload
                .downcast_ref::<String>()
                .cloned()
                .expect("panic message is a String"),
            Ok(()) => panic!("property should have failed"),
        };
        // Binary-search shrinking must land exactly on the boundary.
        assert!(msg.contains("too big: 123"), "unshrunk failure: {msg}");
    }

    #[test]
    fn panicking_body_is_caught_and_reported() {
        let result = catch_unwind(|| {
            run(
                ProptestConfig::with_cases(8),
                "unit::panicking",
                0u8..4,
                |v| {
                    assert!(v > 100, "boom {v}");
                    Ok(())
                },
            )
        });
        let msg = match result {
            Err(payload) => payload.downcast_ref::<String>().cloned().unwrap(),
            Ok(()) => panic!("property should have failed"),
        };
        assert!(msg.contains("panic: boom 0"), "{msg}");
    }
}
