//! Offline stand-in for `serde`.
//!
//! The workspace builds without registry access, so the real `serde` is
//! unavailable. The local `serde_json` stub defines value-model
//! [`Serialize`]/[`Deserialize`] traits; this crate re-exports them under
//! the usual `serde::` paths so `use serde::{Serialize, Deserialize}`
//! keeps compiling. The `derive` feature is accepted but inert — types
//! that previously used `#[derive(Serialize, Deserialize)]` carry manual
//! impls instead.

pub use serde_json::{Deserialize, Serialize};

#[cfg(test)]
mod tests {
    use super::{Deserialize, Serialize};

    #[test]
    fn traits_are_the_serde_json_ones() {
        let v = 42u64.to_json_value();
        assert_eq!(u64::from_json_value(&v).unwrap(), 42);
    }
}
