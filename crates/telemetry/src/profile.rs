//! Per-statement VM profiler: virtual cycles and allocations attributed
//! to source `StmtId`s, organized as a call tree.
//!
//! The compiled VM reports costs through the `Instrument` profiling hooks
//! (`on_stmt_cost` / `on_frame_push` / `on_frame_pop`); this profiler
//! arranges them into a prefix tree of function frames and renders the
//! collapsed-stack format flamegraph tooling consumes
//! (`frame;frame;leaf count`, one line per unique stack). Statement
//! leaves are rendered as `stmt:<id>` frames so a flamegraph shows which
//! statements inside a function burn the cycles.

use edgstr_lang::{Instrument, StmtId, TraceEvent};
use std::collections::BTreeMap;
use std::fmt::Write as _;

#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StmtCost {
    pub cycles: u64,
    pub allocs: u64,
}

#[derive(Debug, Default)]
struct Node {
    children: BTreeMap<String, usize>,
    costs: BTreeMap<u32, StmtCost>,
}

/// Call-tree profiler over the VM's statement-cost stream. Roots are set
/// per request via [`StmtProfiler::set_root`], so one profiler can
/// accumulate a whole workload and still attribute costs to the service
/// that incurred them.
#[derive(Debug)]
pub struct StmtProfiler {
    nodes: Vec<Node>,
    /// Stack of node indices; `stack[0]` is the synthetic root.
    stack: Vec<usize>,
}

impl Default for StmtProfiler {
    fn default() -> Self {
        StmtProfiler {
            nodes: vec![Node::default()],
            stack: vec![0],
        }
    }
}

impl StmtProfiler {
    pub fn new() -> Self {
        Self::default()
    }

    fn child(&mut self, parent: usize, label: &str) -> usize {
        if let Some(&idx) = self.nodes[parent].children.get(label) {
            return idx;
        }
        let idx = self.nodes.len();
        self.nodes.push(Node::default());
        self.nodes[parent].children.insert(label.to_string(), idx);
        idx
    }

    /// Reset the frame stack to a fresh request root named `label`
    /// (e.g. `"GET /loans"`). Costs recorded before the first `set_root`
    /// attach to an implicit `"<toplevel>"` root.
    pub fn set_root(&mut self, label: &str) {
        let idx = self.child(0, label);
        self.stack.clear();
        self.stack.push(0);
        self.stack.push(idx);
    }

    fn current(&mut self) -> usize {
        if self.stack.len() == 1 {
            let idx = self.child(0, "<toplevel>");
            self.stack.push(idx);
        }
        *self.stack.last().expect("stack is never empty")
    }

    /// Total attributed cost across all stacks.
    pub fn total(&self) -> StmtCost {
        let mut t = StmtCost::default();
        for node in &self.nodes {
            for cost in node.costs.values() {
                t.cycles += cost.cycles;
                t.allocs += cost.allocs;
            }
        }
        t
    }

    /// Per-statement totals aggregated over every stack, keyed by
    /// `StmtId`.
    pub fn stmt_totals(&self) -> BTreeMap<u32, StmtCost> {
        let mut out: BTreeMap<u32, StmtCost> = BTreeMap::new();
        for node in &self.nodes {
            for (stmt, cost) in &node.costs {
                let e = out.entry(*stmt).or_default();
                e.cycles += cost.cycles;
                e.allocs += cost.allocs;
            }
        }
        out
    }

    fn collapse(&self, weight: impl Fn(&StmtCost) -> u64) -> String {
        let mut out = String::new();
        let mut path: Vec<&str> = Vec::new();
        self.walk(0, &mut path, &weight, &mut out);
        out
    }

    fn walk<'a>(
        &'a self,
        node: usize,
        path: &mut Vec<&'a str>,
        weight: &impl Fn(&StmtCost) -> u64,
        out: &mut String,
    ) {
        for (stmt, cost) in &self.nodes[node].costs {
            let w = weight(cost);
            if w == 0 {
                continue;
            }
            for (i, frame) in path.iter().enumerate() {
                if i > 0 {
                    out.push(';');
                }
                out.push_str(frame);
            }
            if !path.is_empty() {
                out.push(';');
            }
            let _ = writeln!(out, "stmt:{stmt} {w}");
        }
        for (label, &child) in &self.nodes[node].children {
            path.push(label);
            self.walk(child, path, weight, out);
            path.pop();
        }
    }

    /// Collapsed-stack report weighted by virtual cycles.
    pub fn collapsed_cycles(&self) -> String {
        self.collapse(|c| c.cycles)
    }

    /// Collapsed-stack report weighted by allocation count.
    pub fn collapsed_allocs(&self) -> String {
        self.collapse(|c| c.allocs)
    }
}

impl Instrument for StmtProfiler {
    fn on_event(&mut self, _event: &TraceEvent) {}

    fn wants_events(&self) -> bool {
        false
    }

    fn wants_profile(&self) -> bool {
        true
    }

    fn on_stmt_cost(&mut self, stmt: StmtId, cycles: u64, allocs: u64) {
        if cycles == 0 && allocs == 0 {
            return;
        }
        let node = self.current();
        let cost = self.nodes[node].costs.entry(stmt.0).or_default();
        cost.cycles += cycles;
        cost.allocs += allocs;
    }

    fn on_frame_push(&mut self, name: Option<&str>) {
        let parent = self.current();
        let idx = self.child(parent, name.unwrap_or("<anon>"));
        self.stack.push(idx);
    }

    fn on_frame_pop(&mut self) {
        // Never pop the synthetic root or the request root.
        if self.stack.len() > 2 {
            self.stack.pop();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn collapsed_stacks_follow_frames() {
        let mut p = StmtProfiler::new();
        p.set_root("GET /books");
        p.on_stmt_cost(StmtId(1), 500, 0);
        p.on_frame_push(Some("lookup"));
        p.on_stmt_cost(StmtId(7), 1200, 2);
        p.on_frame_pop();
        p.on_stmt_cost(StmtId(1), 500, 0);
        let out = p.collapsed_cycles();
        assert!(out.contains("GET /books;stmt:1 1000"), "{out}");
        assert!(out.contains("GET /books;lookup;stmt:7 1200"), "{out}");
        let allocs = p.collapsed_allocs();
        assert_eq!(allocs.trim(), "GET /books;lookup;stmt:7 2");
        assert_eq!(
            p.total(),
            StmtCost {
                cycles: 2200,
                allocs: 2
            }
        );
        assert_eq!(
            p.stmt_totals()[&1],
            StmtCost {
                cycles: 1000,
                allocs: 0
            }
        );
    }

    #[test]
    fn pop_never_escapes_request_root() {
        let mut p = StmtProfiler::new();
        p.set_root("r");
        p.on_frame_pop();
        p.on_stmt_cost(StmtId(3), 10, 0);
        assert!(p.collapsed_cycles().contains("r;stmt:3 10"));
    }
}
