//! # edgstr-telemetry
//!
//! Deterministic observability for the EdgStr three-tier simulator:
//!
//! * a labeled **metrics registry** — counters, gauges, and mergeable
//!   log-linear histograms ([`registry`], [`histogram`]);
//! * **hierarchical spans** over virtual time that follow a request
//!   across client → edge → cloud, with a JSONL trace exporter and a
//!   Prometheus-style text exporter ([`trace`]);
//! * a **VM profiler** attributing virtual cycles and allocations to
//!   source statements, rendered as collapsed stacks for flamegraphs
//!   ([`profile`]).
//!
//! Everything is keyed to `SimTime`, seeded RNGs, and deterministic
//! iteration orders, so two runs of the same workload produce
//! byte-identical traces and expositions.
//!
//! ## The `Telemetry` handle and the disabled mode
//!
//! All recording flows through a cheaply clonable [`Telemetry`] handle.
//! `Telemetry::disabled()` (the default) records nothing: every method is
//! an inline no-op on a `None` inner, so instrumented code paths behave
//! byte-identically to uninstrumented ones — the `e14_observability`
//! bench asserts this. Compiling the crate with `--no-default-features`
//! removes the recording machinery from the handle entirely (it becomes a
//! zero-sized struct), proving the API surface needs nothing from the
//! enabled implementation.

pub mod histogram;
pub mod profile;
pub mod registry;
pub mod trace;

pub use histogram::{bucket_high, bucket_index, bucket_low, LogLinHistogram, NUM_BUCKETS};
pub use profile::{StmtCost, StmtProfiler};
pub use registry::{Counter, Gauge, Histogram, Registry, RegistrySnapshot};
pub use trace::{EventRecord, SpanId, SpanRecord, Tier, TraceLog};

#[cfg(feature = "enabled")]
mod handle {
    use crate::profile::StmtProfiler;
    use crate::registry::Registry;
    use crate::trace::{SpanId, Tier, TraceLog};
    use edgstr_sim::SimTime;
    use serde_json::Value as Json;
    use std::cell::{Cell, RefCell};
    use std::rc::Rc;

    #[derive(Debug)]
    struct Inner {
        registry: Registry,
        trace: RefCell<TraceLog>,
        profiler: Rc<RefCell<StmtProfiler>>,
        profiling: Cell<bool>,
    }

    /// Shared handle to one telemetry pipeline (registry + trace log +
    /// profiler). Clones are cheap and all observe the same state. The
    /// default handle is disabled and records nothing.
    #[derive(Clone, Debug, Default)]
    pub struct Telemetry {
        inner: Option<Rc<Inner>>,
    }

    impl Telemetry {
        /// A handle that records nothing; every method is a no-op.
        pub fn disabled() -> Self {
            Telemetry::default()
        }

        /// A live pipeline: metrics and spans record, profiling starts
        /// off (enable with [`Telemetry::set_profiling`]).
        pub fn recording() -> Self {
            Telemetry {
                inner: Some(Rc::new(Inner {
                    registry: Registry::new(),
                    trace: RefCell::new(TraceLog::default()),
                    profiler: Rc::new(RefCell::new(StmtProfiler::new())),
                    profiling: Cell::new(false),
                })),
            }
        }

        pub fn is_enabled(&self) -> bool {
            self.inner.is_some()
        }

        /// The metrics registry, when recording.
        pub fn registry(&self) -> Option<Registry> {
            self.inner.as_ref().map(|i| i.registry.clone())
        }

        /// Open a span; returns [`SpanId::NULL`] when disabled.
        pub fn start_span(
            &self,
            name: &'static str,
            tier: Tier,
            parent: Option<SpanId>,
            at: SimTime,
        ) -> SpanId {
            match &self.inner {
                Some(i) => i.trace.borrow_mut().start_span(name, tier, parent, at),
                None => SpanId::NULL,
            }
        }

        /// Open a span carrying its initial attributes in one log borrow.
        /// Guard attribute construction with [`Telemetry::is_enabled`] on
        /// hot paths; returns [`SpanId::NULL`] when disabled.
        pub fn start_span_with(
            &self,
            name: &'static str,
            tier: Tier,
            parent: Option<SpanId>,
            at: SimTime,
            attrs: Vec<(&'static str, Json)>,
        ) -> SpanId {
            match &self.inner {
                Some(i) => i
                    .trace
                    .borrow_mut()
                    .start_span_with(name, tier, parent, at, attrs),
                None => SpanId::NULL,
            }
        }

        pub fn end_span(&self, id: SpanId, at: SimTime) {
            if let Some(i) = &self.inner {
                i.trace.borrow_mut().end_span(id, at);
            }
        }

        pub fn span_attr(&self, id: SpanId, key: &'static str, value: Json) {
            if let Some(i) = &self.inner {
                i.trace.borrow_mut().span_attr(id, key, value);
            }
        }

        /// Record a point event. `attrs` pairs become the event's JSON
        /// attributes. Guard costly attribute construction with
        /// [`Telemetry::is_enabled`] on hot paths.
        pub fn event(
            &self,
            name: &'static str,
            tier: Tier,
            span: Option<SpanId>,
            at: SimTime,
            attrs: &[(&'static str, Json)],
        ) {
            if let Some(i) = &self.inner {
                i.trace
                    .borrow_mut()
                    .event(name, tier, span, at, attrs.to_vec());
            }
        }

        /// Turn per-statement VM profiling on or off. No-op when
        /// disabled.
        pub fn set_profiling(&self, on: bool) {
            if let Some(i) = &self.inner {
                i.profiling.set(on);
            }
        }

        /// Whether VM profiling is currently requested.
        pub fn profiling_enabled(&self) -> bool {
            self.inner.as_ref().is_some_and(|i| i.profiling.get())
        }

        /// The shared profiler, for passing to `handle_traced` as the
        /// instrument (`&mut *profiler.borrow_mut()`).
        pub fn profiler(&self) -> Option<Rc<RefCell<StmtProfiler>>> {
            self.inner.as_ref().map(|i| i.profiler.clone())
        }

        pub fn span_count(&self) -> usize {
            self.inner
                .as_ref()
                .map_or(0, |i| i.trace.borrow().span_count())
        }

        pub fn event_count(&self) -> usize {
            self.inner
                .as_ref()
                .map_or(0, |i| i.trace.borrow().event_count())
        }

        /// Trace records refused because the log hit its cap.
        pub fn trace_dropped(&self) -> u64 {
            self.inner
                .as_ref()
                .map_or(0, |i| i.trace.borrow().dropped())
        }

        /// JSON Lines export of the span/event log (empty when disabled).
        pub fn export_trace_jsonl(&self) -> String {
            self.inner
                .as_ref()
                .map_or_else(String::new, |i| i.trace.borrow().export_jsonl())
        }

        /// Prometheus text exposition of the registry (empty when
        /// disabled).
        pub fn export_prometheus(&self) -> String {
            self.inner
                .as_ref()
                .map_or_else(String::new, |i| i.registry.render_prometheus())
        }

        /// Collapsed-stack profile weighted by virtual cycles (empty when
        /// disabled).
        pub fn collapsed_cycles(&self) -> String {
            self.inner
                .as_ref()
                .map_or_else(String::new, |i| i.profiler.borrow().collapsed_cycles())
        }

        /// Collapsed-stack profile weighted by allocations (empty when
        /// disabled).
        pub fn collapsed_allocs(&self) -> String {
            self.inner
                .as_ref()
                .map_or_else(String::new, |i| i.profiler.borrow().collapsed_allocs())
        }
    }
}

#[cfg(not(feature = "enabled"))]
mod handle {
    use crate::profile::StmtProfiler;
    use crate::registry::Registry;
    use crate::trace::{SpanId, Tier};
    use edgstr_sim::SimTime;
    use serde_json::Value as Json;
    use std::cell::RefCell;
    use std::rc::Rc;

    /// Compiled-out telemetry: a zero-sized handle whose every method is
    /// an inline no-op. Same API surface as the enabled build.
    #[derive(Clone, Copy, Debug, Default)]
    pub struct Telemetry;

    impl Telemetry {
        #[inline(always)]
        pub fn disabled() -> Self {
            Telemetry
        }

        /// With the `enabled` feature compiled out, "recording" handles
        /// are indistinguishable from disabled ones.
        #[inline(always)]
        pub fn recording() -> Self {
            Telemetry
        }

        #[inline(always)]
        pub fn is_enabled(&self) -> bool {
            false
        }

        #[inline(always)]
        pub fn registry(&self) -> Option<Registry> {
            None
        }

        #[inline(always)]
        pub fn start_span(
            &self,
            _name: &'static str,
            _tier: Tier,
            _parent: Option<SpanId>,
            _at: SimTime,
        ) -> SpanId {
            SpanId::NULL
        }

        #[inline(always)]
        pub fn start_span_with(
            &self,
            _name: &'static str,
            _tier: Tier,
            _parent: Option<SpanId>,
            _at: SimTime,
            _attrs: Vec<(&'static str, Json)>,
        ) -> SpanId {
            SpanId::NULL
        }

        #[inline(always)]
        pub fn end_span(&self, _id: SpanId, _at: SimTime) {}

        #[inline(always)]
        pub fn span_attr(&self, _id: SpanId, _key: &'static str, _value: Json) {}

        #[inline(always)]
        pub fn event(
            &self,
            _name: &'static str,
            _tier: Tier,
            _span: Option<SpanId>,
            _at: SimTime,
            _attrs: &[(&'static str, Json)],
        ) {
        }

        #[inline(always)]
        pub fn set_profiling(&self, _on: bool) {}

        #[inline(always)]
        pub fn profiling_enabled(&self) -> bool {
            false
        }

        #[inline(always)]
        pub fn profiler(&self) -> Option<Rc<RefCell<StmtProfiler>>> {
            None
        }

        #[inline(always)]
        pub fn span_count(&self) -> usize {
            0
        }

        #[inline(always)]
        pub fn event_count(&self) -> usize {
            0
        }

        #[inline(always)]
        pub fn trace_dropped(&self) -> u64 {
            0
        }

        #[inline(always)]
        pub fn export_trace_jsonl(&self) -> String {
            String::new()
        }

        #[inline(always)]
        pub fn export_prometheus(&self) -> String {
            String::new()
        }

        #[inline(always)]
        pub fn collapsed_cycles(&self) -> String {
            String::new()
        }

        #[inline(always)]
        pub fn collapsed_allocs(&self) -> String {
            String::new()
        }
    }
}

pub use handle::Telemetry;

#[cfg(all(test, feature = "enabled"))]
mod tests {
    use super::*;
    use edgstr_sim::SimTime;
    use serde_json::json;

    #[test]
    fn disabled_handle_is_inert() {
        let t = Telemetry::disabled();
        assert!(!t.is_enabled());
        let span = t.start_span("request", Tier::Client, None, SimTime(0));
        assert!(span.is_null());
        t.event("x", Tier::System, Some(span), SimTime(1), &[]);
        t.end_span(span, SimTime(2));
        assert!(t.registry().is_none());
        assert_eq!(t.export_trace_jsonl(), "");
        assert_eq!(t.export_prometheus(), "");
    }

    #[test]
    fn recording_handle_shares_state_across_clones() {
        let t = Telemetry::recording();
        let t2 = t.clone();
        let span = t.start_span("request", Tier::Client, None, SimTime(0));
        t2.span_attr(span, "path", json!("/books"));
        t2.end_span(span, SimTime(5));
        assert_eq!(t.span_count(), 1);
        let reg = t.registry().expect("enabled registry");
        reg.counter("edgstr_requests_total", &[]).inc();
        assert!(t2.export_prometheus().contains("edgstr_requests_total 1"));
        assert!(t.export_trace_jsonl().contains("\"path\":\"/books\""));
        assert!(!t.profiling_enabled());
        t2.set_profiling(true);
        assert!(t.profiling_enabled());
    }
}
