//! Mergeable log-linear histogram over `u64` samples (virtual-time
//! microseconds, bytes, cycles — anything non-negative).
//!
//! The bucket layout is HDR-style: each power-of-two octave is split into
//! 16 linear sub-buckets, so every bucket's width is at most 1/16 of its
//! lower bound and any recorded quantile is off by a relative error of at
//! most 6.25%. Values below 16 get exact unit buckets. The layout is
//! *fixed* (976 buckets covering the full `u64` range), which makes merge
//! a plain per-bucket count addition — associative and commutative by
//! construction — and lets replicas ship histograms as sparse
//! `[index, count]` pairs and aggregate them anywhere.

use serde_json::{json, Value as Json};

/// log2 of the number of linear sub-buckets per octave.
const SUB_BITS: u32 = 4;
/// Linear sub-buckets per octave.
const SUB: usize = 1 << SUB_BITS;
/// Total fixed buckets: one linear octave of 16 unit buckets plus 60
/// log-spaced octaves × 16 sub-buckets, covering all of `u64`.
pub const NUM_BUCKETS: usize = SUB * (64 - SUB_BITS as usize + 1);

/// Index of the bucket containing `v`.
#[inline]
pub fn bucket_index(v: u64) -> usize {
    if v < SUB as u64 {
        v as usize
    } else {
        let msb = 63 - v.leading_zeros();
        let octave = (msb - SUB_BITS + 1) as usize;
        let sub = ((v >> (msb - SUB_BITS)) & (SUB as u64 - 1)) as usize;
        octave * SUB + sub
    }
}

/// Smallest value that lands in bucket `idx`.
#[inline]
pub fn bucket_low(idx: usize) -> u64 {
    debug_assert!(idx < NUM_BUCKETS);
    if idx < SUB {
        idx as u64
    } else {
        let octave = idx / SUB;
        let sub = idx % SUB;
        ((SUB + sub) as u64) << (octave - 1)
    }
}

/// Largest value that lands in bucket `idx`.
#[inline]
pub fn bucket_high(idx: usize) -> u64 {
    if idx + 1 >= NUM_BUCKETS {
        u64::MAX
    } else {
        bucket_low(idx + 1) - 1
    }
}

/// Fixed-layout log-linear histogram. See the module docs for the bucket
/// scheme and the merge/quantile guarantees.
#[derive(Clone)]
pub struct LogLinHistogram {
    counts: Box<[u64; NUM_BUCKETS]>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for LogLinHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for LogLinHistogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LogLinHistogram")
            .field("count", &self.count)
            .field("sum", &self.sum)
            .field("min", &self.min)
            .field("max", &self.max)
            .finish()
    }
}

impl PartialEq for LogLinHistogram {
    fn eq(&self, other: &Self) -> bool {
        self.count == other.count
            && self.sum == other.sum
            && self.min == other.min
            && self.max == other.max
            && self.counts[..] == other.counts[..]
    }
}

impl LogLinHistogram {
    pub fn new() -> Self {
        LogLinHistogram {
            counts: Box::new([0; NUM_BUCKETS]),
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Record one sample.
    #[inline]
    pub fn record(&mut self, v: u64) {
        self.record_n(v, 1);
    }

    /// Record `n` samples of value `v`.
    pub fn record_n(&mut self, v: u64, n: u64) {
        if n == 0 {
            return;
        }
        self.counts[bucket_index(v)] += n;
        self.count += n;
        self.sum = self.sum.saturating_add(v.saturating_mul(n));
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    pub fn count(&self) -> u64 {
        self.count
    }

    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest recorded value (`None` when empty).
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest recorded value (`None` when empty).
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Mean of recorded values, 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Fold `other` into `self`. Because the bucket layout is fixed this
    /// is a per-bucket addition: associative, commutative, with the empty
    /// histogram as identity (the proptests pin all three).
    pub fn merge(&mut self, other: &LogLinHistogram) {
        if other.count == 0 {
            return;
        }
        for (dst, src) in self.counts.iter_mut().zip(other.counts.iter()) {
            *dst += *src;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Nearest-rank quantile, reported as the lower bound of the bucket
    /// holding the ranked sample (clamped to the observed min/max). The
    /// rank rule matches `edgstr_sim::LatencyStats::quantile`, so the
    /// result is always in the same bucket as the exact sorted-sample
    /// answer — within one bucket-width, i.e. ≤ 6.25% relative error.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((self.count - 1) as f64 * q.clamp(0.0, 1.0)).round() as u64;
        let mut seen = 0u64;
        for (idx, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen > rank {
                return bucket_low(idx).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Iterate non-empty buckets as `(index, count)`.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (usize, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (i, c))
    }

    /// Sparse JSON encoding: scalars plus `[index, count]` pairs for the
    /// non-empty buckets. `decode` round-trips exactly.
    pub fn encode(&self) -> Json {
        let buckets: Vec<Json> = self
            .nonzero_buckets()
            .map(|(i, c)| json!([i as u64, c]))
            .collect();
        json!({
            "count": self.count,
            "sum": self.sum,
            "min": if self.count > 0 { self.min } else { 0 },
            "max": self.max,
            "buckets": buckets,
        })
    }

    /// Rebuild a histogram from `encode` output. Returns `None` on any
    /// structural mismatch (bad index, inconsistent total).
    pub fn decode(v: &Json) -> Option<Self> {
        let mut h = LogLinHistogram::new();
        let obj = v.as_object()?;
        let count = obj.get("count")?.as_u64()?;
        let sum = obj.get("sum")?.as_u64()?;
        let min = obj.get("min")?.as_u64()?;
        let max = obj.get("max")?.as_u64()?;
        let mut total = 0u64;
        for pair in obj.get("buckets")?.as_array()? {
            let pair = pair.as_array()?;
            let idx = pair.first()?.as_u64()? as usize;
            let c = pair.get(1)?.as_u64()?;
            if idx >= NUM_BUCKETS || c == 0 || h.counts[idx] != 0 {
                return None;
            }
            h.counts[idx] = c;
            total += c;
        }
        if total != count {
            return None;
        }
        h.count = count;
        h.sum = sum;
        h.min = if count > 0 { min } else { u64::MAX };
        h.max = max;
        Some(h)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_buckets_are_exact_below_16() {
        for v in 0..16u64 {
            assert_eq!(bucket_index(v), v as usize);
            assert_eq!(bucket_low(v as usize), v);
            assert_eq!(bucket_high(v as usize), v);
        }
    }

    #[test]
    fn bucket_bounds_bracket_their_values() {
        for v in [
            16u64,
            17,
            31,
            32,
            33,
            1000,
            123_456,
            u32::MAX as u64,
            u64::MAX / 2,
            u64::MAX,
        ] {
            let idx = bucket_index(v);
            assert!(
                bucket_low(idx) <= v && v <= bucket_high(idx),
                "v={v} idx={idx}"
            );
        }
        assert_eq!(bucket_index(u64::MAX), NUM_BUCKETS - 1);
    }

    #[test]
    fn bucket_width_bounds_relative_error() {
        for idx in SUB..NUM_BUCKETS - 1 {
            let low = bucket_low(idx);
            let width = bucket_high(idx) - low + 1;
            assert!(
                width <= low / SUB as u64,
                "idx={idx} low={low} width={width}"
            );
        }
    }

    #[test]
    fn record_and_summary() {
        let mut h = LogLinHistogram::new();
        assert!(h.is_empty());
        assert_eq!(h.quantile(0.5), 0);
        for v in [3u64, 3, 7, 100, 20_000] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 20_113);
        assert_eq!(h.min(), Some(3));
        assert_eq!(h.max(), Some(20_000));
        assert_eq!(h.quantile(0.0), 3);
        assert_eq!(h.quantile(0.5), 7);
        // p100 is the max bucket's low bound clamped to the observed max
        assert!(h.quantile(1.0) <= 20_000 && h.quantile(1.0) >= 18_750);
    }

    #[test]
    fn merge_matches_bulk_record() {
        let mut a = LogLinHistogram::new();
        let mut b = LogLinHistogram::new();
        let mut all = LogLinHistogram::new();
        for v in [1u64, 50, 999] {
            a.record(v);
            all.record(v);
        }
        for v in [2u64, 50, 1_000_000] {
            b.record(v);
            all.record(v);
        }
        a.merge(&b);
        assert_eq!(a, all);
    }

    #[test]
    fn encode_decode_round_trip() {
        let mut h = LogLinHistogram::new();
        for v in [0u64, 5, 16, 17, 4096, 1 << 40] {
            h.record_n(v, 3);
        }
        let decoded = LogLinHistogram::decode(&h.encode()).expect("decodes");
        assert_eq!(h, decoded);
        assert!(LogLinHistogram::decode(&json!({"count": 1})).is_none());
    }
}
