//! Labeled metrics registry: counters, gauges, and log-linear histograms.
//!
//! Handles are cheap clones resolved once (by metric name plus a sorted
//! label set) and bumped on the hot path without any map lookup. Counter
//! and gauge handles are lock-free atomics and `Send`, so they can live
//! inside per-thread state (the parallel executor's per-replica response
//! caches hold them); the registry handle itself and histograms stay
//! single-threaded. For cross-thread aggregation each worker owns its own
//! registry *shard* and the shards are folded at snapshot time via
//! [`RegistrySnapshot`] — see [`Registry::snapshot`] / [`Registry::absorb`].
//! Iteration order is the `BTreeMap` order of `(name, labels)`, which
//! makes the Prometheus text exposition byte-stable across runs.

use crate::histogram::{bucket_high, LogLinHistogram};
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::rc::Rc;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A metric identity: name plus sorted `key="value"` labels.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
struct MetricKey {
    name: String,
    labels: Vec<(String, String)>,
}

impl MetricKey {
    fn new(name: &str, labels: &[(&str, &str)]) -> Self {
        let mut labels: Vec<(String, String)> = labels
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect();
        labels.sort();
        MetricKey {
            name: name.to_string(),
            labels,
        }
    }

    fn render(&self) -> String {
        if self.labels.is_empty() {
            return self.name.clone();
        }
        let mut out = format!("{}{{", self.name);
        for (i, (k, v)) in self.labels.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{k}=\"{v}\"");
        }
        out.push('}');
        out
    }
}

/// Monotonic counter handle. Lock-free and `Send`: increments use relaxed
/// atomics, which is sufficient because counters carry no ordering
/// obligations — they are only read at snapshot/render time.
#[derive(Clone, Debug)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Last-value gauge handle, stored as the raw bits of an `f64` in an
/// atomic so the handle is `Send` like [`Counter`].
#[derive(Clone, Debug)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    #[inline]
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    #[inline]
    pub fn add(&self, v: f64) {
        let _ = self
            .0
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |bits| {
                Some((f64::from_bits(bits) + v).to_bits())
            });
    }

    #[inline]
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// Histogram handle; see [`LogLinHistogram`] for the bucket scheme.
/// Deliberately thread-owned (`Rc<RefCell<...>>`): histograms are only
/// recorded from the registry's owning thread, and cross-thread folding
/// goes through [`RegistrySnapshot`] instead.
#[derive(Clone, Debug)]
pub struct Histogram(Rc<RefCell<LogLinHistogram>>);

impl Histogram {
    #[inline]
    pub fn record(&self, v: u64) {
        self.0.borrow_mut().record(v);
    }

    pub fn snapshot(&self) -> LogLinHistogram {
        self.0.borrow().clone()
    }
}

#[derive(Default, Debug)]
struct RegistryInner {
    counters: BTreeMap<MetricKey, Arc<AtomicU64>>,
    gauges: BTreeMap<MetricKey, Arc<AtomicU64>>,
    histograms: BTreeMap<MetricKey, Rc<RefCell<LogLinHistogram>>>,
}

/// Shared metrics registry. Cloning the registry clones a handle to the
/// same underlying metric families.
#[derive(Clone, Default, Debug)]
pub struct Registry {
    inner: Rc<RefCell<RegistryInner>>,
}

/// A plain-data, `Send` capture of a registry's contents, used to fold
/// per-worker registry shards into one aggregate after a parallel run.
///
/// Merge semantics are **additive for every metric kind**: counters and
/// histogram buckets add exactly (they are integers), and gauges add their
/// values too — a shard's gauge is a *partial contribution* to the fleet
/// total (bytes buffered, requests in flight), not a last-writer value.
/// Additive folding is the only semantics that is independent of shard
/// enumeration order, which is what makes `fold(shards)` equal the
/// single-registry result regardless of how work was partitioned.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct RegistrySnapshot {
    counters: BTreeMap<MetricKey, u64>,
    // Gauge values are kept as f64 bits so `PartialEq` compares exactly.
    gauges: BTreeMap<MetricKey, u64>,
    histograms: BTreeMap<MetricKey, LogLinHistogram>,
}

impl RegistrySnapshot {
    /// True if the snapshot holds no metrics at all (e.g. taken from a
    /// disabled telemetry build).
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Fold `other` into `self`: counters add, gauges add (partial sums),
    /// histograms merge bucket-wise.
    pub fn merge(&mut self, other: &RegistrySnapshot) {
        for (key, v) in &other.counters {
            *self.counters.entry(key.clone()).or_insert(0) += v;
        }
        for (key, bits) in &other.gauges {
            let slot = self.gauges.entry(key.clone()).or_insert(0);
            *slot = (f64::from_bits(*slot) + f64::from_bits(*bits)).to_bits();
        }
        for (key, h) in &other.histograms {
            self.histograms.entry(key.clone()).or_default().merge(h);
        }
    }

    /// The counter value for `name` with `labels`, 0 if absent.
    pub fn counter_value(&self, name: &str, labels: &[(&str, &str)]) -> u64 {
        self.counters
            .get(&MetricKey::new(name, labels))
            .copied()
            .unwrap_or(0)
    }

    /// The gauge value for `name` with `labels`, 0.0 if absent.
    pub fn gauge_value(&self, name: &str, labels: &[(&str, &str)]) -> f64 {
        self.gauges
            .get(&MetricKey::new(name, labels))
            .map(|bits| f64::from_bits(*bits))
            .unwrap_or(0.0)
    }

    /// The histogram for `name` with `labels`, if recorded.
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Option<&LogLinHistogram> {
        self.histograms.get(&MetricKey::new(name, labels))
    }
}

impl Registry {
    pub fn new() -> Self {
        Self::default()
    }

    /// Resolve (creating if absent) the counter `name` with `labels`.
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Counter {
        let key = MetricKey::new(name, labels);
        let cell = self
            .inner
            .borrow_mut()
            .counters
            .entry(key)
            .or_default()
            .clone();
        Counter(cell)
    }

    /// Resolve (creating if absent) the gauge `name` with `labels`.
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Gauge {
        let key = MetricKey::new(name, labels);
        let cell = self
            .inner
            .borrow_mut()
            .gauges
            .entry(key)
            .or_default()
            .clone();
        Gauge(cell)
    }

    /// Resolve (creating if absent) the histogram `name` with `labels`.
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Histogram {
        let key = MetricKey::new(name, labels);
        let cell = self
            .inner
            .borrow_mut()
            .histograms
            .entry(key)
            .or_default()
            .clone();
        Histogram(cell)
    }

    /// Capture the registry's current contents as plain `Send` data.
    pub fn snapshot(&self) -> RegistrySnapshot {
        let inner = self.inner.borrow();
        RegistrySnapshot {
            counters: inner
                .counters
                .iter()
                .map(|(k, c)| (k.clone(), c.load(Ordering::Relaxed)))
                .collect(),
            gauges: inner
                .gauges
                .iter()
                .map(|(k, g)| (k.clone(), g.load(Ordering::Relaxed)))
                .collect(),
            histograms: inner
                .histograms
                .iter()
                .map(|(k, h)| (k.clone(), h.borrow().clone()))
                .collect(),
        }
    }

    /// Fold a snapshot (typically from a worker shard) into this registry:
    /// counters add, gauges add, histograms merge. See [`RegistrySnapshot`]
    /// for why gauges fold additively.
    pub fn absorb(&self, snap: &RegistrySnapshot) {
        for (key, v) in &snap.counters {
            let cell = self
                .inner
                .borrow_mut()
                .counters
                .entry(key.clone())
                .or_default()
                .clone();
            cell.fetch_add(*v, Ordering::Relaxed);
        }
        for (key, bits) in &snap.gauges {
            let cell = self
                .inner
                .borrow_mut()
                .gauges
                .entry(key.clone())
                .or_default()
                .clone();
            let _ = cell.fetch_update(Ordering::Relaxed, Ordering::Relaxed, |cur| {
                Some((f64::from_bits(cur) + f64::from_bits(*bits)).to_bits())
            });
        }
        for (key, h) in &snap.histograms {
            let cell = self
                .inner
                .borrow_mut()
                .histograms
                .entry(key.clone())
                .or_default()
                .clone();
            cell.borrow_mut().merge(h);
        }
    }

    /// Prometheus text exposition of every registered metric, in
    /// deterministic `(name, labels)` order. Histograms render cumulative
    /// `_bucket{le=...}` series over their non-empty buckets plus the
    /// conventional `+Inf`, `_sum`, and `_count`.
    pub fn render_prometheus(&self) -> String {
        let inner = self.inner.borrow();
        let mut out = String::new();
        for (key, cell) in &inner.counters {
            let _ = writeln!(out, "{} {}", key.render(), cell.load(Ordering::Relaxed));
        }
        for (key, cell) in &inner.gauges {
            let _ = writeln!(
                out,
                "{} {}",
                key.render(),
                f64::from_bits(cell.load(Ordering::Relaxed))
            );
        }
        for (key, cell) in &inner.histograms {
            let h = cell.borrow();
            let mut cum = 0u64;
            for (idx, count) in h.nonzero_buckets() {
                cum += count;
                let mut labeled = key.labels.clone();
                labeled.push(("le".into(), bucket_high(idx).to_string()));
                let bucket_key = MetricKey {
                    name: format!("{}_bucket", key.name),
                    labels: labeled,
                };
                let _ = writeln!(out, "{} {}", bucket_key.render(), cum);
            }
            let inf_key = MetricKey {
                name: format!("{}_bucket", key.name),
                labels: {
                    let mut l = key.labels.clone();
                    l.push(("le".into(), "+Inf".into()));
                    l
                },
            };
            let _ = writeln!(out, "{} {}", inf_key.render(), h.count());
            let _ = writeln!(
                out,
                "{} {}",
                MetricKey {
                    name: format!("{}_sum", key.name),
                    labels: key.labels.clone()
                }
                .render(),
                h.sum()
            );
            let _ = writeln!(
                out,
                "{} {}",
                MetricKey {
                    name: format!("{}_count", key.name),
                    labels: key.labels.clone()
                }
                .render(),
                h.count()
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handles_share_state_and_render_sorted() {
        let reg = Registry::new();
        let a = reg.counter("edgstr_requests_total", &[("tier", "edge")]);
        let b = reg.counter("edgstr_requests_total", &[("tier", "edge")]);
        a.add(2);
        b.inc();
        assert_eq!(a.get(), 3);
        reg.counter("edgstr_requests_total", &[("tier", "cloud")])
            .inc();
        reg.gauge("edgstr_replicas", &[]).set(4.0);
        let h = reg.histogram("edgstr_latency_us", &[]);
        h.record(10);
        h.record(100);
        let text = reg.render_prometheus();
        let cloud = text
            .find("edgstr_requests_total{tier=\"cloud\"} 1")
            .expect("cloud row");
        let edge = text
            .find("edgstr_requests_total{tier=\"edge\"} 3")
            .expect("edge row");
        assert!(cloud < edge, "label order is sorted: {text}");
        assert!(text.contains("edgstr_replicas 4"));
        assert!(text.contains("edgstr_latency_us_bucket{le=\"10\"} 1"));
        assert!(text.contains("edgstr_latency_us_bucket{le=\"+Inf\"} 2"));
        assert!(text.contains("edgstr_latency_us_sum 110"));
        assert!(text.contains("edgstr_latency_us_count 2"));
        assert_eq!(reg.render_prometheus(), text, "exposition is stable");
    }

    #[test]
    fn counter_and_gauge_handles_are_send() {
        fn assert_send<T: Send>() {}
        assert_send::<Counter>();
        assert_send::<Gauge>();
        assert_send::<RegistrySnapshot>();
    }

    #[test]
    fn counter_handles_work_across_threads() {
        let reg = Registry::new();
        let c = reg.counter("edgstr_cross_thread_total", &[]);
        let g = reg.gauge("edgstr_cross_thread_bytes", &[]);
        std::thread::scope(|s| {
            for _ in 0..4 {
                let c = c.clone();
                let g = g.clone();
                s.spawn(move || {
                    for _ in 0..1000 {
                        c.inc();
                        g.add(2.0);
                    }
                });
            }
        });
        assert_eq!(c.get(), 4000);
        assert_eq!(g.get(), 8000.0);
    }

    #[test]
    fn snapshot_merge_and_absorb_are_additive() {
        let a = Registry::new();
        a.counter("reqs", &[("tier", "edge")]).add(3);
        a.gauge("buffered", &[]).add(1.5);
        a.histogram("lat", &[]).record(10);
        let b = Registry::new();
        b.counter("reqs", &[("tier", "edge")]).add(4);
        b.counter("reqs", &[("tier", "cloud")]).inc();
        b.gauge("buffered", &[]).add(2.5);
        b.histogram("lat", &[]).record(100);

        let mut folded = a.snapshot();
        folded.merge(&b.snapshot());
        assert_eq!(folded.counter_value("reqs", &[("tier", "edge")]), 7);
        assert_eq!(folded.counter_value("reqs", &[("tier", "cloud")]), 1);
        assert_eq!(folded.gauge_value("buffered", &[]), 4.0);
        let h = folded.histogram("lat", &[]).expect("merged histogram");
        assert_eq!(h.count(), 2);
        assert_eq!(h.sum(), 110);
        assert_eq!(folded.gauge_value("missing", &[]), 0.0);
        assert_eq!(folded.counter_value("missing", &[]), 0);
        assert!(folded.histogram("missing", &[]).is_none());

        let total = Registry::new();
        total.absorb(&a.snapshot());
        total.absorb(&b.snapshot());
        assert_eq!(total.snapshot(), folded, "absorb folds like merge");
        assert!(RegistrySnapshot::default().is_empty());
        assert!(!folded.is_empty());
    }
}
