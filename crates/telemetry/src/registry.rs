//! Labeled metrics registry: counters, gauges, and log-linear histograms.
//!
//! Handles are cheap `Rc` clones resolved once (by metric name plus a
//! sorted label set) and bumped on the hot path without any map lookup.
//! Everything is single-threaded by design — the simulator is
//! deterministic and so is the registry: iteration order is the
//! `BTreeMap` order of `(name, labels)`, which makes the Prometheus text
//! exposition byte-stable across runs.

use crate::histogram::{bucket_high, LogLinHistogram};
use std::cell::{Cell, RefCell};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::rc::Rc;

/// A metric identity: name plus sorted `key="value"` labels.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
struct MetricKey {
    name: String,
    labels: Vec<(String, String)>,
}

impl MetricKey {
    fn new(name: &str, labels: &[(&str, &str)]) -> Self {
        let mut labels: Vec<(String, String)> = labels
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect();
        labels.sort();
        MetricKey {
            name: name.to_string(),
            labels,
        }
    }

    fn render(&self) -> String {
        if self.labels.is_empty() {
            return self.name.clone();
        }
        let mut out = format!("{}{{", self.name);
        for (i, (k, v)) in self.labels.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{k}=\"{v}\"");
        }
        out.push('}');
        out
    }
}

/// Monotonic counter handle.
#[derive(Clone, Debug)]
pub struct Counter(Rc<Cell<u64>>);

impl Counter {
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    #[inline]
    pub fn add(&self, n: u64) {
        self.0.set(self.0.get() + n);
    }

    #[inline]
    pub fn get(&self) -> u64 {
        self.0.get()
    }
}

/// Last-value gauge handle.
#[derive(Clone, Debug)]
pub struct Gauge(Rc<Cell<f64>>);

impl Gauge {
    #[inline]
    pub fn set(&self, v: f64) {
        self.0.set(v);
    }

    #[inline]
    pub fn add(&self, v: f64) {
        self.0.set(self.0.get() + v);
    }

    #[inline]
    pub fn get(&self) -> f64 {
        self.0.get()
    }
}

/// Histogram handle; see [`LogLinHistogram`] for the bucket scheme.
#[derive(Clone, Debug)]
pub struct Histogram(Rc<RefCell<LogLinHistogram>>);

impl Histogram {
    #[inline]
    pub fn record(&self, v: u64) {
        self.0.borrow_mut().record(v);
    }

    pub fn snapshot(&self) -> LogLinHistogram {
        self.0.borrow().clone()
    }
}

#[derive(Default, Debug)]
struct RegistryInner {
    counters: BTreeMap<MetricKey, Rc<Cell<u64>>>,
    gauges: BTreeMap<MetricKey, Rc<Cell<f64>>>,
    histograms: BTreeMap<MetricKey, Rc<RefCell<LogLinHistogram>>>,
}

/// Shared metrics registry. Cloning the registry clones a handle to the
/// same underlying metric families.
#[derive(Clone, Default, Debug)]
pub struct Registry {
    inner: Rc<RefCell<RegistryInner>>,
}

impl Registry {
    pub fn new() -> Self {
        Self::default()
    }

    /// Resolve (creating if absent) the counter `name` with `labels`.
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Counter {
        let key = MetricKey::new(name, labels);
        let cell = self
            .inner
            .borrow_mut()
            .counters
            .entry(key)
            .or_default()
            .clone();
        Counter(cell)
    }

    /// Resolve (creating if absent) the gauge `name` with `labels`.
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Gauge {
        let key = MetricKey::new(name, labels);
        let cell = self
            .inner
            .borrow_mut()
            .gauges
            .entry(key)
            .or_default()
            .clone();
        Gauge(cell)
    }

    /// Resolve (creating if absent) the histogram `name` with `labels`.
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Histogram {
        let key = MetricKey::new(name, labels);
        let cell = self
            .inner
            .borrow_mut()
            .histograms
            .entry(key)
            .or_default()
            .clone();
        Histogram(cell)
    }

    /// Prometheus text exposition of every registered metric, in
    /// deterministic `(name, labels)` order. Histograms render cumulative
    /// `_bucket{le=...}` series over their non-empty buckets plus the
    /// conventional `+Inf`, `_sum`, and `_count`.
    pub fn render_prometheus(&self) -> String {
        let inner = self.inner.borrow();
        let mut out = String::new();
        for (key, cell) in &inner.counters {
            let _ = writeln!(out, "{} {}", key.render(), cell.get());
        }
        for (key, cell) in &inner.gauges {
            let _ = writeln!(out, "{} {}", key.render(), cell.get());
        }
        for (key, cell) in &inner.histograms {
            let h = cell.borrow();
            let mut cum = 0u64;
            for (idx, count) in h.nonzero_buckets() {
                cum += count;
                let mut labeled = key.labels.clone();
                labeled.push(("le".into(), bucket_high(idx).to_string()));
                let bucket_key = MetricKey {
                    name: format!("{}_bucket", key.name),
                    labels: labeled,
                };
                let _ = writeln!(out, "{} {}", bucket_key.render(), cum);
            }
            let inf_key = MetricKey {
                name: format!("{}_bucket", key.name),
                labels: {
                    let mut l = key.labels.clone();
                    l.push(("le".into(), "+Inf".into()));
                    l
                },
            };
            let _ = writeln!(out, "{} {}", inf_key.render(), h.count());
            let _ = writeln!(
                out,
                "{} {}",
                MetricKey {
                    name: format!("{}_sum", key.name),
                    labels: key.labels.clone()
                }
                .render(),
                h.sum()
            );
            let _ = writeln!(
                out,
                "{} {}",
                MetricKey {
                    name: format!("{}_count", key.name),
                    labels: key.labels.clone()
                }
                .render(),
                h.count()
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handles_share_state_and_render_sorted() {
        let reg = Registry::new();
        let a = reg.counter("edgstr_requests_total", &[("tier", "edge")]);
        let b = reg.counter("edgstr_requests_total", &[("tier", "edge")]);
        a.add(2);
        b.inc();
        assert_eq!(a.get(), 3);
        reg.counter("edgstr_requests_total", &[("tier", "cloud")])
            .inc();
        reg.gauge("edgstr_replicas", &[]).set(4.0);
        let h = reg.histogram("edgstr_latency_us", &[]);
        h.record(10);
        h.record(100);
        let text = reg.render_prometheus();
        let cloud = text
            .find("edgstr_requests_total{tier=\"cloud\"} 1")
            .expect("cloud row");
        let edge = text
            .find("edgstr_requests_total{tier=\"edge\"} 3")
            .expect("edge row");
        assert!(cloud < edge, "label order is sorted: {text}");
        assert!(text.contains("edgstr_replicas 4"));
        assert!(text.contains("edgstr_latency_us_bucket{le=\"10\"} 1"));
        assert!(text.contains("edgstr_latency_us_bucket{le=\"+Inf\"} 2"));
        assert!(text.contains("edgstr_latency_us_sum 110"));
        assert!(text.contains("edgstr_latency_us_count 2"));
        assert_eq!(reg.render_prometheus(), text, "exposition is stable");
    }
}
