//! Hierarchical spans and point events over virtual time.
//!
//! A span is an interval of `SimTime` with a name, a tier, an optional
//! parent, and free-form JSON attributes; an event is an instantaneous
//! marker attached to a span (or the root). Together they let one follow
//! a single request across client → edge → cloud, including forwards,
//! retries, degraded serves, fault drops, and sync-daemon rounds.
//!
//! The log is bounded: past [`TraceLog::DEFAULT_CAP`] spans/events new
//! records are counted in `dropped` instead of stored, so a long
//! simulation cannot grow memory without bound — and the drop count is
//! reported, never silent.

use edgstr_sim::SimTime;
use serde_json::{json, Map, Value as Json};

/// Which tier of the deployment a span or event belongs to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Tier {
    Client,
    Edge,
    Cloud,
    /// Infrastructure work that is not tied to one tier (sync daemon,
    /// autoscaler, fault injection).
    System,
}

impl Tier {
    pub fn as_str(self) -> &'static str {
        match self {
            Tier::Client => "client",
            Tier::Edge => "edge",
            Tier::Cloud => "cloud",
            Tier::System => "system",
        }
    }
}

/// Identifier of a recorded span. `SpanId(0)` is the reserved null id
/// handed out when telemetry is disabled or the log is saturated; it is
/// accepted (and ignored) everywhere a parent is expected.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct SpanId(pub u64);

impl SpanId {
    pub const NULL: SpanId = SpanId(0);

    pub fn is_null(self) -> bool {
        self.0 == 0
    }
}

#[derive(Clone, Debug)]
pub struct SpanRecord {
    pub id: SpanId,
    pub parent: Option<SpanId>,
    pub name: &'static str,
    pub tier: Tier,
    pub start: SimTime,
    pub end: Option<SimTime>,
    /// Attribute keys are static so the recording hot path never
    /// allocates for them; last write per key wins at export.
    pub attrs: Vec<(&'static str, Json)>,
}

#[derive(Clone, Debug)]
pub struct EventRecord {
    pub name: &'static str,
    pub tier: Tier,
    pub span: Option<SpanId>,
    pub at: SimTime,
    pub attrs: Vec<(&'static str, Json)>,
}

/// Attribute list -> JSON object; later writes of the same key win.
fn attr_map(attrs: &[(&'static str, Json)]) -> Map<String, Json> {
    let mut m = Map::new();
    for (k, v) in attrs {
        m.insert((*k).to_string(), v.clone());
    }
    m
}

/// Append-only span/event log. See the module docs for the bounding
/// policy.
#[derive(Debug)]
pub struct TraceLog {
    spans: Vec<SpanRecord>,
    events: Vec<EventRecord>,
    next_id: u64,
    cap: usize,
    dropped: u64,
}

impl Default for TraceLog {
    fn default() -> Self {
        Self::with_capacity(Self::DEFAULT_CAP)
    }
}

impl TraceLog {
    /// Combined span + event budget before new records are dropped.
    pub const DEFAULT_CAP: usize = 200_000;

    pub fn with_capacity(cap: usize) -> Self {
        TraceLog {
            spans: Vec::new(),
            events: Vec::new(),
            next_id: 1,
            cap,
            dropped: 0,
        }
    }

    /// Open a span. Returns [`SpanId::NULL`] (and counts a drop) once the
    /// log is saturated.
    pub fn start_span(
        &mut self,
        name: &'static str,
        tier: Tier,
        parent: Option<SpanId>,
        at: SimTime,
    ) -> SpanId {
        self.start_span_with(name, tier, parent, at, Vec::new())
    }

    /// Open a span carrying its initial attributes. One log borrow and one
    /// exact-capacity attribute vector instead of a `start_span` followed
    /// by per-key [`TraceLog::span_attr`] lookups — use this on hot paths.
    pub fn start_span_with(
        &mut self,
        name: &'static str,
        tier: Tier,
        parent: Option<SpanId>,
        at: SimTime,
        attrs: Vec<(&'static str, Json)>,
    ) -> SpanId {
        if self.spans.len() + self.events.len() >= self.cap {
            self.dropped += 1;
            return SpanId::NULL;
        }
        let id = SpanId(self.next_id);
        self.next_id += 1;
        self.spans.push(SpanRecord {
            id,
            parent: parent.filter(|p| !p.is_null()),
            name,
            tier,
            start: at,
            end: None,
            attrs,
        });
        id
    }

    /// Close a span. Ignores the null id.
    pub fn end_span(&mut self, id: SpanId, at: SimTime) {
        if id.is_null() {
            return;
        }
        if let Some(span) = self.spans.iter_mut().rev().find(|s| s.id == id) {
            span.end = Some(at);
        }
    }

    /// Attach an attribute to an open (or closed) span. Ignores the null
    /// id.
    pub fn span_attr(&mut self, id: SpanId, key: &'static str, value: Json) {
        if id.is_null() {
            return;
        }
        if let Some(span) = self.spans.iter_mut().rev().find(|s| s.id == id) {
            span.attrs.push((key, value));
        }
    }

    /// Record a point event, optionally attached to a span.
    pub fn event(
        &mut self,
        name: &'static str,
        tier: Tier,
        span: Option<SpanId>,
        at: SimTime,
        attrs: Vec<(&'static str, Json)>,
    ) {
        if self.spans.len() + self.events.len() >= self.cap {
            self.dropped += 1;
            return;
        }
        self.events.push(EventRecord {
            name,
            tier,
            span: span.filter(|s| !s.is_null()),
            at,
            attrs,
        });
    }

    pub fn span_count(&self) -> usize {
        self.spans.len()
    }

    pub fn event_count(&self) -> usize {
        self.events.len()
    }

    /// Records refused because the log hit its cap.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    pub fn spans(&self) -> &[SpanRecord] {
        &self.spans
    }

    pub fn events(&self) -> &[EventRecord] {
        &self.events
    }

    /// Export the log as JSON Lines: one object per span, then one per
    /// event, each ordered by start time (stable on ties, preserving
    /// recording order). Times are virtual microseconds.
    pub fn export_jsonl(&self) -> String {
        let mut lines: Vec<(u64, usize, String)> =
            Vec::with_capacity(self.spans.len() + self.events.len());
        for (i, s) in self.spans.iter().enumerate() {
            let mut obj = Map::new();
            obj.insert("type".into(), json!("span"));
            obj.insert("id".into(), json!(s.id.0));
            if let Some(p) = s.parent {
                obj.insert("parent".into(), json!(p.0));
            }
            obj.insert("name".into(), json!(s.name));
            obj.insert("tier".into(), json!(s.tier.as_str()));
            obj.insert("start_us".into(), json!(s.start.0));
            if let Some(end) = s.end {
                obj.insert("end_us".into(), json!(end.0));
                obj.insert("duration_us".into(), json!(end.0.saturating_sub(s.start.0)));
            }
            if !s.attrs.is_empty() {
                obj.insert("attrs".into(), Json::Object(attr_map(&s.attrs)));
            }
            let line = serde_json::to_string(&Json::Object(obj)).expect("span serializes");
            lines.push((s.start.0, i, line));
        }
        let base = self.spans.len();
        for (i, e) in self.events.iter().enumerate() {
            let mut obj = Map::new();
            obj.insert("type".into(), json!("event"));
            obj.insert("name".into(), json!(e.name));
            obj.insert("tier".into(), json!(e.tier.as_str()));
            if let Some(s) = e.span {
                obj.insert("span".into(), json!(s.0));
            }
            obj.insert("at_us".into(), json!(e.at.0));
            if !e.attrs.is_empty() {
                obj.insert("attrs".into(), Json::Object(attr_map(&e.attrs)));
            }
            let line = serde_json::to_string(&Json::Object(obj)).expect("event serializes");
            lines.push((e.at.0, base + i, line));
        }
        lines.sort_by_key(|(at, seq, _)| (*at, *seq));
        let mut out = String::new();
        for (_, _, line) in lines {
            out.push_str(&line);
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(us: u64) -> SimTime {
        SimTime(us)
    }

    #[test]
    fn span_tree_round_trips_to_jsonl() {
        let mut log = TraceLog::default();
        let root = log.start_span("request", Tier::Client, None, t(0));
        let serve = log.start_span("serve", Tier::Edge, Some(root), t(10));
        log.span_attr(serve, "edge", json!(0));
        log.event("retry", Tier::Edge, Some(serve), t(15), Vec::new());
        log.end_span(serve, t(40));
        log.end_span(root, t(50));
        let out = log.export_jsonl();
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 3);
        let first: Json = serde_json::from_str(lines[0]).unwrap();
        assert_eq!(first["name"], json!("request"));
        assert_eq!(first["duration_us"], json!(50));
        let second: Json = serde_json::from_str(lines[1]).unwrap();
        assert_eq!(second["parent"], json!(1));
        assert_eq!(second["attrs"]["edge"], json!(0));
        let third: Json = serde_json::from_str(lines[2]).unwrap();
        assert_eq!(third["type"], json!("event"));
        assert_eq!(third["at_us"], json!(15));
    }

    #[test]
    fn saturated_log_counts_drops() {
        let mut log = TraceLog::with_capacity(1);
        let a = log.start_span("a", Tier::System, None, t(0));
        assert!(!a.is_null());
        let b = log.start_span("b", Tier::System, None, t(1));
        assert!(b.is_null());
        log.event("e", Tier::System, None, t(2), Vec::new());
        log.end_span(b, t(3));
        assert_eq!(log.span_count(), 1);
        assert_eq!(log.dropped(), 2);
    }
}
