//! Property tests for the log-linear histogram: merge is associative and
//! commutative with the empty histogram as identity, quantiles stay
//! within one bucket of the exact nearest-rank answer computed by
//! `edgstr_sim::LatencyStats`, and the sparse JSON encoding round-trips.

#![cfg(feature = "enabled")]

use edgstr_sim::{LatencyStats, SimDuration};
use edgstr_telemetry::{bucket_high, bucket_index, bucket_low, LogLinHistogram};
use proptest::prelude::*;

fn from_samples(samples: &[u64]) -> LogLinHistogram {
    let mut h = LogLinHistogram::new();
    for &v in samples {
        h.record(v);
    }
    h
}

/// Samples spanning unit buckets, mid-range octaves, and huge values.
fn sample() -> impl Strategy<Value = u64> {
    prop_oneof![0u64..64, 0u64..100_000, any::<u64>()]
}

fn samples() -> impl Strategy<Value = Vec<u64>> {
    prop::collection::vec(sample(), 0..200)
}

proptest! {
    #[test]
    fn merge_is_commutative(a in samples(), b in samples()) {
        let mut ab = from_samples(&a);
        ab.merge(&from_samples(&b));
        let mut ba = from_samples(&b);
        ba.merge(&from_samples(&a));
        prop_assert_eq!(ab, ba);
    }

    #[test]
    fn merge_is_associative(a in samples(), b in samples(), c in samples()) {
        let (ha, hb, hc) = (from_samples(&a), from_samples(&b), from_samples(&c));
        // (a + b) + c
        let mut left = ha.clone();
        left.merge(&hb);
        left.merge(&hc);
        // a + (b + c)
        let mut bc = hb.clone();
        bc.merge(&hc);
        let mut right = ha.clone();
        right.merge(&bc);
        prop_assert_eq!(left, right);
    }

    #[test]
    fn empty_is_merge_identity(a in samples()) {
        let h = from_samples(&a);
        let mut merged = h.clone();
        merged.merge(&LogLinHistogram::new());
        prop_assert_eq!(&merged, &h);
        let mut other_way = LogLinHistogram::new();
        other_way.merge(&h);
        prop_assert_eq!(&other_way, &h);
    }

    #[test]
    fn merge_equals_bulk_record(a in samples(), b in samples()) {
        let mut merged = from_samples(&a);
        merged.merge(&from_samples(&b));
        let mut all = a.clone();
        all.extend_from_slice(&b);
        prop_assert_eq!(merged, from_samples(&all));
    }

    /// For every quantile probed, the histogram answer lands in the same
    /// bucket as the exact nearest-rank sample from `LatencyStats` — the
    /// "within one bucket" accuracy contract.
    #[test]
    fn quantiles_track_latency_stats(
        a in prop::collection::vec(sample(), 1..200),
        q_pct in 0u64..101,
    ) {
        let h = from_samples(&a);
        let mut exact = LatencyStats::new();
        for &v in &a {
            exact.record(SimDuration(v));
        }
        for q in [q_pct as f64 / 100.0, 0.0, 0.5, 0.9, 0.99, 1.0] {
            let approx = h.quantile(q);
            let truth = exact.quantile(q).expect("non-empty").0;
            let idx = bucket_index(truth);
            prop_assert!(
                bucket_low(idx).min(truth) <= approx && approx <= bucket_high(idx),
                "q={q}: approx {approx} outside bucket [{}, {}] of exact {truth}",
                bucket_low(idx), bucket_high(idx)
            );
        }
    }

    #[test]
    fn encode_decode_round_trips(a in samples()) {
        let h = from_samples(&a);
        let decoded = LogLinHistogram::decode(&h.encode()).expect("valid encoding decodes");
        prop_assert_eq!(h, decoded);
    }
}
