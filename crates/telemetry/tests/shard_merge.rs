//! Property: folding per-worker registry shards yields exactly the totals
//! a single shared registry would have accumulated, no matter how the
//! operations were partitioned across shards or how the shards are folded.
//!
//! This is the contract the parallel executor depends on: each worker
//! thread owns a private registry shard, records into it with zero
//! coordination, and the driver folds the shards at the end of the run.
//!
//! Gauges participate *additively* (each shard holds a partial sum — see
//! `RegistrySnapshot`); the generated gauge deltas are whole numbers so
//! f64 addition is exact and the comparison is bit-precise.

use edgstr_telemetry::{Registry, RegistrySnapshot};
use proptest::prelude::*;

const NAMES: [&str; 3] = [
    "edgstr_requests_total",
    "edgstr_sync_bytes",
    "edgstr_lat_us",
];
const LABELS: [&[(&str, &str)]; 3] = [&[], &[("tier", "edge")], &[("tier", "cloud")]];

#[derive(Clone, Debug)]
enum Op {
    CounterAdd { metric: usize, label: usize, n: u64 },
    GaugeAdd { metric: usize, label: usize, n: u32 },
    HistRecord { metric: usize, label: usize, v: u64 },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    let idx = 0usize..NAMES.len();
    let lbl = 0usize..LABELS.len();
    prop_oneof![
        (idx.clone(), lbl.clone(), 0u64..10_000)
            .prop_map(|(metric, label, n)| { Op::CounterAdd { metric, label, n } }),
        (idx.clone(), lbl.clone(), 0u32..10_000).prop_map(|(metric, label, n)| Op::GaugeAdd {
            metric,
            label,
            n
        }),
        (idx, lbl, 0u64..1_000_000)
            .prop_map(|(metric, label, v)| { Op::HistRecord { metric, label, v } }),
    ]
}

fn apply(reg: &Registry, op: &Op) {
    match *op {
        Op::CounterAdd { metric, label, n } => reg.counter(NAMES[metric], LABELS[label]).add(n),
        Op::GaugeAdd { metric, label, n } => {
            reg.gauge(NAMES[metric], LABELS[label]).add(f64::from(n))
        }
        Op::HistRecord { metric, label, v } => {
            reg.histogram(NAMES[metric], LABELS[label]).record(v)
        }
    }
}

proptest! {
    #[test]
    fn sharded_merge_equals_single_registry(
        ops in proptest::collection::vec(op_strategy(), 0..200),
        shards in 1usize..6,
    ) {
        // Reference: one registry sees every operation.
        let single = Registry::new();
        for op in &ops {
            apply(&single, op);
        }

        // Partition the same operations across `shards` private registries.
        let shard_regs: Vec<Registry> = (0..shards).map(|_| Registry::new()).collect();
        for (i, op) in ops.iter().enumerate() {
            apply(&shard_regs[i % shards], op);
        }

        // Fold path 1: merge snapshots pairwise.
        let mut folded = RegistrySnapshot::default();
        for reg in &shard_regs {
            folded.merge(&reg.snapshot());
        }
        prop_assert_eq!(&folded, &single.snapshot());

        // Fold path 2: absorb shards into a fresh registry; the Prometheus
        // exposition must also match byte-for-byte.
        let absorbed = Registry::new();
        for reg in &shard_regs {
            absorbed.absorb(&reg.snapshot());
        }
        prop_assert_eq!(absorbed.snapshot(), single.snapshot());
        prop_assert_eq!(absorbed.render_prometheus(), single.render_prometheus());
    }
}
