//! Lowering from the NodeScript AST to a flat, execution-ready form.
//!
//! The tree-walking interpreter resolves every variable access through a
//! stack of `BTreeMap` scopes and unwinds control flow recursively. This
//! pass compiles a parsed [`Program`] once, ahead of execution:
//!
//! - **Slot resolution** — every name that is statically a local of its
//!   function (a parameter, `var` declaration, or nested `function`
//!   declaration) is assigned a frame slot; accesses become index loads
//!   instead of name hashing. Names that cannot be resolved statically
//!   (NodeScript scoping is dynamic: a callee can read its caller's
//!   locals) fall back to a by-name walk at runtime.
//! - **Atom interning** — identifiers, string literals, field names and
//!   method names are interned into a program-wide atom table of
//!   `Rc<str>`, so the hot path never allocates for a name.
//! - **Constant folding** — pure literal subtrees are evaluated at compile
//!   time; the folded [`Op::Const`] remembers how many AST nodes it
//!   replaced so virtual-cycle accounting matches the interpreter.
//! - **Flat layout** — statements become a linear [`Op`] array with jump
//!   targets; `return` exits the chunk directly instead of threading a
//!   `Flow` value through every block.
//!
//! [`StmtId`]s survive lowering unchanged: every statement begins with
//! [`Op::Stmt`], which charges the statement's cycles and reports
//! `StmtEnter` with the original id, so the profiler, fuzzer and datalog
//! slicer see exactly the trace the interpreter would have produced.

use crate::ast::{BinOp, Expr, LValue, Program, Stmt, StmtId, UnOp};
use crate::ops;
use crate::value::{Closure, Value};
use std::collections::HashMap;
use std::fmt;
use std::hash::{BuildHasherDefault, Hasher};
use std::rc::Rc;

/// FNV-1a hasher for the compiler's intern and slot tables. The keys are
/// short names and small integers with no DoS-resistance requirement, so
/// the single-multiply FNV round beats the default SipHash per lookup.
pub struct FnvHasher(u64);

impl Default for FnvHasher {
    fn default() -> Self {
        FnvHasher(0xcbf2_9ce4_8422_2325)
    }
}

impl Hasher for FnvHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
}

/// `BuildHasher` plugging [`FnvHasher`] into `HashMap`.
pub type FnvBuildHasher = BuildHasherDefault<FnvHasher>;

/// Entry point of a closure into its [`CompiledProgram`]: the program plus
/// the index of the chunk holding the function body.
#[derive(Clone)]
pub struct CompiledChunk {
    /// The program this chunk belongs to.
    pub program: Rc<CompiledProgram>,
    /// Index into [`CompiledProgram::chunks`].
    pub chunk: u16,
}

impl fmt::Debug for CompiledChunk {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Avoid dumping the whole program when debug-printing closures.
        write!(
            f,
            "CompiledChunk(#{} in {:p})",
            self.chunk,
            Rc::as_ptr(&self.program)
        )
    }
}

/// A fully lowered program: one chunk per function body plus chunk 0 for
/// the top level, sharing one atom table.
#[derive(Debug)]
pub struct CompiledProgram {
    /// Interned names and string literals.
    pub atoms: Vec<Rc<str>>,
    /// Global-variable table: gid → atom. Every name referenced anywhere
    /// in the program gets a gid (locals too — any name can dynamically
    /// become a global through NodeScript's assignment fallback).
    pub global_names: Vec<u32>,
    /// Chunk 0 is the top level; others are function bodies.
    pub chunks: Vec<Chunk>,
    /// Statement-id space of the source program (ids are `0..stmt_count`).
    pub stmt_count: u32,
}

/// One compiled function body (or the top level).
#[derive(Debug, Default)]
pub struct Chunk {
    /// Function name, for diagnostics.
    pub name: Option<String>,
    /// Parameter position → frame slot.
    pub params: Vec<u16>,
    /// Frame slot → atom of the local's name.
    pub locals: Vec<u32>,
    /// The flat instruction stream.
    pub ops: Vec<Op>,
}

/// A compile-time resolved variable reference.
#[derive(Debug, Clone, Copy)]
pub struct NameRef {
    /// Atom of the name, for dynamic fallback and trace events.
    pub atom: u32,
    /// Global id (index into [`CompiledProgram::global_names`]).
    pub gid: u32,
    /// Frame slot when the name is a static local of its chunk.
    pub slot: Option<u16>,
}

/// One VM instruction. Stack effects are noted as `pops → pushes`.
#[derive(Debug, Clone)]
pub enum Op {
    /// Statement entry: charge one step + `STMT_CYCLES`, set the current
    /// statement, report `StmtEnter`.
    Stmt(StmtId),
    /// Per-iteration loop budget check (one step, no cycles) — mirrors the
    /// interpreter's `budget()` call at the top of `while`/`for` bodies.
    LoopBudget,
    /// Charge `n` expression-evaluation steps (50 cycles each).
    Charge(u32),
    /// Push a folded constant, charging `weight` evaluation steps.
    Const { value: Value, weight: u32 },
    /// Load a variable (self-charges one step). `0 → 1`
    Load(NameRef),
    /// Assign to a variable. `1 → 0`
    Store { stmt: StmtId, name: NameRef },
    /// Declare a variable in the innermost scope. `1 → 0`
    Declare { stmt: StmtId, name: NameRef },
    /// Declare a named function. `0 → 0`
    DeclareFn {
        stmt: StmtId,
        name: NameRef,
        template: Rc<Closure>,
        chunk: u16,
    },
    /// Instantiate a function expression (self-charges one step). `0 → 1`
    MakeClosure { template: Rc<Closure>, chunk: u16 },
    /// Collect the top `n` values into an array. `n → 1`
    MakeArray(u32),
    /// Collect the top `keys.len()` values into an object. `n → 1`
    MakeObject(Rc<[String]>),
    /// Read `base.field`. `1 → 1`
    GetMember(Rc<str>),
    /// Read `base[idx]`; stack is `[base, idx]`. `2 → 1`
    GetIndex,
    /// Write `base.field = value`; stack is `[value, base]`. `2 → 0`
    SetMember {
        stmt: StmtId,
        field: Rc<str>,
        root: Option<NameRef>,
    },
    /// Write `base[idx] = value`; stack is `[value, base, idx]`. `3 → 0`
    SetIndex { stmt: StmtId, root: Option<NameRef> },
    /// Apply a non-logical binary operator; stack is `[a, b]`. `2 → 1`
    Binary(BinOp),
    /// Apply a unary operator. `1 → 1`
    Unary(UnOp),
    /// Short-circuit `&&`: if the top of stack is falsy jump to `target`
    /// keeping it, else pop it and continue into the right operand.
    And(u32),
    /// Short-circuit `||`: if the top of stack is truthy jump to `target`
    /// keeping it, else pop it and continue into the right operand.
    Or(u32),
    /// Unconditional jump.
    Jump(u32),
    /// Pop the condition; jump if falsy. `1 → 0`
    JumpIfFalse(u32),
    /// Call a callee; stack is `[args..., callee]`. `argc+1 → 1`
    Call { argc: u32 },
    /// Method call; stack is `[args..., base]`. `root` is set only for
    /// `push`/`pop`, whose receiver mutation the RW-log must see.
    CallMethod {
        method: Rc<str>,
        argc: u32,
        root: Option<NameRef>,
    },
    /// `new Ctor(args...)`. `argc → 1`
    New { ctor: Rc<str>, argc: u32 },
    /// Discard the top of stack (expression statements). `1 → 0`
    Pop,
    /// Return the top of stack from the current chunk. `1 → 0`
    Return,
    /// Return `null` from the current chunk.
    ReturnNull,
}

/// The root variable of a member/index chain, if any.
fn expr_root_var(e: &Expr) -> Option<&str> {
    match e {
        Expr::Var(v) => Some(v),
        Expr::Member(base, _) => expr_root_var(base),
        Expr::Index(base, _) => expr_root_var(base),
        _ => None,
    }
}

/// Names declared with `var`/`function` anywhere in `stmts` at the current
/// function level (recursing into blocks but not into nested function
/// bodies, which get their own chunks).
fn collect_declared(stmts: &[Stmt], out: &mut Vec<String>) {
    for s in stmts {
        match s {
            Stmt::Let { name, .. } | Stmt::Function { name, .. } => out.push(name.clone()),
            Stmt::If {
                then_block,
                else_block,
                ..
            } => {
                collect_declared(then_block, out);
                collect_declared(else_block, out);
            }
            Stmt::While { body, .. } => collect_declared(body, out),
            Stmt::For {
                init, update, body, ..
            } => {
                collect_declared(std::slice::from_ref(init), out);
                collect_declared(std::slice::from_ref(update), out);
                collect_declared(body, out);
            }
            Stmt::Assign { .. } | Stmt::Expr { .. } | Stmt::Return { .. } => {}
        }
    }
}

#[derive(Default)]
struct Compiler {
    atoms: Vec<Rc<str>>,
    atom_ids: HashMap<Rc<str>, u32, FnvBuildHasher>,
    global_names: Vec<u32>,
    gid_of_atom: HashMap<u32, u32, FnvBuildHasher>,
    chunks: Vec<Chunk>,
}

/// Per-chunk compilation state.
#[derive(Default)]
struct ChunkCtx {
    slot_of: HashMap<u32, u16, FnvBuildHasher>,
    locals: Vec<u32>,
    ops: Vec<Op>,
}

impl Compiler {
    /// A compiler whose constant pool and intern tables are pre-sized for
    /// `atom_refs` interning calls (an upper bound from a first AST pass),
    /// so cold compilation never rehashes or regrows them.
    fn with_atom_capacity(atom_refs: usize) -> Compiler {
        Compiler {
            atoms: Vec::with_capacity(atom_refs),
            atom_ids: HashMap::with_capacity_and_hasher(atom_refs, FnvBuildHasher::default()),
            global_names: Vec::with_capacity(atom_refs),
            gid_of_atom: HashMap::with_capacity_and_hasher(atom_refs, FnvBuildHasher::default()),
            chunks: Vec::new(),
        }
    }

    fn intern(&mut self, s: &str) -> u32 {
        if let Some(&id) = self.atom_ids.get(s) {
            return id;
        }
        let rc: Rc<str> = Rc::from(s);
        let id = self.atoms.len() as u32;
        self.atoms.push(Rc::clone(&rc));
        self.atom_ids.insert(rc, id);
        id
    }

    fn intern_rc(&mut self, s: &str) -> Rc<str> {
        let id = self.intern(s);
        Rc::clone(&self.atoms[id as usize])
    }

    fn gid(&mut self, atom: u32) -> u32 {
        if let Some(&g) = self.gid_of_atom.get(&atom) {
            return g;
        }
        let g = self.global_names.len() as u32;
        self.global_names.push(atom);
        self.gid_of_atom.insert(atom, g);
        g
    }

    fn resolve(&mut self, ctx: &ChunkCtx, name: &str) -> NameRef {
        let atom = self.intern(name);
        NameRef {
            atom,
            gid: self.gid(atom),
            slot: ctx.slot_of.get(&atom).copied(),
        }
    }

    fn compile_chunk(
        &mut self,
        name: Option<String>,
        params: &[String],
        body: &[Stmt],
        top_level: bool,
    ) -> u16 {
        assert!(self.chunks.len() < usize::from(u16::MAX), "too many chunks");
        let idx = self.chunks.len() as u16;
        self.chunks.push(Chunk::default()); // reserve the index for nesting
        let mut ctx = ChunkCtx::default();
        let mut param_slots = Vec::with_capacity(params.len());
        if !top_level {
            for p in params {
                let atom = self.intern(p);
                param_slots.push(slot_for(&mut ctx, atom));
            }
            let mut declared = Vec::new();
            collect_declared(body, &mut declared);
            for d in &declared {
                let atom = self.intern(d);
                slot_for(&mut ctx, atom);
            }
        }
        for s in body {
            self.compile_stmt(&mut ctx, s);
        }
        self.chunks[idx as usize] = Chunk {
            name,
            params: param_slots,
            locals: ctx.locals,
            ops: ctx.ops,
        };
        idx
    }

    fn compile_stmt(&mut self, ctx: &mut ChunkCtx, stmt: &Stmt) {
        match stmt {
            Stmt::Let { id, name, init, .. } => {
                ctx.ops.push(Op::Stmt(*id));
                match init {
                    Some(e) => self.compile_expr(ctx, e),
                    // no initializer: bind null without charging any
                    // evaluation steps, like the interpreter
                    None => ctx.ops.push(Op::Const {
                        value: Value::Null,
                        weight: 0,
                    }),
                }
                let name = self.resolve(ctx, name);
                ctx.ops.push(Op::Declare { stmt: *id, name });
            }
            Stmt::Assign {
                id, target, value, ..
            } => {
                ctx.ops.push(Op::Stmt(*id));
                self.compile_expr(ctx, value);
                match target {
                    LValue::Var(name) => {
                        let name = self.resolve(ctx, name);
                        ctx.ops.push(Op::Store { stmt: *id, name });
                    }
                    LValue::Member(base, field) => {
                        self.compile_expr(ctx, base);
                        let root = expr_root_var(base)
                            .map(|r| r.to_string())
                            .map(|r| self.resolve(ctx, &r));
                        let field = self.intern_rc(field);
                        ctx.ops.push(Op::SetMember {
                            stmt: *id,
                            field,
                            root,
                        });
                    }
                    LValue::Index(base, index) => {
                        self.compile_expr(ctx, base);
                        self.compile_expr(ctx, index);
                        let root = expr_root_var(base)
                            .map(|r| r.to_string())
                            .map(|r| self.resolve(ctx, &r));
                        ctx.ops.push(Op::SetIndex { stmt: *id, root });
                    }
                }
            }
            Stmt::Expr { id, expr, .. } => {
                ctx.ops.push(Op::Stmt(*id));
                self.compile_expr(ctx, expr);
                ctx.ops.push(Op::Pop);
            }
            Stmt::If {
                id,
                cond,
                then_block,
                else_block,
                ..
            } => {
                ctx.ops.push(Op::Stmt(*id));
                self.compile_expr(ctx, cond);
                let jf = ctx.ops.len();
                ctx.ops.push(Op::JumpIfFalse(0));
                for s in then_block {
                    self.compile_stmt(ctx, s);
                }
                if else_block.is_empty() {
                    patch(ctx, jf, ctx.ops.len() as u32);
                } else {
                    let jend = ctx.ops.len();
                    ctx.ops.push(Op::Jump(0));
                    patch(ctx, jf, ctx.ops.len() as u32);
                    for s in else_block {
                        self.compile_stmt(ctx, s);
                    }
                    patch(ctx, jend, ctx.ops.len() as u32);
                }
            }
            Stmt::While { id, cond, body, .. } => {
                ctx.ops.push(Op::Stmt(*id));
                let start = ctx.ops.len() as u32;
                ctx.ops.push(Op::LoopBudget);
                self.compile_expr(ctx, cond);
                let jf = ctx.ops.len();
                ctx.ops.push(Op::JumpIfFalse(0));
                for s in body {
                    self.compile_stmt(ctx, s);
                }
                ctx.ops.push(Op::Jump(start));
                patch(ctx, jf, ctx.ops.len() as u32);
            }
            Stmt::For {
                id,
                init,
                cond,
                update,
                body,
                ..
            } => {
                ctx.ops.push(Op::Stmt(*id));
                self.compile_stmt(ctx, init);
                let start = ctx.ops.len() as u32;
                ctx.ops.push(Op::LoopBudget);
                self.compile_expr(ctx, cond);
                let jf = ctx.ops.len();
                ctx.ops.push(Op::JumpIfFalse(0));
                for s in body {
                    self.compile_stmt(ctx, s);
                }
                self.compile_stmt(ctx, update);
                ctx.ops.push(Op::Jump(start));
                patch(ctx, jf, ctx.ops.len() as u32);
            }
            Stmt::Return { id, value, .. } => {
                ctx.ops.push(Op::Stmt(*id));
                match value {
                    Some(e) => {
                        self.compile_expr(ctx, e);
                        ctx.ops.push(Op::Return);
                    }
                    None => ctx.ops.push(Op::ReturnNull),
                }
            }
            Stmt::Function {
                id,
                name,
                params,
                body,
                ..
            } => {
                let chunk = self.compile_chunk(Some(name.clone()), params, body, false);
                let template = Rc::new(Closure {
                    name: Some(name.clone()),
                    params: params.clone(),
                    body: body.clone(),
                    compiled: None,
                });
                ctx.ops.push(Op::Stmt(*id));
                let name = self.resolve(ctx, name);
                ctx.ops.push(Op::DeclareFn {
                    stmt: *id,
                    name,
                    template,
                    chunk,
                });
            }
        }
    }

    fn compile_expr(&mut self, ctx: &mut ChunkCtx, e: &Expr) {
        if let Some((value, weight)) = self.fold(e) {
            ctx.ops.push(Op::Const { value, weight });
            return;
        }
        match e {
            // literals are handled by fold() above
            Expr::Null | Expr::Bool(_) | Expr::Num(_) | Expr::Str(_) => unreachable!(),
            Expr::Var(name) => {
                let name = self.resolve(ctx, name);
                ctx.ops.push(Op::Load(name));
            }
            Expr::Array(items) => {
                ctx.ops.push(Op::Charge(1));
                for item in items {
                    self.compile_expr(ctx, item);
                }
                ctx.ops.push(Op::MakeArray(items.len() as u32));
            }
            Expr::Object(fields) => {
                ctx.ops.push(Op::Charge(1));
                for (_, v) in fields {
                    self.compile_expr(ctx, v);
                }
                let keys: Rc<[String]> = fields.iter().map(|(k, _)| k.clone()).collect();
                ctx.ops.push(Op::MakeObject(keys));
            }
            Expr::Binary(BinOp::And, a, b) => {
                ctx.ops.push(Op::Charge(1));
                self.compile_expr(ctx, a);
                let j = ctx.ops.len();
                ctx.ops.push(Op::And(0));
                self.compile_expr(ctx, b);
                patch(ctx, j, ctx.ops.len() as u32);
            }
            Expr::Binary(BinOp::Or, a, b) => {
                ctx.ops.push(Op::Charge(1));
                self.compile_expr(ctx, a);
                let j = ctx.ops.len();
                ctx.ops.push(Op::Or(0));
                self.compile_expr(ctx, b);
                patch(ctx, j, ctx.ops.len() as u32);
            }
            Expr::Binary(op, a, b) => {
                ctx.ops.push(Op::Charge(1));
                self.compile_expr(ctx, a);
                self.compile_expr(ctx, b);
                ctx.ops.push(Op::Binary(*op));
            }
            Expr::Unary(op, a) => {
                ctx.ops.push(Op::Charge(1));
                self.compile_expr(ctx, a);
                ctx.ops.push(Op::Unary(*op));
            }
            Expr::Member(base, field) => {
                ctx.ops.push(Op::Charge(1));
                self.compile_expr(ctx, base);
                let field = self.intern_rc(field);
                ctx.ops.push(Op::GetMember(field));
            }
            Expr::Index(base, index) => {
                ctx.ops.push(Op::Charge(1));
                self.compile_expr(ctx, base);
                self.compile_expr(ctx, index);
                ctx.ops.push(Op::GetIndex);
            }
            Expr::Function { params, body } => {
                let chunk = self.compile_chunk(None, params, body, false);
                let template = Rc::new(Closure {
                    name: None,
                    params: params.clone(),
                    body: body.clone(),
                    compiled: None,
                });
                ctx.ops.push(Op::MakeClosure { template, chunk });
            }
            Expr::New { ctor, args } => {
                ctx.ops.push(Op::Charge(1));
                for a in args {
                    self.compile_expr(ctx, a);
                }
                let ctor = self.intern_rc(ctor);
                ctx.ops.push(Op::New {
                    ctor,
                    argc: args.len() as u32,
                });
            }
            Expr::Call { callee, args } => {
                ctx.ops.push(Op::Charge(1));
                for a in args {
                    self.compile_expr(ctx, a);
                }
                match &**callee {
                    // method call: the Member node itself is not charged —
                    // the interpreter evaluates only its base
                    Expr::Member(base, method) => {
                        self.compile_expr(ctx, base);
                        let root = if matches!(method.as_str(), "push" | "pop") {
                            expr_root_var(base)
                                .map(|r| r.to_string())
                                .map(|r| self.resolve(ctx, &r))
                        } else {
                            None
                        };
                        let method = self.intern_rc(method);
                        ctx.ops.push(Op::CallMethod {
                            method,
                            argc: args.len() as u32,
                            root,
                        });
                    }
                    other => {
                        self.compile_expr(ctx, other);
                        ctx.ops.push(Op::Call {
                            argc: args.len() as u32,
                        });
                    }
                }
            }
        }
    }

    /// Evaluate a pure literal subtree at compile time. Returns the value
    /// and the number of AST nodes folded (each worth one evaluation step
    /// at runtime). Logical operators are never folded — their
    /// short-circuit step accounting depends on the left operand.
    fn fold(&mut self, e: &Expr) -> Option<(Value, u32)> {
        match e {
            Expr::Null => Some((Value::Null, 1)),
            Expr::Bool(b) => Some((Value::Bool(*b), 1)),
            Expr::Num(n) => Some((Value::Num(*n), 1)),
            Expr::Str(s) => Some((Value::Str(self.intern_rc(s)), 1)),
            Expr::Unary(op, a) => {
                let (av, wa) = self.fold(a)?;
                ops::unary(*op, &av).ok().map(|v| (v, wa + 1))
            }
            Expr::Binary(op, a, b) if !matches!(op, BinOp::And | BinOp::Or) => {
                let (av, wa) = self.fold(a)?;
                let (bv, wb) = self.fold(b)?;
                ops::binary(*op, &av, &bv).ok().map(|v| (v, wa + wb + 1))
            }
            _ => None,
        }
    }
}

/// Upper bound on the intern-table insertions one statement can cause —
/// the first pass that sizes the constant pool before compilation.
fn count_stmt_atoms(s: &Stmt, n: &mut usize) {
    match s {
        Stmt::Let { init, .. } => {
            *n += 1;
            if let Some(e) = init {
                count_expr_atoms(e, n);
            }
        }
        Stmt::Assign { target, value, .. } => {
            count_expr_atoms(value, n);
            match target {
                LValue::Var(_) => *n += 1,
                LValue::Member(base, _) => {
                    count_expr_atoms(base, n);
                    *n += 2; // field + possible root resolve
                }
                LValue::Index(base, index) => {
                    count_expr_atoms(base, n);
                    count_expr_atoms(index, n);
                    *n += 1;
                }
            }
        }
        Stmt::Expr { expr, .. } => count_expr_atoms(expr, n),
        Stmt::If {
            cond,
            then_block,
            else_block,
            ..
        } => {
            count_expr_atoms(cond, n);
            for s in then_block.iter().chain(else_block) {
                count_stmt_atoms(s, n);
            }
        }
        Stmt::While { cond, body, .. } => {
            count_expr_atoms(cond, n);
            for s in body {
                count_stmt_atoms(s, n);
            }
        }
        Stmt::For {
            init,
            cond,
            update,
            body,
            ..
        } => {
            count_stmt_atoms(init, n);
            count_expr_atoms(cond, n);
            count_stmt_atoms(update, n);
            for s in body {
                count_stmt_atoms(s, n);
            }
        }
        Stmt::Return { value, .. } => {
            if let Some(e) = value {
                count_expr_atoms(e, n);
            }
        }
        Stmt::Function {
            name: _,
            params,
            body,
            ..
        } => {
            *n += 1 + params.len();
            for s in body {
                count_stmt_atoms(s, n);
            }
        }
    }
}

fn count_expr_atoms(e: &Expr, n: &mut usize) {
    match e {
        Expr::Null | Expr::Bool(_) | Expr::Num(_) => {}
        Expr::Str(_) | Expr::Var(_) => *n += 1,
        Expr::Array(items) => {
            for i in items {
                count_expr_atoms(i, n);
            }
        }
        Expr::Object(fields) => {
            for (_, v) in fields {
                count_expr_atoms(v, n);
            }
        }
        Expr::Binary(_, a, b) => {
            count_expr_atoms(a, n);
            count_expr_atoms(b, n);
        }
        Expr::Unary(_, a) => count_expr_atoms(a, n),
        Expr::Member(base, _) => {
            count_expr_atoms(base, n);
            *n += 2; // field + possible method/root resolve
        }
        Expr::Index(base, index) => {
            count_expr_atoms(base, n);
            count_expr_atoms(index, n);
        }
        Expr::Function { params, body } => {
            *n += params.len();
            for s in body {
                count_stmt_atoms(s, n);
            }
        }
        Expr::New { args, .. } => {
            *n += 1;
            for a in args {
                count_expr_atoms(a, n);
            }
        }
        Expr::Call { callee, args } => {
            count_expr_atoms(callee, n);
            for a in args {
                count_expr_atoms(a, n);
            }
        }
    }
}

fn slot_for(ctx: &mut ChunkCtx, atom: u32) -> u16 {
    if let Some(&s) = ctx.slot_of.get(&atom) {
        return s;
    }
    assert!(ctx.locals.len() < usize::from(u16::MAX), "too many locals");
    let s = ctx.locals.len() as u16;
    ctx.locals.push(atom);
    ctx.slot_of.insert(atom, s);
    s
}

fn patch(ctx: &mut ChunkCtx, at: usize, target: u32) {
    match &mut ctx.ops[at] {
        Op::Jump(t) | Op::JumpIfFalse(t) | Op::And(t) | Op::Or(t) => *t = target,
        other => unreachable!("patching non-jump op {other:?}"),
    }
}

/// Compile a whole program. Chunk 0 holds the top level (it has no static
/// locals: top-level `var` declarations are global bindings).
pub fn compile(program: &Program) -> CompiledProgram {
    let mut refs = 0;
    for s in &program.stmts {
        count_stmt_atoms(s, &mut refs);
    }
    let mut c = Compiler::with_atom_capacity(refs);
    c.compile_chunk(None, &[], &program.stmts, true);
    CompiledProgram {
        atoms: c.atoms,
        global_names: c.global_names,
        chunks: c.chunks,
        stmt_count: program.stmt_count,
    }
}

/// Compile a single closure that was not created by the VM (e.g. one built
/// by the tree-walking interpreter and handed over through a global).
/// Chunk 0 of the result is the function body itself.
pub fn compile_closure(closure: &Closure) -> CompiledProgram {
    let mut refs = closure.params.len();
    for s in &closure.body {
        count_stmt_atoms(s, &mut refs);
    }
    let mut c = Compiler::with_atom_capacity(refs);
    c.compile_chunk(closure.name.clone(), &closure.params, &closure.body, false);
    CompiledProgram {
        atoms: c.atoms,
        global_names: c.global_names,
        chunks: c.chunks,
        stmt_count: 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn compile_src(src: &str) -> CompiledProgram {
        compile(&parse(src).unwrap())
    }

    #[test]
    fn top_level_has_no_slots() {
        let p = compile_src("var x = 1; x = x + 2;");
        assert!(p.chunks[0].locals.is_empty());
        assert!(p.chunks[0]
            .ops
            .iter()
            .all(|op| !matches!(op, Op::Load(NameRef { slot: Some(_), .. }))));
    }

    #[test]
    fn function_locals_get_slots() {
        let p = compile_src("function f(a) { var b = a + 1; return b; }");
        let f = &p.chunks[1];
        assert_eq!(f.params.len(), 1);
        assert_eq!(f.locals.len(), 2, "param a + local b");
        // every Load inside f resolves to a slot
        assert!(f
            .ops
            .iter()
            .any(|op| matches!(op, Op::Load(NameRef { slot: Some(_), .. }))));
    }

    #[test]
    fn constants_fold_with_weights() {
        let p = compile_src("var x = 2 + 3 * 4;");
        let folded = p.chunks[0].ops.iter().find_map(|op| match op {
            Op::Const { value, weight } => Some((value.clone(), *weight)),
            _ => None,
        });
        let (v, w) = folded.expect("constant should fold");
        assert_eq!(v, Value::Num(14.0));
        assert_eq!(w, 5, "five AST nodes folded");
    }

    #[test]
    fn logical_operators_never_fold() {
        let p = compile_src("var x = true || false;");
        assert!(p.chunks[0].ops.iter().any(|op| matches!(op, Op::Or(_))));
    }

    #[test]
    fn string_literals_share_atoms() {
        let p = compile_src("var a = 'hi'; var b = 'hi';");
        let count = p.atoms.iter().filter(|a| &***a == "hi").count();
        assert_eq!(count, 1, "literal interned once");
    }

    #[test]
    fn loops_get_budget_ops() {
        let p = compile_src("while (true) { } for (var i = 0; i < 3; i = i + 1) { }");
        let budgets = p.chunks[0]
            .ops
            .iter()
            .filter(|op| matches!(op, Op::LoopBudget))
            .count();
        assert_eq!(budgets, 2);
    }

    #[test]
    fn stmt_ids_survive_lowering() {
        let prog = parse("var x = 1; if (x) { x = 2; }").unwrap();
        let ids: Vec<StmtId> = prog.all_stmts().iter().map(|s| s.id()).collect();
        let p = compile(&prog);
        for id in ids {
            assert!(
                p.chunks[0]
                    .ops
                    .iter()
                    .any(|op| matches!(op, Op::Stmt(s) if *s == id)),
                "missing Op::Stmt for {id}"
            );
        }
    }

    #[test]
    fn atom_count_pass_is_an_upper_bound() {
        // the pre-sizing pass must never undercount: capacity reserved up
        // front has to cover every interning call compilation performs
        let src = r#"
            var greeting = 'hello';
            function shout(msg) {
                var out = msg + '!';
                return out;
            }
            app.post("/echo", function (req, res) {
                var body = { text: shout(req.body.text), tag: greeting };
                res.send(body);
            });
            for (var i = 0; i < 3; i = i + 1) { greeting = greeting + '.'; }
        "#;
        let prog = parse(src).unwrap();
        let mut refs = 0;
        for s in &prog.stmts {
            count_stmt_atoms(s, &mut refs);
        }
        let p = compile(&prog);
        assert!(
            refs >= p.atoms.len(),
            "counted {refs} refs but interned {} atoms",
            p.atoms.len()
        );
    }

    #[test]
    fn fnv_hasher_distinguishes_keys() {
        fn h(bytes: &[u8]) -> u64 {
            let mut hasher = FnvHasher::default();
            hasher.write(bytes);
            hasher.finish()
        }
        assert_ne!(h(b"counter"), h(b"written"));
        assert_ne!(h(b""), h(b"a"));
        assert_eq!(h(b"notes"), h(b"notes"));
    }

    #[test]
    fn nested_functions_get_chunks() {
        let p =
            compile_src("function outer() { var f = function (x) { return x; }; return f(1); }");
        assert_eq!(p.chunks.len(), 3, "top level + outer + anonymous");
    }
}
