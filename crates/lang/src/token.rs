//! Lexical analysis for NodeScript source text.

use std::fmt;

/// A lexical token produced by [`tokenize`].
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    // Literals
    Num(f64),
    Str(String),
    Ident(String),
    // Keywords
    Var,
    Let,
    Function,
    If,
    Else,
    While,
    For,
    Return,
    True,
    False,
    Null,
    New,
    // Punctuation
    LParen,
    RParen,
    LBrace,
    RBrace,
    LBracket,
    RBracket,
    Comma,
    Semi,
    Colon,
    Dot,
    // Operators
    Assign,
    Plus,
    Minus,
    Star,
    Slash,
    Percent,
    EqEq,
    NotEq,
    Lt,
    Le,
    Gt,
    Ge,
    AndAnd,
    OrOr,
    Not,
    Eof,
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Num(n) => write!(f, "{n}"),
            Token::Str(s) => write!(f, "{s:?}"),
            Token::Ident(s) => write!(f, "{s}"),
            Token::Var => write!(f, "var"),
            Token::Let => write!(f, "let"),
            Token::Function => write!(f, "function"),
            Token::If => write!(f, "if"),
            Token::Else => write!(f, "else"),
            Token::While => write!(f, "while"),
            Token::For => write!(f, "for"),
            Token::Return => write!(f, "return"),
            Token::True => write!(f, "true"),
            Token::False => write!(f, "false"),
            Token::Null => write!(f, "null"),
            Token::New => write!(f, "new"),
            Token::LParen => write!(f, "("),
            Token::RParen => write!(f, ")"),
            Token::LBrace => write!(f, "{{"),
            Token::RBrace => write!(f, "}}"),
            Token::LBracket => write!(f, "["),
            Token::RBracket => write!(f, "]"),
            Token::Comma => write!(f, ","),
            Token::Semi => write!(f, ";"),
            Token::Colon => write!(f, ":"),
            Token::Dot => write!(f, "."),
            Token::Assign => write!(f, "="),
            Token::Plus => write!(f, "+"),
            Token::Minus => write!(f, "-"),
            Token::Star => write!(f, "*"),
            Token::Slash => write!(f, "/"),
            Token::Percent => write!(f, "%"),
            Token::EqEq => write!(f, "=="),
            Token::NotEq => write!(f, "!="),
            Token::Lt => write!(f, "<"),
            Token::Le => write!(f, "<="),
            Token::Gt => write!(f, ">"),
            Token::Ge => write!(f, ">="),
            Token::AndAnd => write!(f, "&&"),
            Token::OrOr => write!(f, "||"),
            Token::Not => write!(f, "!"),
            Token::Eof => write!(f, "<eof>"),
        }
    }
}

/// A token plus the source line it starts on (1-based).
#[derive(Debug, Clone, PartialEq)]
pub struct SpannedToken {
    pub token: Token,
    pub line: u32,
}

/// Error produced while tokenizing source text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LexError {
    pub line: u32,
    pub message: String,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lex error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for LexError {}

/// Tokenize NodeScript `source` into a vector of [`SpannedToken`]s ending
/// with [`Token::Eof`].
///
/// Supports `//` line comments and `/* */` block comments, double- and
/// single-quoted strings with escapes, and decimal numbers.
///
/// # Errors
///
/// Returns [`LexError`] on unterminated strings/comments or unexpected
/// characters.
pub fn tokenize(source: &str) -> Result<Vec<SpannedToken>, LexError> {
    let mut out = Vec::new();
    let chars: Vec<char> = source.chars().collect();
    let mut i = 0usize;
    let mut line = 1u32;
    macro_rules! push {
        ($t:expr) => {
            out.push(SpannedToken { token: $t, line })
        };
    }
    while i < chars.len() {
        let c = chars[i];
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            ' ' | '\t' | '\r' => i += 1,
            '/' if i + 1 < chars.len() && chars[i + 1] == '/' => {
                while i < chars.len() && chars[i] != '\n' {
                    i += 1;
                }
            }
            '/' if i + 1 < chars.len() && chars[i + 1] == '*' => {
                let start_line = line;
                i += 2;
                loop {
                    if i + 1 >= chars.len() {
                        return Err(LexError {
                            line: start_line,
                            message: "unterminated block comment".into(),
                        });
                    }
                    if chars[i] == '\n' {
                        line += 1;
                    }
                    if chars[i] == '*' && chars[i + 1] == '/' {
                        i += 2;
                        break;
                    }
                    i += 1;
                }
            }
            '"' | '\'' => {
                let quote = c;
                let start_line = line;
                i += 1;
                let mut s = String::new();
                loop {
                    if i >= chars.len() {
                        return Err(LexError {
                            line: start_line,
                            message: "unterminated string literal".into(),
                        });
                    }
                    let ch = chars[i];
                    if ch == quote {
                        i += 1;
                        break;
                    }
                    if ch == '\n' {
                        return Err(LexError {
                            line: start_line,
                            message: "newline in string literal".into(),
                        });
                    }
                    if ch == '\\' {
                        i += 1;
                        if i >= chars.len() {
                            return Err(LexError {
                                line: start_line,
                                message: "unterminated escape".into(),
                            });
                        }
                        let esc = chars[i];
                        s.push(match esc {
                            'n' => '\n',
                            't' => '\t',
                            'r' => '\r',
                            '\\' => '\\',
                            '\'' => '\'',
                            '"' => '"',
                            '0' => '\0',
                            other => {
                                return Err(LexError {
                                    line,
                                    message: format!("unknown escape '\\{other}'"),
                                })
                            }
                        });
                        i += 1;
                    } else {
                        s.push(ch);
                        i += 1;
                    }
                }
                push!(Token::Str(s));
            }
            '0'..='9' => {
                let start = i;
                while i < chars.len() && (chars[i].is_ascii_digit() || chars[i] == '.') {
                    i += 1;
                }
                let text: String = chars[start..i].iter().collect();
                let n: f64 = text.parse().map_err(|_| LexError {
                    line,
                    message: format!("invalid number literal '{text}'"),
                })?;
                push!(Token::Num(n));
            }
            c if c.is_ascii_alphabetic() || c == '_' || c == '$' => {
                let start = i;
                while i < chars.len()
                    && (chars[i].is_ascii_alphanumeric() || chars[i] == '_' || chars[i] == '$')
                {
                    i += 1;
                }
                let word: String = chars[start..i].iter().collect();
                let tok = match word.as_str() {
                    "var" => Token::Var,
                    "let" | "const" => Token::Let,
                    "function" => Token::Function,
                    "if" => Token::If,
                    "else" => Token::Else,
                    "while" => Token::While,
                    "for" => Token::For,
                    "return" => Token::Return,
                    "true" => Token::True,
                    "false" => Token::False,
                    "null" | "undefined" => Token::Null,
                    "new" => Token::New,
                    _ => Token::Ident(word),
                };
                push!(tok);
            }
            '(' => {
                push!(Token::LParen);
                i += 1;
            }
            ')' => {
                push!(Token::RParen);
                i += 1;
            }
            '{' => {
                push!(Token::LBrace);
                i += 1;
            }
            '}' => {
                push!(Token::RBrace);
                i += 1;
            }
            '[' => {
                push!(Token::LBracket);
                i += 1;
            }
            ']' => {
                push!(Token::RBracket);
                i += 1;
            }
            ',' => {
                push!(Token::Comma);
                i += 1;
            }
            ';' => {
                push!(Token::Semi);
                i += 1;
            }
            ':' => {
                push!(Token::Colon);
                i += 1;
            }
            '.' => {
                push!(Token::Dot);
                i += 1;
            }
            '+' => {
                push!(Token::Plus);
                i += 1;
            }
            '-' => {
                push!(Token::Minus);
                i += 1;
            }
            '*' => {
                push!(Token::Star);
                i += 1;
            }
            '/' => {
                push!(Token::Slash);
                i += 1;
            }
            '%' => {
                push!(Token::Percent);
                i += 1;
            }
            '=' => {
                if i + 1 < chars.len() && chars[i + 1] == '=' {
                    // accept both == and ===
                    i += 2;
                    if i < chars.len() && chars[i] == '=' {
                        i += 1;
                    }
                    push!(Token::EqEq);
                } else {
                    push!(Token::Assign);
                    i += 1;
                }
            }
            '!' => {
                if i + 1 < chars.len() && chars[i + 1] == '=' {
                    i += 2;
                    if i < chars.len() && chars[i] == '=' {
                        i += 1;
                    }
                    push!(Token::NotEq);
                } else {
                    push!(Token::Not);
                    i += 1;
                }
            }
            '<' => {
                if i + 1 < chars.len() && chars[i + 1] == '=' {
                    push!(Token::Le);
                    i += 2;
                } else {
                    push!(Token::Lt);
                    i += 1;
                }
            }
            '>' => {
                if i + 1 < chars.len() && chars[i + 1] == '=' {
                    push!(Token::Ge);
                    i += 2;
                } else {
                    push!(Token::Gt);
                    i += 1;
                }
            }
            '&' => {
                if i + 1 < chars.len() && chars[i + 1] == '&' {
                    push!(Token::AndAnd);
                    i += 2;
                } else {
                    return Err(LexError {
                        line,
                        message: "expected '&&'".into(),
                    });
                }
            }
            '|' => {
                if i + 1 < chars.len() && chars[i + 1] == '|' {
                    push!(Token::OrOr);
                    i += 2;
                } else {
                    return Err(LexError {
                        line,
                        message: "expected '||'".into(),
                    });
                }
            }
            other => {
                return Err(LexError {
                    line,
                    message: format!("unexpected character '{other}'"),
                })
            }
        }
    }
    out.push(SpannedToken {
        token: Token::Eof,
        line,
    });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Token> {
        tokenize(src)
            .unwrap()
            .into_iter()
            .map(|t| t.token)
            .collect()
    }

    #[test]
    fn tokenizes_simple_statement() {
        assert_eq!(
            toks("var x = 1;"),
            vec![
                Token::Var,
                Token::Ident("x".into()),
                Token::Assign,
                Token::Num(1.0),
                Token::Semi,
                Token::Eof
            ]
        );
    }

    #[test]
    fn tokenizes_strings_with_escapes() {
        assert_eq!(
            toks(r#"'a\n' "b\"c""#),
            vec![
                Token::Str("a\n".into()),
                Token::Str("b\"c".into()),
                Token::Eof
            ]
        );
    }

    #[test]
    fn skips_line_and_block_comments() {
        assert_eq!(
            toks("// hi\nvar /* mid */ y;"),
            vec![
                Token::Var,
                Token::Ident("y".into()),
                Token::Semi,
                Token::Eof
            ]
        );
    }

    #[test]
    fn tracks_line_numbers() {
        let ts = tokenize("var x;\nvar y;").unwrap();
        assert_eq!(ts[0].line, 1);
        assert_eq!(ts[3].line, 2);
    }

    #[test]
    fn triple_equals_accepted() {
        assert_eq!(
            toks("a === b !== c"),
            vec![
                Token::Ident("a".into()),
                Token::EqEq,
                Token::Ident("b".into()),
                Token::NotEq,
                Token::Ident("c".into()),
                Token::Eof
            ]
        );
    }

    #[test]
    fn errors_on_unterminated_string() {
        assert!(tokenize("'abc").is_err());
    }

    #[test]
    fn errors_on_unterminated_block_comment() {
        assert!(tokenize("/* abc").is_err());
    }

    #[test]
    fn const_is_let() {
        assert_eq!(toks("const x;")[0], Token::Let);
    }

    #[test]
    fn comparison_operators() {
        assert_eq!(
            toks("< <= > >="),
            vec![Token::Lt, Token::Le, Token::Gt, Token::Ge, Token::Eof]
        );
    }

    #[test]
    fn decimal_numbers() {
        assert_eq!(toks("3.25"), vec![Token::Num(3.25), Token::Eof]);
    }
}
