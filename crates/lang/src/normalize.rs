//! Statement normalization: introducing temporary variables.
//!
//! §III-E of the paper: *"to identify these entry/exit points, EdgStr
//! normalizes the entire server code by introducing temporary variables"* —
//! e.g. `res.send(analyze(img))` becomes
//! `var tv1 = analyze(img); res.send(tv1);`. After normalization every call
//! result and every non-trivial call argument flows through a named
//! variable, so the dynamic read/write log can pinpoint the statements that
//! unmarshal parameters and marshal results.

use crate::ast::{Expr, LValue, Program, Stmt, StmtId};

/// Normalize `program`, returning a new program in which nested calls are
/// hoisted into `var tvN = ...;` statements. Statement ids are renumbered.
///
/// Control-flow conditions (`while`/`for`) are left untouched because their
/// expressions are re-evaluated each iteration; hoisting would change
/// semantics.
///
/// # Examples
///
/// ```
/// use edgstr_lang::{parse, normalize, print_program};
/// let p = parse("res.send(analyze(img));").unwrap();
/// let n = normalize(&p);
/// let src = print_program(&n);
/// assert!(src.contains("var tv1 = analyze(img);"));
/// ```
pub fn normalize(program: &Program) -> Program {
    let mut n = Normalizer { next_tmp: 0 };
    let stmts = n.normalize_block(&program.stmts);
    renumber(stmts)
}

/// Renumber all statement ids in `stmts` pre-order, producing a [`Program`].
pub fn renumber(stmts: Vec<Stmt>) -> Program {
    let mut counter = 0u32;
    let stmts = stmts
        .into_iter()
        .map(|s| renumber_stmt(s, &mut counter))
        .collect();
    Program {
        stmts,
        stmt_count: counter,
    }
}

fn renumber_stmt(stmt: Stmt, counter: &mut u32) -> Stmt {
    let mut fresh = || {
        let id = StmtId(*counter);
        *counter += 1;
        id
    };
    match stmt {
        Stmt::Let {
            line, name, init, ..
        } => Stmt::Let {
            id: fresh(),
            line,
            name,
            init: init.map(|e| renumber_expr(e, counter)),
        },
        Stmt::Assign {
            line,
            target,
            value,
            ..
        } => Stmt::Assign {
            id: fresh(),
            line,
            target,
            value: renumber_expr(value, counter),
        },
        Stmt::Expr { line, expr, .. } => Stmt::Expr {
            id: fresh(),
            line,
            expr: renumber_expr(expr, counter),
        },
        Stmt::If {
            line,
            cond,
            then_block,
            else_block,
            ..
        } => {
            let id = fresh();
            Stmt::If {
                id,
                line,
                cond: renumber_expr(cond, counter),
                then_block: then_block
                    .into_iter()
                    .map(|s| renumber_stmt(s, counter))
                    .collect(),
                else_block: else_block
                    .into_iter()
                    .map(|s| renumber_stmt(s, counter))
                    .collect(),
            }
        }
        Stmt::While {
            line, cond, body, ..
        } => {
            let id = fresh();
            Stmt::While {
                id,
                line,
                cond: renumber_expr(cond, counter),
                body: body
                    .into_iter()
                    .map(|s| renumber_stmt(s, counter))
                    .collect(),
            }
        }
        Stmt::For {
            line,
            init,
            cond,
            update,
            body,
            ..
        } => {
            let id = fresh();
            Stmt::For {
                id,
                line,
                init: Box::new(renumber_stmt(*init, counter)),
                cond: renumber_expr(cond, counter),
                update: Box::new(renumber_stmt(*update, counter)),
                body: body
                    .into_iter()
                    .map(|s| renumber_stmt(s, counter))
                    .collect(),
            }
        }
        Stmt::Return { line, value, .. } => Stmt::Return {
            id: fresh(),
            line,
            value: value.map(|e| renumber_expr(e, counter)),
        },
        Stmt::Function {
            line,
            name,
            params,
            body,
            ..
        } => {
            let id = fresh();
            Stmt::Function {
                id,
                line,
                name,
                params,
                body: body
                    .into_iter()
                    .map(|s| renumber_stmt(s, counter))
                    .collect(),
            }
        }
    }
}

fn renumber_expr(expr: Expr, counter: &mut u32) -> Expr {
    match expr {
        Expr::Function { params, body } => Expr::Function {
            params,
            body: body
                .into_iter()
                .map(|s| renumber_stmt(s, counter))
                .collect(),
        },
        Expr::Array(items) => Expr::Array(
            items
                .into_iter()
                .map(|e| renumber_expr(e, counter))
                .collect(),
        ),
        Expr::Object(fields) => Expr::Object(
            fields
                .into_iter()
                .map(|(k, e)| (k, renumber_expr(e, counter)))
                .collect(),
        ),
        Expr::Binary(op, a, b) => Expr::Binary(
            op,
            Box::new(renumber_expr(*a, counter)),
            Box::new(renumber_expr(*b, counter)),
        ),
        Expr::Unary(op, a) => Expr::Unary(op, Box::new(renumber_expr(*a, counter))),
        Expr::Call { callee, args } => Expr::Call {
            callee: Box::new(renumber_expr(*callee, counter)),
            args: args
                .into_iter()
                .map(|e| renumber_expr(e, counter))
                .collect(),
        },
        Expr::New { ctor, args } => Expr::New {
            ctor,
            args: args
                .into_iter()
                .map(|e| renumber_expr(e, counter))
                .collect(),
        },
        Expr::Member(base, f) => Expr::Member(Box::new(renumber_expr(*base, counter)), f),
        Expr::Index(base, i) => Expr::Index(
            Box::new(renumber_expr(*base, counter)),
            Box::new(renumber_expr(*i, counter)),
        ),
        other => other,
    }
}

struct Normalizer {
    next_tmp: u32,
}

impl Normalizer {
    fn fresh_tmp(&mut self) -> String {
        self.next_tmp += 1;
        format!("tv{}", self.next_tmp)
    }

    fn normalize_block(&mut self, stmts: &[Stmt]) -> Vec<Stmt> {
        let mut out = Vec::new();
        for s in stmts {
            self.normalize_stmt(s, &mut out);
        }
        out
    }

    fn normalize_stmt(&mut self, stmt: &Stmt, out: &mut Vec<Stmt>) {
        let dummy = StmtId(0);
        match stmt {
            Stmt::Let {
                line, name, init, ..
            } => {
                let init = init
                    .as_ref()
                    .map(|e| self.hoist(e, *line, out, /*keep_top_call=*/ true));
                out.push(Stmt::Let {
                    id: dummy,
                    line: *line,
                    name: name.clone(),
                    init,
                });
            }
            Stmt::Assign {
                line,
                target,
                value,
                ..
            } => {
                let value = self.hoist(value, *line, out, true);
                out.push(Stmt::Assign {
                    id: dummy,
                    line: *line,
                    target: target.clone(),
                    value,
                });
            }
            Stmt::Expr { line, expr, .. } => {
                let expr = self.hoist(expr, *line, out, true);
                out.push(Stmt::Expr {
                    id: dummy,
                    line: *line,
                    expr,
                });
            }
            Stmt::Return { line, value, .. } => {
                let value = value.as_ref().map(|e| self.hoist(e, *line, out, true));
                out.push(Stmt::Return {
                    id: dummy,
                    line: *line,
                    value,
                });
            }
            Stmt::If {
                line,
                cond,
                then_block,
                else_block,
                ..
            } => {
                out.push(Stmt::If {
                    id: dummy,
                    line: *line,
                    cond: cond.clone(),
                    then_block: self.normalize_block(then_block),
                    else_block: self.normalize_block(else_block),
                });
            }
            Stmt::While {
                line, cond, body, ..
            } => {
                out.push(Stmt::While {
                    id: dummy,
                    line: *line,
                    cond: cond.clone(),
                    body: self.normalize_block(body),
                });
            }
            Stmt::For {
                line,
                init,
                cond,
                update,
                body,
                ..
            } => {
                out.push(Stmt::For {
                    id: dummy,
                    line: *line,
                    init: init.clone(),
                    cond: cond.clone(),
                    update: update.clone(),
                    body: self.normalize_block(body),
                });
            }
            Stmt::Function {
                line,
                name,
                params,
                body,
                ..
            } => {
                out.push(Stmt::Function {
                    id: dummy,
                    line: *line,
                    name: name.clone(),
                    params: params.clone(),
                    body: self.normalize_block(body),
                });
            }
        }
    }

    /// Rewrite `expr`, hoisting nested call/new expressions into temp-var
    /// declarations appended to `out`. If `keep_top_call` is true and `expr`
    /// itself is a call, the call stays in place (only its compound args are
    /// hoisted).
    fn hoist(&mut self, expr: &Expr, line: u32, out: &mut Vec<Stmt>, keep_top_call: bool) -> Expr {
        match expr {
            Expr::Call { callee, args } => {
                let callee = match &**callee {
                    // method-call bases are hoisted unless simple or member-of-simple
                    Expr::Member(base, m) => {
                        let base = self.hoist_operand(base, line, out);
                        Box::new(Expr::Member(Box::new(base), m.clone()))
                    }
                    other => Box::new(self.hoist_operand(other, line, out)),
                };
                let args = args
                    .iter()
                    .map(|a| self.hoist_operand(a, line, out))
                    .collect();
                let call = Expr::Call { callee, args };
                if keep_top_call {
                    call
                } else {
                    self.bind_tmp(call, line, out)
                }
            }
            Expr::New { ctor, args } => {
                let args = args
                    .iter()
                    .map(|a| self.hoist_operand(a, line, out))
                    .collect();
                let call = Expr::New {
                    ctor: ctor.clone(),
                    args,
                };
                if keep_top_call {
                    call
                } else {
                    self.bind_tmp(call, line, out)
                }
            }
            Expr::Binary(op, a, b) => Expr::Binary(
                *op,
                Box::new(self.hoist(a, line, out, false)),
                Box::new(self.hoist(b, line, out, false)),
            ),
            Expr::Unary(op, a) => Expr::Unary(*op, Box::new(self.hoist(a, line, out, false))),
            Expr::Array(items) => Expr::Array(
                items
                    .iter()
                    .map(|e| self.hoist(e, line, out, false))
                    .collect(),
            ),
            Expr::Object(fields) => Expr::Object(
                fields
                    .iter()
                    .map(|(k, e)| (k.clone(), self.hoist(e, line, out, false)))
                    .collect(),
            ),
            Expr::Member(base, f) => {
                Expr::Member(Box::new(self.hoist(base, line, out, false)), f.clone())
            }
            Expr::Index(base, i) => Expr::Index(
                Box::new(self.hoist(base, line, out, false)),
                Box::new(self.hoist(i, line, out, false)),
            ),
            Expr::Function { params, body } => Expr::Function {
                params: params.clone(),
                body: self.normalize_block(body),
            },
            simple => simple.clone(),
        }
    }

    /// Hoist an operand position: calls and news always get a temp var;
    /// other compound expressions are rewritten recursively in place.
    fn hoist_operand(&mut self, expr: &Expr, line: u32, out: &mut Vec<Stmt>) -> Expr {
        match expr {
            Expr::Call { .. } | Expr::New { .. } => {
                let rewritten = self.hoist(expr, line, out, true);
                self.bind_tmp(rewritten, line, out)
            }
            other => self.hoist(other, line, out, false),
        }
    }

    fn bind_tmp(&mut self, expr: Expr, line: u32, out: &mut Vec<Stmt>) -> Expr {
        let name = self.fresh_tmp();
        out.push(Stmt::Let {
            id: StmtId(0),
            line,
            name: name.clone(),
            init: Some(expr),
        });
        Expr::Var(name)
    }
}

/// Used by [`LValue`]-producing code in tests.
#[allow(dead_code)]
fn _lvalue_witness(_l: &LValue) {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use crate::printer::print_program;

    #[test]
    fn hoists_nested_call_in_send() {
        let p = parse("res.send(analyze(img));").unwrap();
        let n = normalize(&p);
        let src = print_program(&n);
        assert!(src.contains("var tv1 = analyze(img);"), "got:\n{src}");
        assert!(src.contains("res.send(tv1);"), "got:\n{src}");
    }

    #[test]
    fn hoists_call_in_initializer_chain() {
        let p = parse("var x = f(g(y));").unwrap();
        let n = normalize(&p);
        let src = print_program(&n);
        assert!(src.contains("var tv1 = g(y);"), "got:\n{src}");
        assert!(src.contains("var x = f(tv1);"), "got:\n{src}");
    }

    #[test]
    fn normalizes_handler_bodies() {
        let p =
            parse(r#"app.get("/p", function (req, res) { res.send(work(req.body)); });"#).unwrap();
        let n = normalize(&p);
        let src = print_program(&n);
        assert!(src.contains("var tv1 = work(req.body);"), "got:\n{src}");
        assert!(src.contains("res.send(tv1);"), "got:\n{src}");
    }

    #[test]
    fn leaves_simple_statements_alone() {
        let p = parse("var x = 1; y = x + 2;").unwrap();
        let n = normalize(&p);
        assert_eq!(n.stmts.len(), 2);
    }

    #[test]
    fn renumbered_ids_are_unique_and_dense() {
        let p = parse("var a = f(g(1)); if (a) { var b = h(2); }").unwrap();
        let n = normalize(&p);
        let all = n.all_stmts();
        let mut ids: Vec<u32> = all.iter().map(|s| s.id().0).collect();
        ids.sort_unstable();
        assert_eq!(ids, (0..all.len() as u32).collect::<Vec<_>>());
        assert_eq!(n.stmt_count as usize, all.len());
    }

    #[test]
    fn normalized_program_reparses() {
        let p = parse(
            "function handler(req, res) {
                var raw = req.body;
                res.send(summarize(parse_csv(raw)));
            }",
        )
        .unwrap();
        let n = normalize(&p);
        let src = print_program(&n);
        parse(&src).expect("normalized output must be valid NodeScript");
    }

    #[test]
    fn while_condition_not_hoisted() {
        let p = parse("while (poll()) { var x = 1; }").unwrap();
        let n = normalize(&p);
        let src = print_program(&n);
        assert!(src.contains("while (poll())"), "got:\n{src}");
    }
}
