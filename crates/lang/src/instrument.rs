//! Jalangi-style instrumentation hooks for the NodeScript interpreter.
//!
//! The paper instruments Node.js services with the Jalangi dynamic-analysis
//! framework, modifying its `INVOKEFUNCTION(LOC, F, ARGS, VAL)` callback to
//! intercept SQL commands, file accesses and global-variable mutations
//! (§III-C). This module provides the equivalent callback surface: an
//! [`Instrument`] implementation receives a [`TraceEvent`] for every
//! statement entry, variable read/write, host-function invocation, and
//! global-variable mutation.

use crate::ast::StmtId;
use crate::value::Value;

/// A single dynamic-trace event.
#[derive(Debug, Clone)]
pub enum TraceEvent {
    /// Control entered statement `stmt` (in dynamic execution order).
    StmtEnter { stmt: StmtId },
    /// Statement `stmt` read variable `var`, observing `value`.
    Read {
        stmt: StmtId,
        var: String,
        value: Value,
    },
    /// Statement `stmt` wrote `value` into variable `var`.
    Write {
        stmt: StmtId,
        var: String,
        value: Value,
    },
    /// Statement `stmt` invoked host or user function `func`. This is the
    /// analog of Jalangi's `INVOKEFUNCTION(LOC, F, ARGS, VAL)` callback.
    Invoke {
        stmt: StmtId,
        func: String,
        args: Vec<Value>,
        ret: Value,
    },
    /// A variable in the *global* scope was created or mutated.
    GlobalWrite { stmt: StmtId, var: String },
    /// A user function declared at statement `decl` was entered from call
    /// site `call_site` (the `ACTUAL` fact of §III-E).
    FunctionEnter { decl: StmtId, call_site: StmtId },
}

/// Receiver of dynamic-trace events.
///
/// Implementations must be cheap: the interpreter calls them on every
/// statement. See `edgstr-analysis` for the trace recorder EdgStr uses.
pub trait Instrument {
    /// Observe one trace event.
    fn on_event(&mut self, event: &TraceEvent);

    /// Whether this instrument consumes events at all. The compiled VM
    /// skips building [`TraceEvent`] payloads (value clones, name strings)
    /// entirely when this returns `false`; cycle/step accounting is
    /// unaffected. Defaults to `true`.
    fn wants_events(&self) -> bool {
        true
    }

    /// Whether this instrument wants per-statement cost attribution: the
    /// compiled VM only performs the extra bookkeeping for
    /// [`Instrument::on_stmt_cost`] and the frame hooks when this returns
    /// `true`. Independent of [`Instrument::wants_events`] — a profiler
    /// can take costs without paying for event payloads. Defaults to
    /// `false`.
    fn wants_profile(&self) -> bool {
        false
    }

    /// `cycles` virtual cycles and `allocs` heap allocations were just
    /// attributed to source statement `stmt`, within the function frame
    /// most recently pushed via [`Instrument::on_frame_push`]. Called at
    /// statement boundaries and around calls; the same `stmt` may be
    /// reported many times (sum to aggregate). Only called when
    /// [`Instrument::wants_profile`] is `true`.
    fn on_stmt_cost(&mut self, stmt: StmtId, cycles: u64, allocs: u64) {
        let _ = (stmt, cycles, allocs);
    }

    /// A user-function frame was entered (`name` is `None` for anonymous
    /// closures). Only called when [`Instrument::wants_profile`] is
    /// `true`.
    fn on_frame_push(&mut self, name: Option<&str>) {
        let _ = name;
    }

    /// The matching frame for the last [`Instrument::on_frame_push`]
    /// returned. Only called when [`Instrument::wants_profile`] is
    /// `true`.
    fn on_frame_pop(&mut self) {}
}

/// An [`Instrument`] that discards all events (tracing disabled).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoopInstrument;

impl Instrument for NoopInstrument {
    fn on_event(&mut self, _event: &TraceEvent) {}

    fn wants_events(&self) -> bool {
        false
    }
}

/// An [`Instrument`] that buffers every event, for tests and offline
/// analysis.
#[derive(Debug, Default)]
pub struct RecordingInstrument {
    /// All events observed so far, in order.
    pub events: Vec<TraceEvent>,
}

impl RecordingInstrument {
    /// Create an empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of events captured.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether no events were captured.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

impl Instrument for RecordingInstrument {
    fn on_event(&mut self, event: &TraceEvent) {
        self.events.push(event.clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_discards() {
        let mut n = NoopInstrument;
        n.on_event(&TraceEvent::StmtEnter { stmt: StmtId(0) });
    }

    #[test]
    fn recorder_buffers_in_order() {
        let mut r = RecordingInstrument::new();
        r.on_event(&TraceEvent::StmtEnter { stmt: StmtId(1) });
        r.on_event(&TraceEvent::StmtEnter { stmt: StmtId(2) });
        assert_eq!(r.len(), 2);
        match &r.events[1] {
            TraceEvent::StmtEnter { stmt } => assert_eq!(*stmt, StmtId(2)),
            other => panic!("unexpected event {other:?}"),
        }
    }
}
