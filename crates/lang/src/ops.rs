//! Value operations shared by the tree-walking interpreter and the compiled
//! VM.
//!
//! Both engines must agree bit-for-bit on results *and* error messages —
//! differential tests compare full traces — so every operation the two
//! execution paths have in common lives here exactly once. Functions return
//! `Result<_, String>`; the caller attaches the statement id.

use crate::ast::{BinOp, UnOp};
use crate::value::Value;
use std::rc::Rc;

/// Apply a non-logical binary operator (`&&`/`||` are short-circuited by
/// the engines and never reach here).
///
/// # Errors
///
/// Returns the engine-visible message on a type mismatch.
pub fn binary(op: BinOp, a: &Value, b: &Value) -> Result<Value, String> {
    use BinOp::*;
    match op {
        Add => match (a, b) {
            (Value::Num(x), Value::Num(y)) => Ok(Value::Num(x + y)),
            (Value::Str(_), Value::Bytes(bb)) => {
                Ok(Value::str(format!("{a}{}", String::from_utf8_lossy(bb))))
            }
            (Value::Bytes(ab), Value::Str(_)) => {
                Ok(Value::str(format!("{}{b}", String::from_utf8_lossy(ab))))
            }
            (Value::Str(_), _) | (_, Value::Str(_)) => Ok(Value::str(format!("{a}{b}"))),
            _ => Err(format!("cannot add {a} and {b}")),
        },
        Sub | Mul | Div | Rem => match (a.as_num(), b.as_num()) {
            (Some(x), Some(y)) => Ok(Value::Num(match op {
                Sub => x - y,
                Mul => x * y,
                Div => x / y,
                Rem => x % y,
                _ => unreachable!(),
            })),
            _ => Err(format!("arithmetic on non-numbers: {a}, {b}")),
        },
        Eq => Ok(Value::Bool(a.structural_eq(b))),
        NotEq => Ok(Value::Bool(!a.structural_eq(b))),
        Lt | Le | Gt | Ge => {
            let cmp = match (a, b) {
                (Value::Num(x), Value::Num(y)) => x.partial_cmp(y),
                (Value::Str(x), Value::Str(y)) => Some(x.cmp(y)),
                _ => None,
            };
            let ord = cmp.ok_or_else(|| format!("cannot compare {a} and {b}"))?;
            Ok(Value::Bool(match op {
                Lt => ord == std::cmp::Ordering::Less,
                Le => ord != std::cmp::Ordering::Greater,
                Gt => ord == std::cmp::Ordering::Greater,
                Ge => ord != std::cmp::Ordering::Less,
                _ => unreachable!(),
            }))
        }
        And | Or => unreachable!("short-circuited by the engine"),
    }
}

/// Apply a unary operator.
///
/// # Errors
///
/// Negating a non-number fails.
pub fn unary(op: UnOp, a: &Value) -> Result<Value, String> {
    match op {
        UnOp::Not => Ok(Value::Bool(!a.is_truthy())),
        UnOp::Neg => match a {
            Value::Num(n) => Ok(Value::Num(-n)),
            other => Err(format!("cannot negate {other}")),
        },
    }
}

/// Read `base.field`.
///
/// # Errors
///
/// Field reads on scalars fail.
pub fn member_get(base: &Value, field: &str) -> Result<Value, String> {
    match base {
        Value::Object(map) => Ok(map.borrow().get(field).cloned().unwrap_or(Value::Null)),
        Value::Array(items) => match field {
            "length" => Ok(Value::Num(items.borrow().len() as f64)),
            _ => Ok(Value::Null),
        },
        Value::Str(s) => match field {
            "length" => Ok(Value::Num(s.chars().count() as f64)),
            _ => Ok(Value::Null),
        },
        Value::Bytes(b) => match field {
            "length" => Ok(Value::Num(b.len() as f64)),
            _ => Ok(Value::Null),
        },
        Value::Native(obj) => Ok(Value::Native(Rc::from(format!("{obj}.{field}").as_str()))),
        other => Err(format!("cannot read field '{field}' of {other}")),
    }
}

/// Read `base[idx]`.
///
/// # Errors
///
/// Indexing scalars fails.
pub fn index_get(base: &Value, idx: &Value) -> Result<Value, String> {
    match (base, idx) {
        (Value::Array(items), Value::Num(n)) => Ok(items
            .borrow()
            .get(*n as usize)
            .cloned()
            .unwrap_or(Value::Null)),
        (Value::Bytes(b), Value::Num(n)) => Ok(b
            .get(*n as usize)
            .map(|&byte| Value::Num(f64::from(byte)))
            .unwrap_or(Value::Null)),
        (Value::Object(map), key) => Ok(map
            .borrow()
            .get(&key.to_string())
            .cloned()
            .unwrap_or(Value::Null)),
        (Value::Str(s), Value::Num(n)) => Ok(s
            .chars()
            .nth(*n as usize)
            .map(|c| Value::str(c.to_string()))
            .unwrap_or(Value::Null)),
        (other, _) => Err(format!("cannot index into {other}")),
    }
}

/// Write `base[idx] = v`. Arrays grow with `null` fill; objects key by the
/// index value's string form.
///
/// # Errors
///
/// Index-assigning into anything else fails.
pub fn index_set(base: &Value, idx: &Value, v: Value) -> Result<(), String> {
    match (base, idx) {
        (Value::Array(items), Value::Num(n)) => {
            let i = *n as usize;
            let mut items = items.borrow_mut();
            if i >= items.len() {
                items.resize(i + 1, Value::Null);
            }
            items[i] = v;
            Ok(())
        }
        (Value::Object(map), key) => {
            map.borrow_mut().insert(key.to_string(), v);
            Ok(())
        }
        (other, _) => Err(format!("cannot index-assign into {other}")),
    }
}

/// Write `base.field = v`.
///
/// # Errors
///
/// Only objects accept field writes.
pub fn member_set(base: &Value, field: &str, v: Value) -> Result<(), String> {
    match base {
        Value::Object(map) => {
            map.borrow_mut().insert(field.to_string(), v);
            Ok(())
        }
        other => Err(format!("cannot set field '{field}' on {other}")),
    }
}

/// Result of a `new Ctor(...)` expression: either a builtin value or a
/// request to dispatch `new:<Ctor>` to the host (args handed back).
pub enum Constructed {
    Done(Value),
    Host(Vec<Value>),
}

/// Construct a builtin (`Uint8Array`, `Buffer`, `Array`, `Object`, `Map`);
/// unknown constructors are returned for host dispatch.
pub fn construct_builtin(ctor: &str, args: Vec<Value>) -> Constructed {
    match ctor {
        "Uint8Array" | "Buffer" => Constructed::Done(match args.first() {
            Some(Value::Bytes(b)) => Value::Bytes(Rc::clone(b)),
            Some(Value::Num(n)) => Value::bytes(vec![0u8; *n as usize]),
            Some(Value::Array(items)) => {
                let bytes: Vec<u8> = items
                    .borrow()
                    .iter()
                    .map(|v| v.as_num().unwrap_or(0.0) as u8)
                    .collect();
                Value::bytes(bytes)
            }
            Some(Value::Str(s)) => Value::bytes(s.as_bytes().to_vec()),
            _ => Value::bytes(Vec::new()),
        }),
        "Array" => Constructed::Done(Value::array(args)),
        "Object" | "Map" => Constructed::Done(Value::object([])),
        _ => Constructed::Host(args),
    }
}

/// Dispatch a *simple* method — one that needs no callback re-entry, host,
/// or scope access. Returns `None` for receivers/methods the engine itself
/// must handle: natives (host dispatch), object fields (closure call), and
/// the array iteration methods `map`/`filter`/`forEach`.
///
/// Mutating methods (`push`/`pop`) are handled here; the VM journals the
/// receiver *before* delegating.
pub fn simple_method(base: &Value, method: &str, args: &[Value]) -> Option<Result<Value, String>> {
    match base {
        Value::Native(_) | Value::Object(_) => None,
        Value::Array(items) => match method {
            "map" | "filter" | "forEach" => None,
            "push" => {
                let mut items = items.borrow_mut();
                for a in args {
                    items.push(a.clone());
                }
                Some(Ok(Value::Num(items.len() as f64)))
            }
            "pop" => Some(Ok(items.borrow_mut().pop().unwrap_or(Value::Null))),
            "join" => {
                let sep = args
                    .first()
                    .and_then(|v| v.as_str().map(|s| s.to_string()))
                    .unwrap_or_else(|| ",".to_string());
                let joined = items
                    .borrow()
                    .iter()
                    .map(|v| v.to_string())
                    .collect::<Vec<_>>()
                    .join(&sep);
                Some(Ok(Value::str(joined)))
            }
            "slice" => {
                let items = items.borrow();
                let start = args
                    .first()
                    .and_then(Value::as_num)
                    .map(|n| n as usize)
                    .unwrap_or(0)
                    .min(items.len());
                let end = args
                    .get(1)
                    .and_then(Value::as_num)
                    .map(|n| n as usize)
                    .unwrap_or(items.len())
                    .min(items.len());
                Some(Ok(Value::array(items[start..end.max(start)].to_vec())))
            }
            "indexOf" => {
                let target = args.first().cloned().unwrap_or(Value::Null);
                let idx = items
                    .borrow()
                    .iter()
                    .position(|v| v.structural_eq(&target))
                    .map(|i| i as f64)
                    .unwrap_or(-1.0);
                Some(Ok(Value::Num(idx)))
            }
            other => Some(Err(format!("unknown array method '{other}'"))),
        },
        Value::Str(s) => Some(match method {
            "toUpperCase" => Ok(Value::str(s.to_uppercase())),
            "toLowerCase" => Ok(Value::str(s.to_lowercase())),
            "indexOf" => {
                let needle = args.first().and_then(|v| v.as_str()).unwrap_or("");
                Ok(Value::Num(s.find(needle).map(|i| i as f64).unwrap_or(-1.0)))
            }
            "includes" => {
                let needle = args.first().and_then(|v| v.as_str()).unwrap_or("");
                Ok(Value::Bool(s.contains(needle)))
            }
            "startsWith" => {
                let needle = args.first().and_then(|v| v.as_str()).unwrap_or("");
                Ok(Value::Bool(s.starts_with(needle)))
            }
            "split" => {
                let sep = args.first().and_then(|v| v.as_str()).unwrap_or("");
                let parts: Vec<Value> = if sep.is_empty() {
                    s.chars().map(|c| Value::str(c.to_string())).collect()
                } else {
                    s.split(sep).map(Value::str).collect()
                };
                Ok(Value::array(parts))
            }
            "substring" => {
                let start = args
                    .first()
                    .and_then(Value::as_num)
                    .map(|n| n as usize)
                    .unwrap_or(0)
                    .min(s.len());
                let end = args
                    .get(1)
                    .and_then(Value::as_num)
                    .map(|n| n as usize)
                    .unwrap_or(s.len())
                    .min(s.len());
                Ok(Value::str(s[start..end.max(start)].to_string()))
            }
            "trim" => Ok(Value::str(s.trim().to_string())),
            "charCodeAt" => {
                let i = args
                    .first()
                    .and_then(Value::as_num)
                    .map(|n| n as usize)
                    .unwrap_or(0);
                Ok(s.chars()
                    .nth(i)
                    .map(|c| Value::Num(c as u32 as f64))
                    .unwrap_or(Value::Null))
            }
            other => Err(format!("unknown string method '{other}'")),
        }),
        Value::Bytes(b) => Some(match method {
            "toString" => Ok(Value::str(String::from_utf8_lossy(b).to_string())),
            "slice" => {
                let start = args
                    .first()
                    .and_then(Value::as_num)
                    .map(|n| n as usize)
                    .unwrap_or(0)
                    .min(b.len());
                let end = args
                    .get(1)
                    .and_then(Value::as_num)
                    .map(|n| n as usize)
                    .unwrap_or(b.len())
                    .min(b.len());
                Ok(Value::bytes(b[start..end.max(start)].to_vec()))
            }
            other => Err(format!("unknown bytes method '{other}'")),
        }),
        other => Some(Err(format!("cannot call method '{method}' on {other}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binary_add_concatenates_and_errors() {
        let v = binary(BinOp::Add, &Value::str("a"), &Value::Num(1.0)).unwrap();
        assert_eq!(v, Value::str("a1"));
        let e = binary(BinOp::Add, &Value::Null, &Value::Bool(true)).unwrap_err();
        assert_eq!(e, "cannot add null and true");
    }

    #[test]
    fn index_set_grows_arrays() {
        let a = Value::array(vec![]);
        index_set(&a, &Value::Num(2.0), Value::Num(9.0)).unwrap();
        assert_eq!(member_get(&a, "length").unwrap(), Value::Num(3.0));
    }

    #[test]
    fn simple_method_defers_engine_cases() {
        assert!(simple_method(&Value::Native("db".into()), "query", &[]).is_none());
        assert!(simple_method(&Value::object([]), "m", &[]).is_none());
        assert!(simple_method(&Value::array(vec![]), "map", &[]).is_none());
        assert!(simple_method(&Value::array(vec![]), "pop", &[]).is_some());
    }

    #[test]
    fn construct_builtin_uint8array_variants() {
        match construct_builtin("Uint8Array", vec![Value::Num(3.0)]) {
            Constructed::Done(v) => assert_eq!(v.as_bytes(), Some(&[0u8, 0, 0][..])),
            Constructed::Host(_) => panic!("builtin expected"),
        }
        assert!(matches!(
            construct_builtin("Widget", vec![]),
            Constructed::Host(_)
        ));
    }
}
