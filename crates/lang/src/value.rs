//! Runtime values for the NodeScript interpreter.

use crate::ast::Stmt;
use serde_json::Value as Json;
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::fmt;
use std::rc::Rc;

/// A user-defined function value (closure).
#[derive(Debug, Clone)]
pub struct Closure {
    pub name: Option<String>,
    pub params: Vec<String>,
    pub body: Vec<Stmt>,
    /// Entry point into a [`CompiledProgram`](crate::compile::CompiledProgram)
    /// when the closure was created by the compiled VM; `None` for closures
    /// built by the tree-walking interpreter. Ignored by equality — the two
    /// engines must produce indistinguishable values.
    pub compiled: Option<crate::compile::CompiledChunk>,
}

impl PartialEq for Closure {
    fn eq(&self, other: &Self) -> bool {
        self.name == other.name && self.params == other.params && self.body == other.body
    }
}

/// A NodeScript runtime value.
///
/// Objects and arrays have reference semantics (shared, interior-mutable),
/// matching JavaScript. Use [`Value::deep_clone`] to snapshot a value — the
/// operation EdgStr applies to global variables when capturing the `init`
/// state (§III-C).
#[derive(Debug, Clone, Default)]
pub enum Value {
    #[default]
    Null,
    Bool(bool),
    Num(f64),
    Str(Rc<str>),
    /// Binary payloads (e.g. images in the motivating example).
    Bytes(Rc<[u8]>),
    Array(Rc<RefCell<Vec<Value>>>),
    Object(Rc<RefCell<BTreeMap<String, Value>>>),
    Function(Rc<Closure>),
    /// A host-provided object addressed by name (e.g. `app`, `db`, `res`);
    /// member calls on it dispatch to the [`Host`](crate::interp::Host).
    Native(Rc<str>),
}

impl Value {
    /// Construct a string value.
    pub fn str(s: impl Into<String>) -> Value {
        Value::Str(Rc::from(s.into().as_str()))
    }

    /// Construct a bytes value.
    pub fn bytes(b: impl Into<Vec<u8>>) -> Value {
        Value::Bytes(Rc::from(b.into().into_boxed_slice()))
    }

    /// Construct an empty array value.
    pub fn array(items: Vec<Value>) -> Value {
        Value::Array(Rc::new(RefCell::new(items)))
    }

    /// Construct an object value from key/value pairs.
    pub fn object(fields: impl IntoIterator<Item = (String, Value)>) -> Value {
        Value::Object(Rc::new(RefCell::new(fields.into_iter().collect())))
    }

    /// JavaScript-style truthiness.
    pub fn is_truthy(&self) -> bool {
        match self {
            Value::Null => false,
            Value::Bool(b) => *b,
            Value::Num(n) => *n != 0.0 && !n.is_nan(),
            Value::Str(s) => !s.is_empty(),
            Value::Bytes(b) => !b.is_empty(),
            Value::Array(_) | Value::Object(_) | Value::Function(_) | Value::Native(_) => true,
        }
    }

    /// The value as a number, if numeric.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a byte slice, if it is a bytes value.
    pub fn as_bytes(&self) -> Option<&[u8]> {
        match self {
            Value::Bytes(b) => Some(b),
            _ => None,
        }
    }

    /// Structural deep copy: arrays and objects are recursively duplicated
    /// so later mutation of the original does not affect the copy.
    pub fn deep_clone(&self) -> Value {
        match self {
            Value::Array(items) => Value::Array(Rc::new(RefCell::new(
                items.borrow().iter().map(Value::deep_clone).collect(),
            ))),
            Value::Object(map) => Value::Object(Rc::new(RefCell::new(
                map.borrow()
                    .iter()
                    .map(|(k, v)| (k.clone(), v.deep_clone()))
                    .collect(),
            ))),
            other => other.clone(),
        }
    }

    /// Approximate wire size of this value in bytes, used by the network
    /// emulator to cost HTTP transfers and CRDT change messages.
    pub fn wire_size(&self) -> usize {
        match self {
            Value::Null => 4,
            Value::Bool(_) => 5,
            Value::Num(_) => 8,
            Value::Str(s) => s.len() + 2,
            Value::Bytes(b) => b.len(),
            Value::Array(items) => {
                2 + items
                    .borrow()
                    .iter()
                    .map(|v| v.wire_size() + 1)
                    .sum::<usize>()
            }
            Value::Object(map) => {
                2 + map
                    .borrow()
                    .iter()
                    .map(|(k, v)| k.len() + 3 + v.wire_size())
                    .sum::<usize>()
            }
            Value::Function(_) | Value::Native(_) => 0,
        }
    }

    /// Convert to JSON. Functions and natives become null; bytes become a
    /// `{"$bytes": len, "$hash": h}` marker so payload identity survives the
    /// conversion without embedding megabytes of data.
    pub fn to_json(&self) -> Json {
        match self {
            Value::Null => Json::Null,
            Value::Bool(b) => Json::Bool(*b),
            Value::Num(n) => {
                if n.fract() == 0.0 && n.abs() < 9e15 {
                    Json::from(*n as i64)
                } else {
                    serde_json::Number::from_f64(*n)
                        .map(Json::Number)
                        .unwrap_or(Json::Null)
                }
            }
            Value::Str(s) => Json::String(s.to_string()),
            Value::Bytes(b) => serde_json::json!({
                "$bytes": b.len(),
                "$hash": fnv1a(b),
            }),
            Value::Array(items) => Json::Array(items.borrow().iter().map(Value::to_json).collect()),
            Value::Object(map) => Json::Object(
                map.borrow()
                    .iter()
                    .map(|(k, v)| (k.clone(), v.to_json()))
                    .collect(),
            ),
            Value::Function(_) | Value::Native(_) => Json::Null,
        }
    }

    /// Convert a JSON value into a NodeScript value.
    pub fn from_json(json: &Json) -> Value {
        match json {
            Json::Null => Value::Null,
            Json::Bool(b) => Value::Bool(*b),
            Json::Number(n) => Value::Num(n.as_f64().unwrap_or(f64::NAN)),
            Json::String(s) => Value::str(s.clone()),
            Json::Array(items) => Value::array(items.iter().map(Value::from_json).collect()),
            Json::Object(map) => {
                Value::object(map.iter().map(|(k, v)| (k.clone(), Value::from_json(v))))
            }
        }
    }

    /// Structural equality (by value, not by reference).
    pub fn structural_eq(&self, other: &Value) -> bool {
        match (self, other) {
            (Value::Null, Value::Null) => true,
            (Value::Bool(a), Value::Bool(b)) => a == b,
            (Value::Num(a), Value::Num(b)) => a == b || (a.is_nan() && b.is_nan()),
            (Value::Str(a), Value::Str(b)) => a == b,
            (Value::Bytes(a), Value::Bytes(b)) => a == b,
            (Value::Array(a), Value::Array(b)) => {
                let (a, b) = (a.borrow(), b.borrow());
                a.len() == b.len() && a.iter().zip(b.iter()).all(|(x, y)| x.structural_eq(y))
            }
            (Value::Object(a), Value::Object(b)) => {
                let (a, b) = (a.borrow(), b.borrow());
                a.len() == b.len()
                    && a.iter()
                        .zip(b.iter())
                        .all(|((ka, va), (kb, vb))| ka == kb && va.structural_eq(vb))
            }
            (Value::Function(a), Value::Function(b)) => Rc::ptr_eq(a, b),
            (Value::Native(a), Value::Native(b)) => a == b,
            _ => false,
        }
    }

    /// Collect the *atoms* (strings, numbers, byte-payload hashes) contained
    /// in this value. EdgStr fingerprints HTTP parameters this way to track
    /// fuzzed payload fragments through execution traces (§III-E).
    pub fn atoms(&self, out: &mut Vec<Atom>) {
        match self {
            Value::Null | Value::Function(_) | Value::Native(_) => {}
            Value::Bool(b) => out.push(Atom::Bool(*b)),
            Value::Num(n) => out.push(Atom::Num(n.to_bits())),
            Value::Str(s) => out.push(Atom::Str(s.to_string())),
            Value::Bytes(b) => out.push(Atom::BytesHash(fnv1a(b))),
            Value::Array(items) => {
                for v in items.borrow().iter() {
                    v.atoms(out);
                }
            }
            Value::Object(map) => {
                for v in map.borrow().values() {
                    v.atoms(out);
                }
            }
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.structural_eq(other)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Num(n) => {
                if n.fract() == 0.0 && n.abs() < 1e15 {
                    write!(f, "{}", *n as i64)
                } else {
                    write!(f, "{n}")
                }
            }
            Value::Str(s) => write!(f, "{s}"),
            Value::Bytes(b) => write!(f, "<bytes:{}>", b.len()),
            Value::Array(_) | Value::Object(_) => write!(f, "{}", self.to_json()),
            Value::Function(c) => {
                write!(f, "<function {}>", c.name.as_deref().unwrap_or("anonymous"))
            }
            Value::Native(n) => write!(f, "<native {n}>"),
        }
    }
}

impl From<f64> for Value {
    fn from(n: f64) -> Self {
        Value::Num(n)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::str(s)
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::str(s)
    }
}

/// An atomic data fragment used for payload fingerprinting.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Atom {
    Bool(bool),
    Num(u64),
    Str(String),
    BytesHash(u64),
}

/// FNV-1a hash of a byte slice; stable fingerprint for binary payloads.
pub fn fnv1a(data: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in data {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deep_clone_is_independent() {
        let v = Value::object([("a".to_string(), Value::array(vec![Value::Num(1.0)]))]);
        let c = v.deep_clone();
        if let Value::Object(map) = &v {
            if let Value::Array(items) = &map.borrow()["a"] {
                items.borrow_mut().push(Value::Num(2.0));
            }
        }
        if let Value::Object(map) = &c {
            if let Value::Array(items) = &map.borrow()["a"] {
                assert_eq!(items.borrow().len(), 1);
            }
        }
    }

    #[test]
    fn json_round_trip() {
        let v = Value::object([
            ("n".to_string(), Value::Num(3.5)),
            ("s".to_string(), Value::str("hi")),
            (
                "a".to_string(),
                Value::array(vec![Value::Bool(true), Value::Null]),
            ),
        ]);
        let j = v.to_json();
        let back = Value::from_json(&j);
        assert!(v.structural_eq(&back));
    }

    #[test]
    fn structural_eq_ignores_identity() {
        let a = Value::array(vec![Value::Num(1.0)]);
        let b = Value::array(vec![Value::Num(1.0)]);
        assert!(a.structural_eq(&b));
    }

    #[test]
    fn truthiness_follows_javascript() {
        assert!(!Value::Null.is_truthy());
        assert!(!Value::Num(0.0).is_truthy());
        assert!(!Value::str("").is_truthy());
        assert!(Value::str("x").is_truthy());
        assert!(Value::array(vec![]).is_truthy());
    }

    #[test]
    fn wire_size_scales_with_payload() {
        let small = Value::bytes(vec![0u8; 10]);
        let big = Value::bytes(vec![0u8; 10_000]);
        assert!(big.wire_size() > small.wire_size() * 100);
    }

    #[test]
    fn atoms_capture_nested_fragments() {
        let v = Value::object([
            ("a".to_string(), Value::str("img")),
            ("b".to_string(), Value::array(vec![Value::Num(7.0)])),
        ]);
        let mut atoms = Vec::new();
        v.atoms(&mut atoms);
        assert!(atoms.contains(&Atom::Str("img".into())));
        assert!(atoms.contains(&Atom::Num(7.0f64.to_bits())));
    }

    #[test]
    fn bytes_fingerprint_differs_by_content() {
        let a = Value::bytes(vec![1, 2, 3]);
        let b = Value::bytes(vec![1, 2, 4]);
        let (mut aa, mut bb) = (Vec::new(), Vec::new());
        a.atoms(&mut aa);
        b.atoms(&mut bb);
        assert_ne!(aa, bb);
    }

    #[test]
    fn display_integers_without_fraction() {
        assert_eq!(Value::Num(42.0).to_string(), "42");
        assert_eq!(Value::Num(2.5).to_string(), "2.5");
    }
}
