//! Recursive-descent parser for NodeScript.

use crate::ast::{BinOp, Expr, LValue, Program, Stmt, StmtId, UnOp};
use crate::token::{tokenize, SpannedToken, Token};
use std::fmt;

/// Error produced while parsing source text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    pub line: u32,
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parse NodeScript `source` into a [`Program`].
///
/// # Errors
///
/// Returns [`ParseError`] on lexical or syntactic errors.
///
/// # Examples
///
/// ```
/// let prog = edgstr_lang::parse("var x = 1 + 2;").unwrap();
/// assert_eq!(prog.stmts.len(), 1);
/// ```
pub fn parse(source: &str) -> Result<Program, ParseError> {
    let tokens = tokenize(source).map_err(|e| ParseError {
        line: e.line,
        message: e.message,
    })?;
    let mut p = Parser {
        tokens,
        pos: 0,
        next_id: 0,
    };
    let mut stmts = Vec::new();
    while !p.check(&Token::Eof) {
        stmts.push(p.statement()?);
    }
    Ok(Program {
        stmts,
        stmt_count: p.next_id,
    })
}

struct Parser {
    tokens: Vec<SpannedToken>,
    pos: usize,
    next_id: u32,
}

impl Parser {
    fn peek(&self) -> &Token {
        &self.tokens[self.pos].token
    }

    fn peek2(&self) -> &Token {
        let i = (self.pos + 1).min(self.tokens.len() - 1);
        &self.tokens[i].token
    }

    fn line(&self) -> u32 {
        self.tokens[self.pos].line
    }

    fn advance(&mut self) -> Token {
        let t = self.tokens[self.pos].token.clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn check(&self, t: &Token) -> bool {
        self.peek() == t
    }

    fn eat(&mut self, t: &Token) -> bool {
        if self.check(t) {
            self.advance();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, t: &Token) -> Result<(), ParseError> {
        if self.eat(t) {
            Ok(())
        } else {
            Err(self.err(format!("expected '{t}', found '{}'", self.peek())))
        }
    }

    fn err(&self, message: String) -> ParseError {
        ParseError {
            line: self.line(),
            message,
        }
    }

    fn fresh_id(&mut self) -> StmtId {
        let id = StmtId(self.next_id);
        self.next_id += 1;
        id
    }

    fn ident(&mut self) -> Result<String, ParseError> {
        match self.peek().clone() {
            Token::Ident(name) => {
                self.advance();
                Ok(name)
            }
            other => Err(self.err(format!("expected identifier, found '{other}'"))),
        }
    }

    fn statement(&mut self) -> Result<Stmt, ParseError> {
        let line = self.line();
        match self.peek().clone() {
            Token::Var | Token::Let => {
                self.advance();
                let name = self.ident()?;
                let init = if self.eat(&Token::Assign) {
                    Some(self.expression()?)
                } else {
                    None
                };
                self.eat(&Token::Semi);
                Ok(Stmt::Let {
                    id: self.fresh_id(),
                    line,
                    name,
                    init,
                })
            }
            Token::Function if matches!(self.peek2(), Token::Ident(_)) => {
                self.advance();
                let name = self.ident()?;
                let params = self.param_list()?;
                let body = self.block()?;
                Ok(Stmt::Function {
                    id: self.fresh_id(),
                    line,
                    name,
                    params,
                    body,
                })
            }
            Token::If => {
                self.advance();
                self.expect(&Token::LParen)?;
                let cond = self.expression()?;
                self.expect(&Token::RParen)?;
                let then_block = self.block_or_single()?;
                let else_block = if self.eat(&Token::Else) {
                    if self.check(&Token::If) {
                        vec![self.statement()?]
                    } else {
                        self.block_or_single()?
                    }
                } else {
                    Vec::new()
                };
                Ok(Stmt::If {
                    id: self.fresh_id(),
                    line,
                    cond,
                    then_block,
                    else_block,
                })
            }
            Token::While => {
                self.advance();
                self.expect(&Token::LParen)?;
                let cond = self.expression()?;
                self.expect(&Token::RParen)?;
                let body = self.block_or_single()?;
                Ok(Stmt::While {
                    id: self.fresh_id(),
                    line,
                    cond,
                    body,
                })
            }
            Token::For => {
                self.advance();
                self.expect(&Token::LParen)?;
                let init = Box::new(self.statement()?);
                // the init statement consumed its trailing semicolon
                let cond = self.expression()?;
                self.expect(&Token::Semi)?;
                let update = Box::new(self.simple_statement_no_semi()?);
                self.expect(&Token::RParen)?;
                let body = self.block_or_single()?;
                Ok(Stmt::For {
                    id: self.fresh_id(),
                    line,
                    init,
                    cond,
                    update,
                    body,
                })
            }
            Token::Return => {
                self.advance();
                let value = if self.check(&Token::Semi) || self.check(&Token::RBrace) {
                    None
                } else {
                    Some(self.expression()?)
                };
                self.eat(&Token::Semi);
                Ok(Stmt::Return {
                    id: self.fresh_id(),
                    line,
                    value,
                })
            }
            _ => {
                let s = self.simple_statement_no_semi()?;
                self.eat(&Token::Semi);
                Ok(s)
            }
        }
    }

    /// An assignment or expression statement without consuming `;`.
    fn simple_statement_no_semi(&mut self) -> Result<Stmt, ParseError> {
        let line = self.line();
        let expr = self.expression()?;
        if self.eat(&Token::Assign) {
            let target = match expr {
                Expr::Var(v) => LValue::Var(v),
                Expr::Member(base, name) => LValue::Member(base, name),
                Expr::Index(base, idx) => LValue::Index(base, idx),
                _ => return Err(self.err("invalid assignment target".into())),
            };
            let value = self.expression()?;
            Ok(Stmt::Assign {
                id: self.fresh_id(),
                line,
                target,
                value,
            })
        } else {
            Ok(Stmt::Expr {
                id: self.fresh_id(),
                line,
                expr,
            })
        }
    }

    fn block(&mut self) -> Result<Vec<Stmt>, ParseError> {
        self.expect(&Token::LBrace)?;
        let mut stmts = Vec::new();
        while !self.check(&Token::RBrace) {
            if self.check(&Token::Eof) {
                return Err(self.err("unterminated block".into()));
            }
            stmts.push(self.statement()?);
        }
        self.expect(&Token::RBrace)?;
        Ok(stmts)
    }

    fn block_or_single(&mut self) -> Result<Vec<Stmt>, ParseError> {
        if self.check(&Token::LBrace) {
            self.block()
        } else {
            Ok(vec![self.statement()?])
        }
    }

    fn param_list(&mut self) -> Result<Vec<String>, ParseError> {
        self.expect(&Token::LParen)?;
        let mut params = Vec::new();
        if !self.check(&Token::RParen) {
            loop {
                params.push(self.ident()?);
                if !self.eat(&Token::Comma) {
                    break;
                }
            }
        }
        self.expect(&Token::RParen)?;
        Ok(params)
    }

    // Expression grammar, lowest to highest precedence:
    // or -> and -> equality -> comparison -> term -> factor -> unary -> postfix -> primary
    fn expression(&mut self) -> Result<Expr, ParseError> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.and_expr()?;
        while self.eat(&Token::OrOr) {
            let rhs = self.and_expr()?;
            e = Expr::Binary(BinOp::Or, Box::new(e), Box::new(rhs));
        }
        Ok(e)
    }

    fn and_expr(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.equality()?;
        while self.eat(&Token::AndAnd) {
            let rhs = self.equality()?;
            e = Expr::Binary(BinOp::And, Box::new(e), Box::new(rhs));
        }
        Ok(e)
    }

    fn equality(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.comparison()?;
        loop {
            let op = if self.eat(&Token::EqEq) {
                BinOp::Eq
            } else if self.eat(&Token::NotEq) {
                BinOp::NotEq
            } else {
                break;
            };
            let rhs = self.comparison()?;
            e = Expr::Binary(op, Box::new(e), Box::new(rhs));
        }
        Ok(e)
    }

    fn comparison(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.term()?;
        loop {
            let op = if self.eat(&Token::Lt) {
                BinOp::Lt
            } else if self.eat(&Token::Le) {
                BinOp::Le
            } else if self.eat(&Token::Gt) {
                BinOp::Gt
            } else if self.eat(&Token::Ge) {
                BinOp::Ge
            } else {
                break;
            };
            let rhs = self.term()?;
            e = Expr::Binary(op, Box::new(e), Box::new(rhs));
        }
        Ok(e)
    }

    fn term(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.factor()?;
        loop {
            let op = if self.eat(&Token::Plus) {
                BinOp::Add
            } else if self.eat(&Token::Minus) {
                BinOp::Sub
            } else {
                break;
            };
            let rhs = self.factor()?;
            e = Expr::Binary(op, Box::new(e), Box::new(rhs));
        }
        Ok(e)
    }

    fn factor(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.unary()?;
        loop {
            let op = if self.eat(&Token::Star) {
                BinOp::Mul
            } else if self.eat(&Token::Slash) {
                BinOp::Div
            } else if self.eat(&Token::Percent) {
                BinOp::Rem
            } else {
                break;
            };
            let rhs = self.unary()?;
            e = Expr::Binary(op, Box::new(e), Box::new(rhs));
        }
        Ok(e)
    }

    fn unary(&mut self) -> Result<Expr, ParseError> {
        if self.eat(&Token::Not) {
            let e = self.unary()?;
            Ok(Expr::Unary(UnOp::Not, Box::new(e)))
        } else if self.eat(&Token::Minus) {
            let e = self.unary()?;
            Ok(Expr::Unary(UnOp::Neg, Box::new(e)))
        } else {
            self.postfix()
        }
    }

    fn postfix(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.primary()?;
        loop {
            if self.eat(&Token::Dot) {
                let name = self.ident()?;
                e = Expr::Member(Box::new(e), name);
            } else if self.eat(&Token::LBracket) {
                let idx = self.expression()?;
                self.expect(&Token::RBracket)?;
                e = Expr::Index(Box::new(e), Box::new(idx));
            } else if self.check(&Token::LParen) {
                let args = self.arg_list()?;
                e = Expr::Call {
                    callee: Box::new(e),
                    args,
                };
            } else {
                break;
            }
        }
        Ok(e)
    }

    fn arg_list(&mut self) -> Result<Vec<Expr>, ParseError> {
        self.expect(&Token::LParen)?;
        let mut args = Vec::new();
        if !self.check(&Token::RParen) {
            loop {
                args.push(self.expression()?);
                if !self.eat(&Token::Comma) {
                    break;
                }
            }
        }
        self.expect(&Token::RParen)?;
        Ok(args)
    }

    fn primary(&mut self) -> Result<Expr, ParseError> {
        match self.peek().clone() {
            Token::Num(n) => {
                self.advance();
                Ok(Expr::Num(n))
            }
            Token::Str(s) => {
                self.advance();
                Ok(Expr::Str(s))
            }
            Token::True => {
                self.advance();
                Ok(Expr::Bool(true))
            }
            Token::False => {
                self.advance();
                Ok(Expr::Bool(false))
            }
            Token::Null => {
                self.advance();
                Ok(Expr::Null)
            }
            Token::Ident(name) => {
                self.advance();
                Ok(Expr::Var(name))
            }
            Token::New => {
                self.advance();
                let ctor = self.ident()?;
                let args = if self.check(&Token::LParen) {
                    self.arg_list()?
                } else {
                    Vec::new()
                };
                Ok(Expr::New { ctor, args })
            }
            Token::Function => {
                self.advance();
                let params = self.param_list()?;
                let body = self.block()?;
                Ok(Expr::Function { params, body })
            }
            Token::LParen => {
                self.advance();
                let e = self.expression()?;
                self.expect(&Token::RParen)?;
                Ok(e)
            }
            Token::LBracket => {
                self.advance();
                let mut items = Vec::new();
                if !self.check(&Token::RBracket) {
                    loop {
                        items.push(self.expression()?);
                        if !self.eat(&Token::Comma) {
                            break;
                        }
                    }
                }
                self.expect(&Token::RBracket)?;
                Ok(Expr::Array(items))
            }
            Token::LBrace => {
                self.advance();
                let mut fields = Vec::new();
                if !self.check(&Token::RBrace) {
                    loop {
                        let key = match self.peek().clone() {
                            Token::Ident(k) => {
                                self.advance();
                                k
                            }
                            Token::Str(k) => {
                                self.advance();
                                k
                            }
                            other => {
                                return Err(
                                    self.err(format!("expected object key, found '{other}'"))
                                )
                            }
                        };
                        self.expect(&Token::Colon)?;
                        let value = self.expression()?;
                        fields.push((key, value));
                        if !self.eat(&Token::Comma) {
                            break;
                        }
                    }
                }
                self.expect(&Token::RBrace)?;
                Ok(Expr::Object(fields))
            }
            other => Err(self.err(format!("unexpected token '{other}'"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{BinOp, Expr, Stmt};

    #[test]
    fn parses_var_decl() {
        let p = parse("var x = 1 + 2 * 3;").unwrap();
        match &p.stmts[0] {
            Stmt::Let { name, init, .. } => {
                assert_eq!(name, "x");
                match init.as_ref().unwrap() {
                    Expr::Binary(BinOp::Add, _, rhs) => {
                        assert!(matches!(**rhs, Expr::Binary(BinOp::Mul, _, _)));
                    }
                    other => panic!("bad precedence: {other:?}"),
                }
            }
            other => panic!("expected let, got {other:?}"),
        }
    }

    #[test]
    fn parses_function_decl_and_return() {
        let p = parse("function add(a, b) { return a + b; }").unwrap();
        match &p.stmts[0] {
            Stmt::Function {
                name, params, body, ..
            } => {
                assert_eq!(name, "add");
                assert_eq!(params, &["a", "b"]);
                assert!(matches!(body[0], Stmt::Return { .. }));
            }
            other => panic!("expected function, got {other:?}"),
        }
    }

    #[test]
    fn parses_express_style_route() {
        let p = parse(r#"app.get("/predict", function (req, res) { res.send(1); });"#).unwrap();
        match &p.stmts[0] {
            Stmt::Expr {
                expr: Expr::Call { callee, args },
                ..
            } => {
                assert!(matches!(**callee, Expr::Member(_, ref m) if m == "get"));
                assert_eq!(args.len(), 2);
                assert!(matches!(args[1], Expr::Function { .. }));
            }
            other => panic!("expected route call, got {other:?}"),
        }
    }

    #[test]
    fn parses_if_else_chain() {
        let p = parse("if (a < 1) { x = 1; } else if (a < 2) { x = 2; } else { x = 3; }").unwrap();
        match &p.stmts[0] {
            Stmt::If { else_block, .. } => {
                assert!(matches!(else_block[0], Stmt::If { .. }));
            }
            other => panic!("expected if, got {other:?}"),
        }
    }

    #[test]
    fn parses_for_loop() {
        let p = parse("for (var i = 0; i < 10; i = i + 1) { s = s + i; }").unwrap();
        assert!(matches!(p.stmts[0], Stmt::For { .. }));
    }

    #[test]
    fn parses_while_loop() {
        let p = parse("while (n > 0) { n = n - 1; }").unwrap();
        assert!(matches!(p.stmts[0], Stmt::While { .. }));
    }

    #[test]
    fn parses_object_and_array_literals() {
        let p = parse(r#"var o = { a: 1, "b c": [1, 2, 3] };"#).unwrap();
        match &p.stmts[0] {
            Stmt::Let {
                init: Some(Expr::Object(fields)),
                ..
            } => {
                assert_eq!(fields.len(), 2);
                assert_eq!(fields[1].0, "b c");
            }
            other => panic!("expected object literal, got {other:?}"),
        }
    }

    #[test]
    fn parses_member_index_assignment() {
        let p = parse("rows[0].name = 'x';").unwrap();
        assert!(matches!(p.stmts[0], Stmt::Assign { .. }));
    }

    #[test]
    fn parses_new_expression() {
        let p = parse("var b = new Uint8Array(raw);").unwrap();
        match &p.stmts[0] {
            Stmt::Let {
                init: Some(Expr::New { ctor, args }),
                ..
            } => {
                assert_eq!(ctor, "Uint8Array");
                assert_eq!(args.len(), 1);
            }
            other => panic!("expected new expr, got {other:?}"),
        }
    }

    #[test]
    fn stmt_ids_are_unique() {
        let p = parse("var a = 1; if (a) { var b = 2; var c = 3; } var d = 4;").unwrap();
        let all = p.all_stmts();
        let mut ids: Vec<u32> = all.iter().map(|s| s.id().0).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), all.len());
        assert_eq!(p.stmt_count as usize, all.len());
    }

    #[test]
    fn error_on_bad_assignment_target() {
        assert!(parse("1 = 2;").is_err());
    }

    #[test]
    fn error_reports_line() {
        let err = parse("var x = 1;\nvar y = ;").unwrap_err();
        assert_eq!(err.line, 2);
    }

    #[test]
    fn logical_operators_precedence() {
        let p = parse("var r = a && b || c;").unwrap();
        match &p.stmts[0] {
            Stmt::Let {
                init: Some(Expr::Binary(BinOp::Or, lhs, _)),
                ..
            } => {
                assert!(matches!(**lhs, Expr::Binary(BinOp::And, _, _)));
            }
            other => panic!("bad precedence: {other:?}"),
        }
    }
}
