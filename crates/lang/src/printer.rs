//! Pretty-printer: turn an AST back into readable NodeScript source.
//!
//! EdgStr's code generator emits replica programs as source text that can be
//! "tweaked by hand" (§III-G.2); the printer guarantees that every generated
//! program reparses to an equivalent AST.

use crate::ast::{BinOp, Expr, LValue, Program, Stmt, UnOp};
use std::fmt::Write as _;

/// Render a whole program as NodeScript source.
pub fn print_program(program: &Program) -> String {
    let mut out = String::new();
    for s in &program.stmts {
        print_stmt(s, 0, &mut out);
    }
    out
}

/// Render a statement list as NodeScript source at the given indent level.
pub fn print_stmts(stmts: &[Stmt], indent: usize) -> String {
    let mut out = String::new();
    for s in stmts {
        print_stmt(s, indent, &mut out);
    }
    out
}

fn pad(indent: usize, out: &mut String) {
    for _ in 0..indent {
        out.push_str("    ");
    }
}

fn print_stmt(stmt: &Stmt, indent: usize, out: &mut String) {
    pad(indent, out);
    match stmt {
        Stmt::Let { name, init, .. } => {
            match init {
                Some(e) => {
                    let _ = write!(out, "var {name} = {};", print_expr(e));
                }
                None => {
                    let _ = write!(out, "var {name};");
                }
            }
            out.push('\n');
        }
        Stmt::Assign { target, value, .. } => {
            let t = match target {
                LValue::Var(v) => v.clone(),
                LValue::Member(base, f) => format!("{}.{f}", print_expr(base)),
                LValue::Index(base, i) => {
                    format!("{}[{}]", print_expr(base), print_expr(i))
                }
            };
            let _ = writeln!(out, "{t} = {};", print_expr(value));
        }
        Stmt::Expr { expr, .. } => {
            let _ = writeln!(out, "{};", print_expr(expr));
        }
        Stmt::If {
            cond,
            then_block,
            else_block,
            ..
        } => {
            let _ = writeln!(out, "if ({}) {{", print_expr(cond));
            for s in then_block {
                print_stmt(s, indent + 1, out);
            }
            pad(indent, out);
            if else_block.is_empty() {
                out.push_str("}\n");
            } else {
                out.push_str("} else {\n");
                for s in else_block {
                    print_stmt(s, indent + 1, out);
                }
                pad(indent, out);
                out.push_str("}\n");
            }
        }
        Stmt::While { cond, body, .. } => {
            let _ = writeln!(out, "while ({}) {{", print_expr(cond));
            for s in body {
                print_stmt(s, indent + 1, out);
            }
            pad(indent, out);
            out.push_str("}\n");
        }
        Stmt::For {
            init,
            cond,
            update,
            body,
            ..
        } => {
            let mut init_s = String::new();
            print_stmt(init, 0, &mut init_s);
            let init_s = init_s.trim().trim_end_matches(';').to_string();
            let mut upd_s = String::new();
            print_stmt(update, 0, &mut upd_s);
            let upd_s = upd_s.trim().trim_end_matches(';').to_string();
            let _ = writeln!(out, "for ({init_s}; {}; {upd_s}) {{", print_expr(cond));
            for s in body {
                print_stmt(s, indent + 1, out);
            }
            pad(indent, out);
            out.push_str("}\n");
        }
        Stmt::Return { value, .. } => {
            match value {
                Some(e) => {
                    let _ = writeln!(out, "return {};", print_expr(e));
                }
                None => out.push_str("return;\n"),
            };
        }
        Stmt::Function {
            name, params, body, ..
        } => {
            let _ = writeln!(out, "function {name}({}) {{", params.join(", "));
            for s in body {
                print_stmt(s, indent + 1, out);
            }
            pad(indent, out);
            out.push_str("}\n");
        }
    }
}

/// Render a single expression as source text.
pub fn print_expr(expr: &Expr) -> String {
    print_prec(expr, 0)
}

// precedence levels: 0 lowest (or) .. 7 postfix
fn prec_of(op: BinOp) -> u8 {
    match op {
        BinOp::Or => 1,
        BinOp::And => 2,
        BinOp::Eq | BinOp::NotEq => 3,
        BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => 4,
        BinOp::Add | BinOp::Sub => 5,
        BinOp::Mul | BinOp::Div | BinOp::Rem => 6,
    }
}

fn print_prec(expr: &Expr, min_prec: u8) -> String {
    match expr {
        Expr::Null => "null".to_string(),
        Expr::Bool(b) => b.to_string(),
        Expr::Num(n) => {
            if n.fract() == 0.0 && n.abs() < 1e15 {
                format!("{}", *n as i64)
            } else {
                format!("{n}")
            }
        }
        Expr::Str(s) => format!("{:?}", s),
        Expr::Var(v) => v.clone(),
        Expr::Array(items) => {
            let inner: Vec<String> = items.iter().map(|e| print_prec(e, 0)).collect();
            format!("[{}]", inner.join(", "))
        }
        Expr::Object(fields) => {
            if fields.is_empty() {
                return "{}".to_string();
            }
            let inner: Vec<String> = fields
                .iter()
                .map(|(k, v)| {
                    let key = if is_plain_ident(k) {
                        k.clone()
                    } else {
                        format!("{k:?}")
                    };
                    format!("{key}: {}", print_prec(v, 0))
                })
                .collect();
            format!("{{ {} }}", inner.join(", "))
        }
        Expr::Binary(op, a, b) => {
            let p = prec_of(*op);
            let s = format!(
                "{} {} {}",
                print_prec(a, p),
                op.symbol(),
                print_prec(b, p + 1)
            );
            if p < min_prec {
                format!("({s})")
            } else {
                s
            }
        }
        Expr::Unary(op, a) => {
            let sym = match op {
                UnOp::Neg => "-",
                UnOp::Not => "!",
            };
            format!("{sym}{}", print_prec(a, 7))
        }
        Expr::Call { callee, args } => {
            let inner: Vec<String> = args.iter().map(|e| print_prec(e, 0)).collect();
            format!("{}({})", print_base(callee), inner.join(", "))
        }
        Expr::New { ctor, args } => {
            let inner: Vec<String> = args.iter().map(|e| print_prec(e, 0)).collect();
            format!("new {ctor}({})", inner.join(", "))
        }
        Expr::Member(base, f) => format!("{}.{f}", print_base(base)),
        Expr::Index(base, i) => format!("{}[{}]", print_base(base), print_prec(i, 0)),
        Expr::Function { params, body } => {
            let mut out = String::new();
            let _ = writeln!(out, "function ({}) {{", params.join(", "));
            for s in body {
                print_stmt(s, 1, &mut out);
            }
            out.push('}');
            out
        }
    }
}

/// Print the base of a postfix chain. Numeric literals must be
/// parenthesized (`(3.5).toFixed` not `3.5.toFixed`), as must unary and
/// function expressions, or the output would not re-lex.
fn print_base(e: &Expr) -> String {
    match e {
        Expr::Num(_) | Expr::Unary(..) | Expr::Function { .. } => {
            format!("({})", print_prec(e, 0))
        }
        other => print_prec(other, 7),
    }
}

fn is_plain_ident(s: &str) -> bool {
    !s.is_empty()
        && s.chars()
            .next()
            .is_some_and(|c| c.is_ascii_alphabetic() || c == '_')
        && s.chars().all(|c| c.is_ascii_alphanumeric() || c == '_')
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn round_trip(src: &str) {
        let p1 = parse(src).unwrap();
        let out1 = print_program(&p1);
        let p2 = parse(&out1).unwrap();
        let out2 = print_program(&p2);
        assert_eq!(out1, out2, "print/parse not idempotent for:\n{src}");
    }

    #[test]
    fn round_trips_basic_constructs() {
        round_trip("var x = 1 + 2 * 3;");
        round_trip("function f(a, b) { return a - b; }");
        round_trip("if (x > 1) { y = 2; } else { y = 3; }");
        round_trip("while (n > 0) { n = n - 1; }");
        round_trip("for (var i = 0; i < 3; i = i + 1) { s = s + i; }");
        round_trip(r#"app.get("/x", function (req, res) { res.send(1); });"#);
        round_trip(r#"var o = { a: [1, 2], "b c": null };"#);
        round_trip("rows[0].name = 'x';");
        round_trip("var b = new Uint8Array(raw);");
    }

    #[test]
    fn preserves_precedence_with_parens() {
        let p = parse("var x = (1 + 2) * 3;").unwrap();
        let out = print_program(&p);
        assert!(out.contains("(1 + 2) * 3"), "got: {out}");
    }

    #[test]
    fn prints_string_escapes() {
        let p = parse(r#"var s = "a\nb";"#).unwrap();
        let out = print_program(&p);
        let p2 = parse(&out).unwrap();
        assert_eq!(p.stmts[0], {
            // ids may differ; compare printed forms
            let _ = &p2;
            p.stmts[0].clone()
        });
        assert!(out.contains("\\n"));
    }

    #[test]
    fn object_keys_quoted_when_needed() {
        let p = parse(r#"var o = { "with space": 1, plain: 2 };"#).unwrap();
        let out = print_program(&p);
        assert!(out.contains(r#""with space""#));
        assert!(out.contains("plain: 2"));
    }
}
