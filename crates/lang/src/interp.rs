//! Tree-walking interpreter for NodeScript with instrumentation hooks and a
//! pluggable host interface.
//!
//! The interpreter plays the role of the Node.js runtime in the paper: it
//! executes cloud-service code, dispatches calls on *native* objects
//! (`app`, `db`, `fs`, `res`, `tensor`, …) to a [`Host`] supplied by the
//! embedder, counts virtual CPU cycles for the performance simulation, and
//! reports every read/write/invoke to an [`Instrument`].

use crate::ast::{BinOp, Expr, LValue, Program, Stmt, StmtId};
use crate::instrument::{Instrument, TraceEvent};
use crate::ops;
use crate::value::{Closure, Value};
use std::collections::BTreeMap;
use std::fmt;
use std::rc::Rc;

/// Virtual cycles charged per executed statement.
pub const STMT_CYCLES: u64 = 500;

/// Result of a host-function invocation: the returned value plus the number
/// of virtual CPU cycles the call consumed (used by the device models).
#[derive(Debug, Clone)]
pub struct HostOutcome {
    pub value: Value,
    pub cycles: u64,
}

impl HostOutcome {
    /// A cheap host call returning `value`.
    pub fn cheap(value: Value) -> Self {
        HostOutcome { value, cycles: 100 }
    }

    /// A host call returning `value` that consumed `cycles` virtual cycles.
    pub fn with_cycles(value: Value, cycles: u64) -> Self {
        HostOutcome { value, cycles }
    }
}

/// The embedder-provided environment of native objects and functions.
///
/// Method calls on [`Value::Native`] objects are dispatched here with the
/// dotted name `"<object>.<method>"`, e.g. `db.query` or `res.send`.
/// Constructor expressions for unknown types arrive as `"new:<Ctor>"`.
pub trait Host {
    /// Invoke a native function.
    ///
    /// # Errors
    ///
    /// Returns a message describing the failure; the interpreter surfaces it
    /// as a [`RuntimeError`].
    fn call(&mut self, name: &str, args: &[Value]) -> Result<HostOutcome, String>;

    /// Names of native root objects this host exposes (e.g. `["app","db"]`).
    /// Bare identifiers with these names evaluate to [`Value::Native`].
    fn native_names(&self) -> Vec<String>;
}

/// A host exposing no native objects; useful for pure computations.
#[derive(Debug, Clone, Copy, Default)]
pub struct EmptyHost;

impl Host for EmptyHost {
    fn call(&mut self, name: &str, _args: &[Value]) -> Result<HostOutcome, String> {
        Err(format!("unknown host function '{name}'"))
    }

    fn native_names(&self) -> Vec<String> {
        Vec::new()
    }
}

/// Runtime error raised during interpretation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RuntimeError {
    pub stmt: Option<StmtId>,
    pub message: String,
}

impl RuntimeError {
    fn new(stmt: Option<StmtId>, message: impl Into<String>) -> Self {
        RuntimeError {
            stmt,
            message: message.into(),
        }
    }
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.stmt {
            Some(s) => write!(f, "runtime error at {s}: {}", self.message),
            None => write!(f, "runtime error: {}", self.message),
        }
    }
}

impl std::error::Error for RuntimeError {}

enum Flow {
    Normal,
    Return(Value),
}

/// The root variable of a member/index chain, if any.
fn expr_root_var(e: &Expr) -> Option<&str> {
    match e {
        Expr::Var(v) => Some(v),
        Expr::Member(base, _) => expr_root_var(base),
        Expr::Index(base, _) => expr_root_var(base),
        _ => None,
    }
}

/// The NodeScript interpreter.
///
/// One interpreter instance holds the global scope of a single server
/// program — the same way one Node.js process holds one service. Requests
/// are executed by [`Interpreter::call_function`] /
/// [`Interpreter::call_closure`] against the globals established by
/// [`Interpreter::run_program`] (the server's `init` phase, §III-B).
pub struct Interpreter<'h> {
    host: &'h mut dyn Host,
    globals: BTreeMap<String, Value>,
    scopes: Vec<BTreeMap<String, Value>>,
    natives: Vec<String>,
    cur_stmt: StmtId,
    cycles: u64,
    steps: u64,
    step_limit: u64,
    call_depth: u32,
}

impl<'h> fmt::Debug for Interpreter<'h> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Interpreter")
            .field("globals", &self.globals.keys().collect::<Vec<_>>())
            .field("cycles", &self.cycles)
            .finish()
    }
}

impl<'h> Interpreter<'h> {
    /// Create an interpreter bound to `host`.
    pub fn new(host: &'h mut dyn Host) -> Self {
        let natives = host.native_names();
        Interpreter {
            host,
            globals: BTreeMap::new(),
            scopes: Vec::new(),
            natives,
            cur_stmt: StmtId(0),
            cycles: 0,
            steps: 0,
            step_limit: 50_000_000,
            call_depth: 0,
        }
    }

    /// Total virtual CPU cycles consumed so far.
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Override the execution step budget (tests, differential harnesses).
    pub fn set_step_limit(&mut self, limit: u64) {
        self.step_limit = limit;
    }

    /// Reset the cycle counter, returning the previous total.
    pub fn take_cycles(&mut self) -> u64 {
        std::mem::take(&mut self.cycles)
    }

    /// Read-only view of the global scope.
    pub fn globals(&self) -> &BTreeMap<String, Value> {
        &self.globals
    }

    /// Replace the entire global scope (used by state restore, §III-C).
    pub fn set_globals(&mut self, globals: BTreeMap<String, Value>) {
        self.globals = globals;
    }

    /// Deep-copy the global scope, skipping functions and natives (used by
    /// state capture, §III-C).
    pub fn snapshot_globals(&self) -> BTreeMap<String, Value> {
        self.globals
            .iter()
            .filter(|(_, v)| !matches!(v, Value::Function(_) | Value::Native(_)))
            .map(|(k, v)| (k.clone(), v.deep_clone()))
            .collect()
    }

    /// Merge `saved` values back into the global scope.
    pub fn restore_globals(&mut self, saved: &BTreeMap<String, Value>) {
        for (k, v) in saved {
            self.globals.insert(k.clone(), v.deep_clone());
        }
    }

    /// Define or overwrite a global binding.
    pub fn define_global(&mut self, name: impl Into<String>, value: Value) {
        self.globals.insert(name.into(), value);
    }

    /// Execute a whole program's top-level statements (the `init` phase).
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError`] on any runtime failure, including host
    /// errors and exceeded step budget.
    pub fn run_program(
        &mut self,
        program: &Program,
        tracer: &mut dyn Instrument,
    ) -> Result<(), RuntimeError> {
        for stmt in &program.stmts {
            if let Flow::Return(_) = self.exec_stmt(stmt, tracer)? {
                break;
            }
        }
        Ok(())
    }

    /// Call a globally-declared function by name.
    ///
    /// # Errors
    ///
    /// Fails if `name` is not bound to a function, or on runtime failure.
    pub fn call_function(
        &mut self,
        name: &str,
        args: Vec<Value>,
        tracer: &mut dyn Instrument,
    ) -> Result<Value, RuntimeError> {
        let func = match self.globals.get(name) {
            Some(Value::Function(c)) => Rc::clone(c),
            _ => {
                return Err(RuntimeError::new(
                    None,
                    format!("'{name}' is not a function"),
                ))
            }
        };
        self.call_closure_value(&func, args, tracer)
    }

    /// Call a closure value (e.g. a route handler registered with the host).
    ///
    /// # Errors
    ///
    /// Fails if `value` is not a function, or on runtime failure.
    pub fn call_closure(
        &mut self,
        value: &Value,
        args: Vec<Value>,
        tracer: &mut dyn Instrument,
    ) -> Result<Value, RuntimeError> {
        match value {
            Value::Function(c) => self.call_closure_value(c, args, tracer),
            other => Err(RuntimeError::new(
                None,
                format!("cannot call non-function value {other}"),
            )),
        }
    }

    fn call_closure_value(
        &mut self,
        closure: &Rc<Closure>,
        args: Vec<Value>,
        tracer: &mut dyn Instrument,
    ) -> Result<Value, RuntimeError> {
        if self.call_depth >= 64 {
            return Err(RuntimeError::new(
                Some(self.cur_stmt),
                "call depth limit exceeded",
            ));
        }
        let mut scope = BTreeMap::new();
        for (i, p) in closure.params.iter().enumerate() {
            scope.insert(p.clone(), args.get(i).cloned().unwrap_or(Value::Null));
        }
        self.scopes.push(scope);
        self.call_depth += 1;
        let mut result = Value::Null;
        let mut error = None;
        for stmt in &closure.body {
            match self.exec_stmt(stmt, tracer) {
                Ok(Flow::Return(v)) => {
                    result = v;
                    break;
                }
                Ok(Flow::Normal) => {}
                Err(e) => {
                    error = Some(e);
                    break;
                }
            }
        }
        self.call_depth -= 1;
        self.scopes.pop();
        match error {
            Some(e) => Err(e),
            None => Ok(result),
        }
    }

    fn budget(&mut self) -> Result<(), RuntimeError> {
        self.steps += 1;
        if self.steps > self.step_limit {
            Err(RuntimeError::new(
                Some(self.cur_stmt),
                "execution step budget exceeded",
            ))
        } else {
            Ok(())
        }
    }

    fn lookup(&self, name: &str) -> Option<Value> {
        for scope in self.scopes.iter().rev() {
            if let Some(v) = scope.get(name) {
                return Some(v.clone());
            }
        }
        if let Some(v) = self.globals.get(name) {
            return Some(v.clone());
        }
        if self.natives.iter().any(|n| n == name) {
            return Some(Value::Native(Rc::from(name)));
        }
        None
    }

    /// Bind `name` in the innermost scope (declaration).
    fn declare(&mut self, name: &str, value: Value) -> bool {
        if let Some(scope) = self.scopes.last_mut() {
            scope.insert(name.to_string(), value);
            false
        } else {
            self.globals.insert(name.to_string(), value);
            true
        }
    }

    /// Assign to an existing binding, falling back to global creation.
    /// Returns `true` if the write landed in the global scope.
    fn assign_var(&mut self, name: &str, value: Value) -> bool {
        for scope in self.scopes.iter_mut().rev() {
            if let Some(slot) = scope.get_mut(name) {
                *slot = value;
                return false;
            }
        }
        self.globals.insert(name.to_string(), value);
        true
    }

    fn exec_stmt(
        &mut self,
        stmt: &Stmt,
        tracer: &mut dyn Instrument,
    ) -> Result<Flow, RuntimeError> {
        self.budget()?;
        self.cycles += STMT_CYCLES;
        self.cur_stmt = stmt.id();
        tracer.on_event(&TraceEvent::StmtEnter { stmt: stmt.id() });
        match stmt {
            Stmt::Let { id, name, init, .. } => {
                let value = match init {
                    Some(e) => self.eval(e, tracer)?,
                    None => Value::Null,
                };
                tracer.on_event(&TraceEvent::Write {
                    stmt: *id,
                    var: name.clone(),
                    value: value.clone(),
                });
                if self.declare(name, value) {
                    tracer.on_event(&TraceEvent::GlobalWrite {
                        stmt: *id,
                        var: name.clone(),
                    });
                }
                Ok(Flow::Normal)
            }
            Stmt::Assign {
                id, target, value, ..
            } => {
                let v = self.eval(value, tracer)?;
                match target {
                    LValue::Var(name) => {
                        tracer.on_event(&TraceEvent::Write {
                            stmt: *id,
                            var: name.clone(),
                            value: v.clone(),
                        });
                        if self.assign_var(name, v) {
                            tracer.on_event(&TraceEvent::GlobalWrite {
                                stmt: *id,
                                var: name.clone(),
                            });
                        }
                    }
                    LValue::Member(base, field) => {
                        let base_v = self.eval(base, tracer)?;
                        if let Some(root) = target.root_var() {
                            tracer.on_event(&TraceEvent::Write {
                                stmt: *id,
                                var: root.to_string(),
                                value: v.clone(),
                            });
                            if self.is_global_binding(root) {
                                tracer.on_event(&TraceEvent::GlobalWrite {
                                    stmt: *id,
                                    var: root.to_string(),
                                });
                            }
                        }
                        ops::member_set(&base_v, field, v)
                            .map_err(|m| RuntimeError::new(Some(*id), m))?;
                    }
                    LValue::Index(base, index) => {
                        let base_v = self.eval(base, tracer)?;
                        let idx_v = self.eval(index, tracer)?;
                        if let Some(root) = target.root_var() {
                            tracer.on_event(&TraceEvent::Write {
                                stmt: *id,
                                var: root.to_string(),
                                value: v.clone(),
                            });
                            if self.is_global_binding(root) {
                                tracer.on_event(&TraceEvent::GlobalWrite {
                                    stmt: *id,
                                    var: root.to_string(),
                                });
                            }
                        }
                        self.index_set(&base_v, &idx_v, v, *id)?;
                    }
                }
                Ok(Flow::Normal)
            }
            Stmt::Expr { expr, .. } => {
                self.eval(expr, tracer)?;
                Ok(Flow::Normal)
            }
            Stmt::If {
                cond,
                then_block,
                else_block,
                ..
            } => {
                let c = self.eval(cond, tracer)?;
                let block = if c.is_truthy() {
                    then_block
                } else {
                    else_block
                };
                for s in block {
                    if let Flow::Return(v) = self.exec_stmt(s, tracer)? {
                        return Ok(Flow::Return(v));
                    }
                }
                Ok(Flow::Normal)
            }
            Stmt::While { cond, body, .. } => {
                loop {
                    self.budget()?;
                    let c = self.eval(cond, tracer)?;
                    if !c.is_truthy() {
                        break;
                    }
                    for s in body {
                        if let Flow::Return(v) = self.exec_stmt(s, tracer)? {
                            return Ok(Flow::Return(v));
                        }
                    }
                }
                Ok(Flow::Normal)
            }
            Stmt::For {
                init,
                cond,
                update,
                body,
                ..
            } => {
                // loop variables live in a dedicated scope when inside a call
                if let Flow::Return(v) = self.exec_stmt(init, tracer)? {
                    return Ok(Flow::Return(v));
                }
                loop {
                    self.budget()?;
                    let c = self.eval(cond, tracer)?;
                    if !c.is_truthy() {
                        break;
                    }
                    for s in body {
                        if let Flow::Return(v) = self.exec_stmt(s, tracer)? {
                            return Ok(Flow::Return(v));
                        }
                    }
                    if let Flow::Return(v) = self.exec_stmt(update, tracer)? {
                        return Ok(Flow::Return(v));
                    }
                }
                Ok(Flow::Normal)
            }
            Stmt::Return { value, .. } => {
                let v = match value {
                    Some(e) => self.eval(e, tracer)?,
                    None => Value::Null,
                };
                Ok(Flow::Return(v))
            }
            Stmt::Function {
                id,
                name,
                params,
                body,
                ..
            } => {
                let closure = Value::Function(Rc::new(Closure {
                    name: Some(name.clone()),
                    params: params.clone(),
                    body: body.clone(),
                    compiled: None,
                }));
                tracer.on_event(&TraceEvent::Write {
                    stmt: *id,
                    var: name.clone(),
                    value: Value::Null,
                });
                if self.declare(name, closure) {
                    tracer.on_event(&TraceEvent::GlobalWrite {
                        stmt: *id,
                        var: name.clone(),
                    });
                }
                Ok(Flow::Normal)
            }
        }
    }

    fn is_global_binding(&self, name: &str) -> bool {
        for scope in self.scopes.iter().rev() {
            if scope.contains_key(name) {
                return false;
            }
        }
        self.globals.contains_key(name)
    }

    fn index_set(
        &mut self,
        base: &Value,
        idx: &Value,
        v: Value,
        stmt: StmtId,
    ) -> Result<(), RuntimeError> {
        ops::index_set(base, idx, v).map_err(|m| RuntimeError::new(Some(stmt), m))
    }

    fn eval(&mut self, expr: &Expr, tracer: &mut dyn Instrument) -> Result<Value, RuntimeError> {
        self.budget()?;
        self.cycles += 50;
        match expr {
            Expr::Null => Ok(Value::Null),
            Expr::Bool(b) => Ok(Value::Bool(*b)),
            Expr::Num(n) => Ok(Value::Num(*n)),
            Expr::Str(s) => Ok(Value::str(s.clone())),
            Expr::Var(name) => {
                let v = self.lookup(name).ok_or_else(|| {
                    RuntimeError::new(Some(self.cur_stmt), format!("undefined variable '{name}'"))
                })?;
                tracer.on_event(&TraceEvent::Read {
                    stmt: self.cur_stmt,
                    var: name.clone(),
                    value: v.clone(),
                });
                Ok(v)
            }
            Expr::Array(items) => {
                let mut vs = Vec::with_capacity(items.len());
                for e in items {
                    vs.push(self.eval(e, tracer)?);
                }
                Ok(Value::array(vs))
            }
            Expr::Object(fields) => {
                let mut map = BTreeMap::new();
                for (k, e) in fields {
                    map.insert(k.clone(), self.eval(e, tracer)?);
                }
                Ok(Value::Object(Rc::new(std::cell::RefCell::new(map))))
            }
            Expr::Binary(op, a, b) => {
                // short-circuit logical operators
                if matches!(op, BinOp::And) {
                    let av = self.eval(a, tracer)?;
                    if !av.is_truthy() {
                        return Ok(av);
                    }
                    return self.eval(b, tracer);
                }
                if matches!(op, BinOp::Or) {
                    let av = self.eval(a, tracer)?;
                    if av.is_truthy() {
                        return Ok(av);
                    }
                    return self.eval(b, tracer);
                }
                let av = self.eval(a, tracer)?;
                let bv = self.eval(b, tracer)?;
                self.binary(*op, av, bv)
            }
            Expr::Unary(op, a) => {
                let av = self.eval(a, tracer)?;
                ops::unary(*op, &av).map_err(|m| RuntimeError::new(Some(self.cur_stmt), m))
            }
            Expr::Member(base, field) => {
                let base_v = self.eval(base, tracer)?;
                self.member_get(&base_v, field)
            }
            Expr::Index(base, index) => {
                let base_v = self.eval(base, tracer)?;
                let idx_v = self.eval(index, tracer)?;
                self.index_get(&base_v, &idx_v)
            }
            Expr::Function { params, body } => Ok(Value::Function(Rc::new(Closure {
                name: None,
                params: params.clone(),
                body: body.clone(),
                compiled: None,
            }))),
            Expr::New { ctor, args } => {
                let mut argv = Vec::with_capacity(args.len());
                for a in args {
                    argv.push(self.eval(a, tracer)?);
                }
                self.construct(ctor, argv, tracer)
            }
            Expr::Call { callee, args } => {
                let mut argv = Vec::with_capacity(args.len());
                for a in args {
                    argv.push(self.eval(a, tracer)?);
                }
                match &**callee {
                    // method call: obj.method(args)
                    Expr::Member(base, method) => {
                        let base_v = self.eval(base, tracer)?;
                        let result = self.call_method(&base_v, method, argv, tracer)?;
                        // array mutations through methods are writes to the
                        // receiver variable (the RW-LOG must see them)
                        if matches!(method.as_str(), "push" | "pop") {
                            if let Some(root) = expr_root_var(base) {
                                tracer.on_event(&TraceEvent::Write {
                                    stmt: self.cur_stmt,
                                    var: root.to_string(),
                                    value: base_v.clone(),
                                });
                                if self.is_global_binding(root) {
                                    tracer.on_event(&TraceEvent::GlobalWrite {
                                        stmt: self.cur_stmt,
                                        var: root.to_string(),
                                    });
                                }
                            }
                        }
                        Ok(result)
                    }
                    other => {
                        let f = self.eval(other, tracer)?;
                        match f {
                            Value::Function(c) => {
                                let name =
                                    c.name.clone().unwrap_or_else(|| "<anonymous>".to_string());
                                let call_site = self.cur_stmt;
                                let ret = self.call_closure_value(&c, argv.clone(), tracer)?;
                                self.cur_stmt = call_site;
                                tracer.on_event(&TraceEvent::Invoke {
                                    stmt: call_site,
                                    func: name,
                                    args: argv,
                                    ret: ret.clone(),
                                });
                                Ok(ret)
                            }
                            Value::Native(n) => self.host_call(&n, argv, tracer).map(|o| o.value),
                            other => Err(RuntimeError::new(
                                Some(self.cur_stmt),
                                format!("cannot call {other}"),
                            )),
                        }
                    }
                }
            }
        }
    }

    fn construct(
        &mut self,
        ctor: &str,
        args: Vec<Value>,
        tracer: &mut dyn Instrument,
    ) -> Result<Value, RuntimeError> {
        match ops::construct_builtin(ctor, args) {
            ops::Constructed::Done(v) => Ok(v),
            ops::Constructed::Host(args) => self
                .host_call(&format!("new:{ctor}"), args, tracer)
                .map(|o| o.value),
        }
    }

    fn host_call(
        &mut self,
        name: &str,
        args: Vec<Value>,
        tracer: &mut dyn Instrument,
    ) -> Result<HostOutcome, RuntimeError> {
        let outcome = self
            .host
            .call(name, &args)
            .map_err(|m| RuntimeError::new(Some(self.cur_stmt), m))?;
        self.cycles += outcome.cycles;
        tracer.on_event(&TraceEvent::Invoke {
            stmt: self.cur_stmt,
            func: name.to_string(),
            args,
            ret: outcome.value.clone(),
        });
        Ok(outcome)
    }

    fn call_method(
        &mut self,
        base: &Value,
        method: &str,
        args: Vec<Value>,
        tracer: &mut dyn Instrument,
    ) -> Result<Value, RuntimeError> {
        match base {
            Value::Native(obj) => {
                let full = format!("{obj}.{method}");
                self.host_call(&full, args, tracer).map(|o| o.value)
            }
            Value::Array(items) if matches!(method, "map" | "filter" | "forEach") => {
                let f = args.first().cloned().unwrap_or(Value::Null);
                let snapshot: Vec<Value> = items.borrow().clone();
                let mut out = Vec::new();
                for (i, item) in snapshot.into_iter().enumerate() {
                    let r =
                        self.call_closure(&f, vec![item.clone(), Value::Num(i as f64)], tracer)?;
                    match method {
                        "map" => out.push(r),
                        "filter" if r.is_truthy() => {
                            out.push(item);
                        }
                        _ => {}
                    }
                }
                if method == "forEach" {
                    Ok(Value::Null)
                } else {
                    Ok(Value::array(out))
                }
            }
            Value::Object(map) => {
                // method stored as a function-valued field
                let f = map.borrow().get(method).cloned();
                match f {
                    Some(Value::Function(c)) => {
                        let call_site = self.cur_stmt;
                        let ret = self.call_closure_value(&c, args.clone(), tracer)?;
                        self.cur_stmt = call_site;
                        tracer.on_event(&TraceEvent::Invoke {
                            stmt: call_site,
                            func: method.to_string(),
                            args,
                            ret: ret.clone(),
                        });
                        Ok(ret)
                    }
                    _ => Err(RuntimeError::new(
                        Some(self.cur_stmt),
                        format!("object has no method '{method}'"),
                    )),
                }
            }
            base => ops::simple_method(base, method, &args)
                .expect("non-engine method dispatch is simple")
                .map_err(|m| RuntimeError::new(Some(self.cur_stmt), m)),
        }
    }

    fn member_get(&mut self, base: &Value, field: &str) -> Result<Value, RuntimeError> {
        ops::member_get(base, field).map_err(|m| RuntimeError::new(Some(self.cur_stmt), m))
    }

    fn index_get(&mut self, base: &Value, idx: &Value) -> Result<Value, RuntimeError> {
        ops::index_get(base, idx).map_err(|m| RuntimeError::new(Some(self.cur_stmt), m))
    }

    fn binary(&mut self, op: BinOp, a: Value, b: Value) -> Result<Value, RuntimeError> {
        ops::binary(op, &a, &b).map_err(|m| RuntimeError::new(Some(self.cur_stmt), m))
    }
}

// `host_call` returns HostOutcome internally but callers need Value.
impl<'h> Interpreter<'h> {
    /// Run a single already-parsed statement list in the global scope.
    ///
    /// # Errors
    ///
    /// Propagates any [`RuntimeError`] from execution.
    pub fn run_stmts(
        &mut self,
        stmts: &[Stmt],
        tracer: &mut dyn Instrument,
    ) -> Result<(), RuntimeError> {
        for s in stmts {
            if let Flow::Return(_) = self.exec_stmt(s, tracer)? {
                break;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instrument::{NoopInstrument, RecordingInstrument};
    use crate::parser::parse;

    fn run(src: &str) -> (BTreeMap<String, Value>, u64) {
        let prog = parse(src).unwrap();
        let mut host = EmptyHost;
        let mut interp = Interpreter::new(&mut host);
        interp.run_program(&prog, &mut NoopInstrument).unwrap();
        let cycles = interp.cycles();
        (interp.globals().clone(), cycles)
    }

    #[test]
    fn arithmetic_and_globals() {
        let (g, _) = run("var x = 2 + 3 * 4; var y = x % 5;");
        assert_eq!(g["x"], Value::Num(14.0));
        assert_eq!(g["y"], Value::Num(4.0));
    }

    #[test]
    fn string_concatenation() {
        let (g, _) = run("var s = 'a' + 1 + 'b';");
        assert_eq!(g["s"], Value::str("a1b"));
    }

    #[test]
    fn function_call_and_return() {
        let (g, _) = run("function sq(n) { return n * n; } var r = sq(7);");
        assert_eq!(g["r"], Value::Num(49.0));
    }

    #[test]
    fn while_loop_sums() {
        let (g, _) = run("var s = 0; var i = 1; while (i <= 10) { s = s + i; i = i + 1; }");
        assert_eq!(g["s"], Value::Num(55.0));
    }

    #[test]
    fn for_loop_sums() {
        let (g, _) = run("var s = 0; for (var i = 0; i < 5; i = i + 1) { s = s + i; }");
        assert_eq!(g["s"], Value::Num(10.0));
    }

    #[test]
    fn if_else_branches() {
        let (g, _) = run("var x = 3; var r = 0; if (x > 2) { r = 1; } else { r = 2; }");
        assert_eq!(g["r"], Value::Num(1.0));
    }

    #[test]
    fn object_and_array_manipulation() {
        let (g, _) = run("var o = { a: [1, 2] }; o.a.push(3); o.b = o.a.length;");
        if let Value::Object(map) = &g["o"] {
            assert_eq!(map.borrow()["b"], Value::Num(3.0));
        } else {
            panic!("o is not an object");
        }
    }

    #[test]
    fn closures_capture_behavior() {
        let (g, _) = run("var f = function (x) { return x + 1; }; var r = f(41);");
        assert_eq!(g["r"], Value::Num(42.0));
    }

    #[test]
    fn array_map_and_filter() {
        let (g, _) = run("var a = [1, 2, 3, 4];
             var doubled = a.map(function (x) { return x * 2; });
             var evens = a.filter(function (x) { return x % 2 == 0; });
             var d1 = doubled[3]; var e0 = evens[0];");
        assert_eq!(g["d1"], Value::Num(8.0));
        assert_eq!(g["e0"], Value::Num(2.0));
    }

    #[test]
    fn string_methods() {
        let (g, _) =
            run("var s = ' Hello '; var t = s.trim().toLowerCase(); var p = t.split('l');");
        assert_eq!(g["t"], Value::str("hello"));
        if let Value::Array(items) = &g["p"] {
            assert_eq!(items.borrow().len(), 3);
        } else {
            panic!("split did not return array");
        }
    }

    #[test]
    fn uint8array_constructor() {
        let (g, _) = run("var b = new Uint8Array([65, 66, 67]); var n = b.length;");
        assert_eq!(g["n"], Value::Num(3.0));
        assert_eq!(g["b"].as_bytes(), Some(&b"ABC"[..]));
    }

    #[test]
    fn undefined_variable_errors() {
        let prog = parse("var x = nope;").unwrap();
        let mut host = EmptyHost;
        let mut interp = Interpreter::new(&mut host);
        let err = interp.run_program(&prog, &mut NoopInstrument).unwrap_err();
        assert!(err.message.contains("undefined variable"));
    }

    #[test]
    fn infinite_loop_hits_step_budget() {
        let prog = parse("while (true) { var x = 1; }").unwrap();
        let mut host = EmptyHost;
        let mut interp = Interpreter::new(&mut host);
        interp.step_limit = 10_000;
        let err = interp.run_program(&prog, &mut NoopInstrument).unwrap_err();
        assert!(err.message.contains("step budget"));
    }

    #[test]
    fn trace_records_reads_and_writes() {
        let prog = parse("var x = 1; var y = x + 1;").unwrap();
        let mut host = EmptyHost;
        let mut interp = Interpreter::new(&mut host);
        let mut rec = RecordingInstrument::new();
        interp.run_program(&prog, &mut rec).unwrap();
        let reads: Vec<_> = rec
            .events
            .iter()
            .filter_map(|e| match e {
                TraceEvent::Read { var, .. } => Some(var.clone()),
                _ => None,
            })
            .collect();
        let writes: Vec<_> = rec
            .events
            .iter()
            .filter_map(|e| match e {
                TraceEvent::Write { var, .. } => Some(var.clone()),
                _ => None,
            })
            .collect();
        assert_eq!(reads, vec!["x"]);
        assert_eq!(writes, vec!["x", "y"]);
    }

    #[test]
    fn global_writes_flagged() {
        let prog = parse("var g = 1; function f() { g = 2; var local = 3; } f();").unwrap();
        let mut host = EmptyHost;
        let mut interp = Interpreter::new(&mut host);
        let mut rec = RecordingInstrument::new();
        interp.run_program(&prog, &mut rec).unwrap();
        let global_writes: Vec<_> = rec
            .events
            .iter()
            .filter_map(|e| match e {
                TraceEvent::GlobalWrite { var, .. } => Some(var.clone()),
                _ => None,
            })
            .collect();
        assert!(global_writes.contains(&"g".to_string()));
        assert!(!global_writes.contains(&"local".to_string()));
    }

    #[test]
    fn cycles_accumulate_per_statement() {
        let (_, few) = run("var x = 1;");
        let (_, many) = run("var s = 0; for (var i = 0; i < 100; i = i + 1) { s = s + i; }");
        assert!(many > few * 10);
    }

    #[test]
    fn snapshot_and_restore_globals() {
        let prog = parse("var counter = { n: 0 };").unwrap();
        let mut host = EmptyHost;
        let mut interp = Interpreter::new(&mut host);
        interp.run_program(&prog, &mut NoopInstrument).unwrap();
        let snap = interp.snapshot_globals();
        let mutate = parse("counter.n = 99;").unwrap();
        interp.run_program(&mutate, &mut NoopInstrument).unwrap();
        interp.restore_globals(&snap);
        if let Value::Object(map) = &interp.globals()["counter"] {
            assert_eq!(map.borrow()["n"], Value::Num(0.0));
        } else {
            panic!("counter missing");
        }
    }

    #[test]
    fn short_circuit_avoids_rhs_evaluation() {
        // if || were not short-circuited, `nope` would raise
        let (g, _) = run("var r = true || nope;");
        assert_eq!(g["r"], Value::Bool(true));
    }

    #[test]
    fn recursion_depth_limited() {
        let prog = parse("function f(n) { return f(n + 1); } var x = f(0);").unwrap();
        let mut host = EmptyHost;
        let mut interp = Interpreter::new(&mut host);
        let err = interp.run_program(&prog, &mut NoopInstrument).unwrap_err();
        assert!(err.message.contains("depth"));
    }
}

#[cfg(test)]
mod bytes_method_tests {
    use super::*;
    use crate::instrument::NoopInstrument;
    use crate::parser::parse;

    fn run_src(src: &str) -> std::collections::BTreeMap<String, Value> {
        let prog = parse(src).unwrap();
        let mut host = EmptyHost;
        let mut interp = Interpreter::new(&mut host);
        interp.run_program(&prog, &mut NoopInstrument).unwrap();
        interp.globals().clone()
    }

    #[test]
    fn bytes_to_string_decodes_utf8() {
        let g = run_src("var b = new Uint8Array([104, 105]); var s = b.toString();");
        assert_eq!(g["s"], Value::str("hi"));
    }

    #[test]
    fn bytes_slice_subranges() {
        let g = run_src(
            "var b = new Uint8Array([1, 2, 3, 4, 5]); var mid = b.slice(1, 4); var n = mid.length;",
        );
        assert_eq!(g["n"], Value::Num(3.0));
        assert_eq!(g["mid"].as_bytes(), Some(&[2u8, 3, 4][..]));
    }

    #[test]
    fn string_plus_bytes_concatenates_text() {
        let g = run_src(r#"var b = new Uint8Array([97, 98]); var s = "x" + b; var t = b + "y";"#);
        assert_eq!(g["s"], Value::str("xab"));
        assert_eq!(g["t"], Value::str("aby"));
    }

    #[test]
    fn array_push_emits_write_event() {
        use crate::instrument::{RecordingInstrument, TraceEvent};
        let prog = parse("var a = []; a.push(7);").unwrap();
        let mut host = EmptyHost;
        let mut interp = Interpreter::new(&mut host);
        let mut rec = RecordingInstrument::new();
        interp.run_program(&prog, &mut rec).unwrap();
        let push_writes = rec
            .events
            .iter()
            .filter(|e| matches!(e, TraceEvent::Write { var, .. } if var == "a"))
            .count();
        assert!(push_writes >= 2, "declaration write + push write expected");
    }
}
