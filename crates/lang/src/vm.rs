//! Stack VM executing [`CompiledProgram`]s.
//!
//! The VM is behaviorally identical to the tree-walking
//! [`Interpreter`](crate::interp::Interpreter) — same values, same trace
//! events, same error messages, same virtual-cycle accounting — but serves
//! requests without per-access name hashing or per-request deep copies:
//!
//! - locals live in slot-indexed frames; globals in a persistent
//!   [`GlobalStore`] indexed by compile-time gid;
//! - checkpoint/rollback of global state is copy-on-write: a `Journal`
//!   records the first mutation of each reachable container and each
//!   global rebind, and rollback undoes exactly those, replicating the
//!   interpreter's snapshot/merge-restore semantics without deep-copying
//!   the world per request.
//!
//! ## Send audit (parallel serving)
//!
//! The VM and everything it executes are **deliberately thread-owned**:
//! [`Value`] interns strings as `Rc<str>` and shares containers as
//! `Rc<RefCell<...>>`, and [`CompiledProgram`] shares its atom table the
//! same way, precisely so the serve hot path pays non-atomic refcounts
//! and no locks. The parallel executor therefore never moves a `Vm`
//! (or a `ServerProcess`) across threads — each worker *builds* its own
//! from the `Send + Sync` seed data (the AST [`Program`](crate::ast::Program),
//! `CrdtBindings`, and the JSON-viewed `InitSeed`) and owns it for the
//! run. The `sendable_seed_frontier` test pins the frontier at compile
//! time: if a seed type grows a non-`Send` field, the build breaks there
//! rather than at a distant spawn site.

use crate::ast::StmtId;
use crate::compile::{compile_closure, CompiledChunk, CompiledProgram, NameRef, Op};
use crate::instrument::{Instrument, TraceEvent};
use crate::interp::{Host, RuntimeError, STMT_CYCLES};
use crate::value::{Closure, Value};
use std::cell::RefCell;
use std::collections::{BTreeMap, HashMap, HashSet};
use std::rc::Rc;

/// Persistent global scope of a VM: names, values and native flags indexed
/// by gid. Unbound slots fall through to the native flag, mirroring the
/// interpreter's scopes → globals → natives lookup order.
#[derive(Debug, Default)]
pub struct GlobalStore {
    names: Vec<Rc<str>>,
    values: Vec<Option<Value>>,
    native: Vec<bool>,
    index: HashMap<Rc<str>, u32>,
}

impl GlobalStore {
    fn ensure_slot(&mut self, name: &str, native: bool) -> u32 {
        if let Some(&g) = self.index.get(name) {
            if native {
                self.native[g as usize] = true;
            }
            return g;
        }
        let rc: Rc<str> = Rc::from(name);
        let g = self.names.len() as u32;
        self.names.push(Rc::clone(&rc));
        self.values.push(None);
        self.native.push(native);
        self.index.insert(rc, g);
        g
    }
}

/// One call frame: the chunk being executed plus its local slots.
/// `gids` maps the frame program's gid space onto the store's.
struct Frame {
    program: Rc<CompiledProgram>,
    gids: Rc<Vec<u32>>,
    chunk: u16,
    slots: Vec<Option<Value>>,
}

/// Per-run execution state (one run = one `init` or one request), holding
/// what the interpreter resets by being constructed fresh per request.
struct Ctx<'a> {
    host: &'a mut dyn Host,
    tracer: &'a mut dyn Instrument,
    trace: bool,
    /// Instrument asked for per-statement cost attribution
    /// (`Instrument::wants_profile`).
    profile: bool,
    /// Absolute cycle count at the last profile flush.
    prof_mark: u64,
    /// Allocations observed since the last profile flush.
    prof_allocs: u64,
    cycles: u64,
    steps: u64,
    cur_stmt: StmtId,
    call_depth: u32,
    stack: Vec<Value>,
    frames: Vec<Frame>,
}

impl Ctx<'_> {
    /// Attribute everything accumulated since the last flush to the
    /// current statement. `cycles_now` is the caller's up-to-date absolute
    /// cycle count (the dispatch loop keeps it in a register).
    #[inline]
    fn prof_flush(&mut self, cycles_now: u64) {
        let spent = cycles_now - self.prof_mark;
        if spent > 0 || self.prof_allocs > 0 {
            self.tracer
                .on_stmt_cost(self.cur_stmt, spent, self.prof_allocs);
        }
        self.prof_mark = cycles_now;
        self.prof_allocs = 0;
    }
}

/// Copy-on-write checkpoint journal (see module docs).
struct Journal {
    /// Gids whose bindings the interpreter's `snapshot_globals` would have
    /// captured (bound, non-function, non-native) at checkpoint time.
    capture_bound: Vec<bool>,
    /// Raw pointers of every container reachable from captured bindings.
    capture_ptrs: HashSet<usize>,
    saved_globals: Vec<(u32, Option<Value>)>,
    noted_globals: HashSet<u32>,
    saved_arrays: Vec<(SharedArray, Vec<Value>)>,
    saved_objects: Vec<(SharedObject, BTreeMap<String, Value>)>,
    noted_ptrs: HashSet<usize>,
}

type SharedArray = Rc<RefCell<Vec<Value>>>;
type SharedObject = Rc<RefCell<BTreeMap<String, Value>>>;

impl Journal {
    fn note_global(&mut self, gid: u32, old: Option<Value>) {
        if self.noted_globals.insert(gid) {
            self.saved_globals.push((gid, old));
        }
    }

    /// Record the pre-mutation contents of a container, if it is one the
    /// checkpoint captured and it has not been noted yet.
    fn note_container(&mut self, v: &Value) {
        match v {
            Value::Array(items) => {
                let ptr = Rc::as_ptr(items) as usize;
                if self.capture_ptrs.contains(&ptr) && self.noted_ptrs.insert(ptr) {
                    self.saved_arrays
                        .push((Rc::clone(items), items.borrow().clone()));
                }
            }
            Value::Object(map) => {
                let ptr = Rc::as_ptr(map) as usize;
                if self.capture_ptrs.contains(&ptr) && self.noted_ptrs.insert(ptr) {
                    self.saved_objects
                        .push((Rc::clone(map), map.borrow().clone()));
                }
            }
            _ => {}
        }
    }
}

/// Collect the raw pointers of all containers reachable from `v`. The set
/// doubles as the cycle guard.
fn collect_ptrs(v: &Value, out: &mut HashSet<usize>) {
    match v {
        Value::Array(items) if out.insert(Rc::as_ptr(items) as usize) => {
            for item in items.borrow().iter() {
                collect_ptrs(item, out);
            }
        }
        Value::Object(map) if out.insert(Rc::as_ptr(map) as usize) => {
            for item in map.borrow().values() {
                collect_ptrs(item, out);
            }
        }
        _ => {}
    }
}

type AdoptedClosure = (Rc<Closure>, Rc<CompiledProgram>, Rc<Vec<u32>>);

/// The compiled-NodeScript virtual machine. One VM instance holds the
/// global state of one server program across requests, the way one
/// interpreter instance does for the tree-walking engine.
pub struct Vm {
    program: Rc<CompiledProgram>,
    identity_gids: Rc<Vec<u32>>,
    store: GlobalStore,
    step_limit: u64,
    journal: Option<Journal>,
    /// Foreign programs adopted at runtime (closures compiled on demand),
    /// with their gid remap tables, keyed by source-closure identity.
    adopted: Vec<AdoptedClosure>,
    /// Recycled frame-slot vectors — calls reuse capacity instead of
    /// allocating per invocation.
    slot_pool: Vec<Vec<Option<Value>>>,
    /// Recycled argument vectors for calls and host dispatch.
    arg_pool: Vec<Vec<Value>>,
    /// Reused buffer for `obj.method` host-call names.
    scratch_name: String,
    /// Gids that transitioned unbound -> bound since the last
    /// [`Vm::clear_bind_log`] — an O(new bindings) alternative to diffing
    /// full [`Vm::bound_mask`] snapshots around every request.
    bind_log: Vec<u32>,
    /// Recycled operand stack for [`Vm::call_value`].
    stack_buf: Vec<Value>,
    /// Recycled frame stack for [`Vm::call_value`].
    frames_buf: Vec<Frame>,
}

impl std::fmt::Debug for Vm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Vm")
            .field("chunks", &self.program.chunks.len())
            .field("globals", &self.store.values.iter().flatten().count())
            .finish()
    }
}

impl Vm {
    /// Create a VM for `program`. `natives` are the host's root object
    /// names (bare identifiers evaluating to [`Value::Native`]).
    pub fn new(program: Rc<CompiledProgram>, natives: &[String]) -> Self {
        let mut store = GlobalStore::default();
        for &atom in &program.global_names {
            let name = &program.atoms[atom as usize];
            let native = natives.iter().any(|n| n.as_str() == &**name);
            store.ensure_slot(name, native);
        }
        for n in natives {
            store.ensure_slot(n, true);
        }
        let identity_gids = Rc::new((0..program.global_names.len() as u32).collect());
        Vm {
            program,
            identity_gids,
            store,
            step_limit: 50_000_000,
            journal: None,
            adopted: Vec::new(),
            slot_pool: Vec::new(),
            arg_pool: Vec::new(),
            scratch_name: String::new(),
            bind_log: Vec::new(),
            stack_buf: Vec::new(),
            frames_buf: Vec::new(),
        }
    }

    /// Override the execution step budget (tests).
    pub fn set_step_limit(&mut self, limit: u64) {
        self.step_limit = limit;
    }

    /// Run the top-level chunk (the server's `init` phase). Returns the
    /// virtual cycles consumed.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError`] on any runtime failure.
    pub fn run_top(
        &mut self,
        host: &mut dyn Host,
        tracer: &mut dyn Instrument,
    ) -> Result<u64, RuntimeError> {
        let trace = tracer.wants_events();
        let profile = tracer.wants_profile();
        let mut ctx = Ctx {
            host,
            tracer,
            trace,
            profile,
            prof_mark: 0,
            prof_allocs: 0,
            cycles: 0,
            steps: 0,
            cur_stmt: StmtId(0),
            call_depth: 0,
            stack: Vec::new(),
            frames: vec![Frame {
                program: Rc::clone(&self.program),
                gids: Rc::clone(&self.identity_gids),
                chunk: 0,
                slots: Vec::new(),
            }],
        };
        self.exec(&mut ctx)?;
        if ctx.profile {
            ctx.prof_flush(ctx.cycles);
        }
        Ok(ctx.cycles)
    }

    /// Call a function value (e.g. a route handler). Returns the result
    /// and the virtual cycles consumed, with step/cycle counters starting
    /// from zero — matching the interpreter's fresh-per-request lifecycle.
    ///
    /// # Errors
    ///
    /// Fails if `value` is not a function, or on runtime failure.
    pub fn call_value(
        &mut self,
        value: &Value,
        args: Vec<Value>,
        host: &mut dyn Host,
        tracer: &mut dyn Instrument,
    ) -> Result<(Value, u64), RuntimeError> {
        let closure = match value {
            Value::Function(c) => Rc::clone(c),
            other => {
                return Err(RuntimeError {
                    stmt: None,
                    message: format!("cannot call non-function value {other}"),
                })
            }
        };
        let trace = tracer.wants_events();
        let profile = tracer.wants_profile();
        let mut ctx = Ctx {
            host,
            tracer,
            trace,
            profile,
            prof_mark: 0,
            prof_allocs: 0,
            cycles: 0,
            steps: 0,
            cur_stmt: StmtId(0),
            call_depth: 0,
            // reuse the operand/frame buffers across calls so steady-state
            // request handling does not allocate for the execution context
            stack: std::mem::take(&mut self.stack_buf),
            frames: std::mem::take(&mut self.frames_buf),
        };
        let mut args = args;
        let ret = self.call_closure_vm(&mut ctx, &closure, &mut args);
        let cycles = ctx.cycles;
        ctx.stack.clear();
        ctx.frames.clear();
        self.stack_buf = ctx.stack;
        self.frames_buf = ctx.frames;
        Ok((ret?, cycles))
    }

    /// All bound globals, including functions, as a name-keyed map.
    pub fn globals_map(&self) -> BTreeMap<String, Value> {
        self.store
            .names
            .iter()
            .zip(&self.store.values)
            .filter_map(|(n, v)| v.as_ref().map(|v| (n.to_string(), v.clone())))
            .collect()
    }

    /// Deep-copy the global scope, skipping functions and natives — the
    /// same capture the interpreter's `snapshot_globals` performs.
    pub fn snapshot_globals(&self) -> BTreeMap<String, Value> {
        self.store
            .names
            .iter()
            .zip(&self.store.values)
            .filter_map(|(n, v)| match v {
                Some(v) if !matches!(v, Value::Function(_) | Value::Native(_)) => {
                    Some((n.to_string(), v.deep_clone()))
                }
                _ => None,
            })
            .collect()
    }

    /// Merge `saved` values back into the global scope.
    pub fn restore_globals(&mut self, saved: &BTreeMap<String, Value>) {
        for (k, v) in saved {
            self.set_global(k, v.deep_clone());
        }
    }

    /// Read a global binding.
    pub fn get_global(&self, name: &str) -> Option<Value> {
        let &g = self.store.index.get(name)?;
        self.store.values[g as usize].clone()
    }

    /// Create or overwrite a global binding (journal-aware).
    pub fn set_global(&mut self, name: &str, value: Value) {
        let g = self.store.ensure_slot(name, false);
        if let Some(j) = &mut self.journal {
            j.note_global(g, self.store.values[g as usize].clone());
        }
        if self.store.values[g as usize].is_none() {
            self.bind_log.push(g);
        }
        self.store.values[g as usize] = Some(value);
    }

    /// Bound-or-not flag per global slot; pair with [`Vm::newly_bound`] to
    /// find globals created by a request.
    pub fn bound_mask(&self) -> Vec<bool> {
        self.store.values.iter().map(Option::is_some).collect()
    }

    /// Reset the unbound->bound transition log (call before a request).
    pub fn clear_bind_log(&mut self) {
        self.bind_log.clear();
    }

    /// Names of globals bound since [`Vm::clear_bind_log`], sorted — the
    /// same set [`Vm::newly_bound`] computes, without the per-request
    /// full-store scans.
    pub fn logged_newly_bound(&self) -> Vec<String> {
        let mut out: Vec<String> = self
            .bind_log
            .iter()
            .map(|&g| self.store.names[g as usize].to_string())
            .collect();
        out.sort();
        out.dedup();
        out
    }

    /// Names of globals bound now but not in `mask`, sorted.
    pub fn newly_bound(&self, mask: &[bool]) -> Vec<String> {
        let mut out: Vec<String> = self
            .store
            .values
            .iter()
            .enumerate()
            .filter(|(i, v)| v.is_some() && !mask.get(*i).copied().unwrap_or(false))
            .map(|(i, _)| self.store.names[i].to_string())
            .collect();
        out.sort();
        out
    }

    /// Arm copy-on-write checkpointing: record which bindings and
    /// containers the equivalent deep snapshot would capture.
    pub fn begin_checkpoint(&mut self) {
        let mut capture_bound = vec![false; self.store.values.len()];
        let mut capture_ptrs = HashSet::new();
        for (i, v) in self.store.values.iter().enumerate() {
            if let Some(v) = v {
                if !matches!(v, Value::Function(_) | Value::Native(_)) {
                    capture_bound[i] = true;
                    collect_ptrs(v, &mut capture_ptrs);
                }
            }
        }
        self.journal = Some(Journal {
            capture_bound,
            capture_ptrs,
            saved_globals: Vec::new(),
            noted_globals: HashSet::new(),
            saved_arrays: Vec::new(),
            saved_objects: Vec::new(),
            noted_ptrs: HashSet::new(),
        });
    }

    /// Undo every journaled mutation since [`Vm::begin_checkpoint`] (or
    /// the last rollback), replicating the interpreter's merge-restore:
    /// captured containers get their contents back, captured bindings get
    /// their values back, everything else (globals created or rebound
    /// outside the capture set) persists. The journal stays armed.
    pub fn rollback_checkpoint(&mut self) {
        let Some(j) = &mut self.journal else { return };
        for (rc, saved) in j.saved_arrays.drain(..) {
            *rc.borrow_mut() = saved;
        }
        for (rc, saved) in j.saved_objects.drain(..) {
            *rc.borrow_mut() = saved;
        }
        for (gid, old) in j.saved_globals.drain(..) {
            if j.capture_bound.get(gid as usize).copied().unwrap_or(false) {
                self.store.values[gid as usize] = old;
            }
        }
        j.noted_globals.clear();
        j.noted_ptrs.clear();
    }

    /// Disarm checkpointing, keeping the current state.
    pub fn end_checkpoint(&mut self) {
        self.journal = None;
    }

    fn journal_container(&mut self, v: &Value) {
        if let Some(j) = &mut self.journal {
            j.note_container(v);
        }
    }

    /// Map a foreign program's gid space onto the store, creating slots as
    /// needed.
    fn gids_for(&mut self, program: &Rc<CompiledProgram>) -> Rc<Vec<u32>> {
        if Rc::ptr_eq(program, &self.program) {
            return Rc::clone(&self.identity_gids);
        }
        for (_, p, g) in &self.adopted {
            if Rc::ptr_eq(p, program) {
                return Rc::clone(g);
            }
        }
        let map: Vec<u32> = program
            .global_names
            .iter()
            .map(|&atom| {
                let name = program.atoms[atom as usize].to_string();
                self.store.ensure_slot(&name, false)
            })
            .collect();
        Rc::new(map)
    }

    /// Resolve a closure to an executable (program, gid map, chunk),
    /// compiling interpreter-built closures on demand.
    fn entry_of(&mut self, closure: &Rc<Closure>) -> (Rc<CompiledProgram>, Rc<Vec<u32>>, u16) {
        if let Some(cc) = &closure.compiled {
            let gids = self.gids_for(&cc.program);
            return (Rc::clone(&cc.program), gids, cc.chunk);
        }
        for (c, p, g) in &self.adopted {
            if Rc::ptr_eq(c, closure) {
                return (Rc::clone(p), Rc::clone(g), 0);
            }
        }
        let program = Rc::new(compile_closure(closure));
        let gids = self.gids_for(&program);
        self.adopted
            .push((Rc::clone(closure), Rc::clone(&program), Rc::clone(&gids)));
        (program, gids, 0)
    }

    /// Invoke `closure`, consuming the values in `args` (the vector's
    /// capacity is left to the caller for reuse).
    fn call_closure_vm(
        &mut self,
        ctx: &mut Ctx<'_>,
        closure: &Rc<Closure>,
        args: &mut [Value],
    ) -> Result<Value, RuntimeError> {
        if ctx.call_depth >= 64 {
            return Err(RuntimeError {
                stmt: Some(ctx.cur_stmt),
                message: "call depth limit exceeded".into(),
            });
        }
        let (program, gids, chunk) = self.entry_of(closure);
        let chunk_ref = &program.chunks[chunk as usize];
        let mut slots = self.slot_pool.pop().unwrap_or_default();
        slots.resize(chunk_ref.locals.len(), None);
        for (i, &slot) in chunk_ref.params.iter().enumerate() {
            slots[slot as usize] = Some(args.get_mut(i).map(std::mem::take).unwrap_or(Value::Null));
        }
        if ctx.profile {
            // pre-call cost belongs to the caller's statement
            ctx.prof_flush(ctx.cycles);
            ctx.tracer.on_frame_push(closure.name.as_deref());
        }
        ctx.frames.push(Frame {
            program,
            gids,
            chunk,
            slots,
        });
        ctx.call_depth += 1;
        let result = self.exec(ctx);
        ctx.call_depth -= 1;
        if ctx.profile {
            // trailing cost belongs to the callee's last statement
            ctx.prof_flush(ctx.cycles);
            ctx.tracer.on_frame_pop();
        }
        if let Some(frame) = ctx.frames.pop() {
            let mut slots = frame.slots;
            slots.clear();
            if self.slot_pool.len() < 64 {
                self.slot_pool.push(slots);
            }
        }
        result
    }

    /// Like [`Self::call_closure_vm`], but takes the arguments directly from
    /// the operand stack (everything above `argbase`), avoiding a drain into
    /// a temporary vector on the hottest call path.
    fn call_closure_stack(
        &mut self,
        ctx: &mut Ctx<'_>,
        closure: &Rc<Closure>,
        argbase: usize,
    ) -> Result<Value, RuntimeError> {
        if ctx.call_depth >= 64 {
            return Err(RuntimeError {
                stmt: Some(ctx.cur_stmt),
                message: "call depth limit exceeded".into(),
            });
        }
        let (program, gids, chunk) = self.entry_of(closure);
        let chunk_ref = &program.chunks[chunk as usize];
        let mut slots = self.slot_pool.pop().unwrap_or_default();
        slots.resize(chunk_ref.locals.len(), None);
        for (i, &slot) in chunk_ref.params.iter().enumerate() {
            slots[slot as usize] = Some(
                ctx.stack
                    .get_mut(argbase + i)
                    .map(std::mem::take)
                    .unwrap_or(Value::Null),
            );
        }
        ctx.stack.truncate(argbase);
        if ctx.profile {
            // pre-call cost belongs to the caller's statement
            ctx.prof_flush(ctx.cycles);
            ctx.tracer.on_frame_push(closure.name.as_deref());
        }
        ctx.frames.push(Frame {
            program,
            gids,
            chunk,
            slots,
        });
        ctx.call_depth += 1;
        let result = self.exec(ctx);
        ctx.call_depth -= 1;
        if ctx.profile {
            // trailing cost belongs to the callee's last statement
            ctx.prof_flush(ctx.cycles);
            ctx.tracer.on_frame_pop();
        }
        if let Some(frame) = ctx.frames.pop() {
            let mut slots = frame.slots;
            slots.clear();
            if self.slot_pool.len() < 64 {
                self.slot_pool.push(slots);
            }
        }
        result
    }

    fn budget_err(&self, ctx: &Ctx<'_>) -> RuntimeError {
        RuntimeError {
            stmt: Some(ctx.cur_stmt),
            message: "execution step budget exceeded".into(),
        }
    }

    fn err(ctx: &Ctx<'_>, message: String) -> RuntimeError {
        RuntimeError {
            stmt: Some(ctx.cur_stmt),
            message,
        }
    }

    /// Look up a variable: bound frame slot, then bound locals of outer
    /// frames (dynamic scoping), then globals, then natives.
    fn load_name(&self, ctx: &Ctx<'_>, nref: NameRef) -> Option<Value> {
        let frame = ctx.frames.last().expect("active frame");
        if let Some(slot) = nref.slot {
            if let Some(v) = &frame.slots[slot as usize] {
                return Some(v.clone());
            }
        }
        let name = &frame.program.atoms[nref.atom as usize];
        for f in ctx.frames[..ctx.frames.len() - 1].iter().rev() {
            if let Some(v) = frame_local(f, &frame.program, nref.atom, name) {
                return Some(v.clone());
            }
        }
        let gid = frame.gids[nref.gid as usize] as usize;
        if let Some(v) = &self.store.values[gid] {
            return Some(v.clone());
        }
        if self.store.native[gid] {
            return Some(Value::Native(Rc::clone(&self.store.names[gid])));
        }
        None
    }

    /// Assign to an existing binding (frame slot, then outer frames),
    /// falling back to global creation. Returns `true` if the write landed
    /// in the global scope.
    fn assign_name(&mut self, ctx: &mut Ctx<'_>, nref: NameRef, value: Value) -> bool {
        let last = ctx.frames.len() - 1;
        if let Some(slot) = nref.slot {
            let slot = &mut ctx.frames[last].slots[slot as usize];
            if slot.is_some() {
                *slot = Some(value);
                return false;
            }
        }
        let program = Rc::clone(&ctx.frames[last].program);
        let name = Rc::clone(&program.atoms[nref.atom as usize]);
        for f in ctx.frames[..last].iter_mut().rev() {
            if let Some(slot) = frame_local_mut(f, &program, nref.atom, &name) {
                *slot = Some(value);
                return false;
            }
        }
        let gid = ctx.frames[last].gids[nref.gid as usize];
        if let Some(j) = &mut self.journal {
            j.note_global(gid, self.store.values[gid as usize].clone());
        }
        if self.store.values[gid as usize].is_none() {
            self.bind_log.push(gid);
        }
        self.store.values[gid as usize] = Some(value);
        true
    }

    /// Whether `nref` currently resolves to the global scope — no bound
    /// local in any active frame shadows it, and a global binding exists.
    fn is_global_binding(&self, ctx: &Ctx<'_>, nref: NameRef) -> bool {
        let frame = ctx.frames.last().expect("active frame");
        if let Some(slot) = nref.slot {
            if frame.slots[slot as usize].is_some() {
                return false;
            }
        }
        let name = &frame.program.atoms[nref.atom as usize];
        for f in ctx.frames[..ctx.frames.len() - 1].iter().rev() {
            if frame_local(f, &frame.program, nref.atom, name).is_some() {
                return false;
            }
        }
        let gid = frame.gids[nref.gid as usize] as usize;
        self.store.values[gid].is_some()
    }

    fn host_call(ctx: &mut Ctx<'_>, name: &str, args: &[Value]) -> Result<Value, RuntimeError> {
        let outcome = ctx.host.call(name, args).map_err(|m| Self::err(ctx, m))?;
        ctx.cycles += outcome.cycles;
        if ctx.trace {
            ctx.tracer.on_event(&TraceEvent::Invoke {
                stmt: ctx.cur_stmt,
                func: name.to_string(),
                args: args.to_vec(),
                ret: outcome.value.clone(),
            });
        }
        Ok(outcome.value)
    }

    fn exec(&mut self, ctx: &mut Ctx<'_>) -> Result<Value, RuntimeError> {
        let base = ctx.stack.len();
        let result = self.exec_ops(ctx, base);
        ctx.stack.truncate(base);
        result
    }

    #[allow(clippy::too_many_lines)]
    fn exec_ops(&mut self, ctx: &mut Ctx<'_>, base: usize) -> Result<Value, RuntimeError> {
        let frame_idx = ctx.frames.len() - 1;
        let program = Rc::clone(&ctx.frames[frame_idx].program);
        let chunk = ctx.frames[frame_idx].chunk as usize;
        let ops: &[Op] = &program.chunks[chunk].ops;
        let mut ip = 0usize;
        // the step/cycle counters stay in registers through the dispatch
        // loop and are flushed to `ctx` only around calls that observe them
        let mut steps = ctx.steps;
        let mut cycles = ctx.cycles;
        loop {
            let Some(op) = ops.get(ip) else {
                ctx.steps = steps;
                ctx.cycles = cycles;
                return Ok(Value::Null);
            };
            ip += 1;
            match op {
                Op::Stmt(id) => {
                    steps += 1;
                    if steps > self.step_limit {
                        return Err(self.budget_err(ctx));
                    }
                    if ctx.profile {
                        // close out the previous statement before moving on
                        ctx.prof_flush(cycles);
                    }
                    cycles += STMT_CYCLES;
                    ctx.cur_stmt = *id;
                    if ctx.trace {
                        ctx.tracer.on_event(&TraceEvent::StmtEnter { stmt: *id });
                    }
                }
                Op::LoopBudget => {
                    steps += 1;
                    if steps > self.step_limit {
                        return Err(self.budget_err(ctx));
                    }
                }
                Op::Charge(n) => {
                    if *n > 0 {
                        steps += u64::from(*n);
                        if steps > self.step_limit {
                            return Err(self.budget_err(ctx));
                        }
                        cycles += 50 * u64::from(*n);
                    }
                }
                Op::Const { value, weight } => {
                    if *weight > 0 {
                        steps += u64::from(*weight);
                        if steps > self.step_limit {
                            return Err(self.budget_err(ctx));
                        }
                        cycles += 50 * u64::from(*weight);
                    }
                    ctx.stack.push(value.clone());
                }
                Op::Load(nref) => {
                    steps += 1;
                    if steps > self.step_limit {
                        return Err(self.budget_err(ctx));
                    }
                    cycles += 50;
                    // bound frame slot is the common case: resolve it inline
                    // and fall back to the full dynamic-scope walk otherwise
                    let slot_hit = nref
                        .slot
                        .and_then(|s| ctx.frames[frame_idx].slots[s as usize].clone());
                    let v = match slot_hit {
                        Some(v) => v,
                        None => self.load_name(ctx, *nref).ok_or_else(|| {
                            let name = &program.atoms[nref.atom as usize];
                            Self::err(ctx, format!("undefined variable '{name}'"))
                        })?,
                    };
                    if ctx.trace {
                        ctx.tracer.on_event(&TraceEvent::Read {
                            stmt: ctx.cur_stmt,
                            var: program.atoms[nref.atom as usize].to_string(),
                            value: v.clone(),
                        });
                    }
                    ctx.stack.push(v);
                }
                Op::Store { stmt, name } => {
                    let v = ctx.stack.pop().expect("store operand");
                    if ctx.trace {
                        ctx.tracer.on_event(&TraceEvent::Write {
                            stmt: *stmt,
                            var: program.atoms[name.atom as usize].to_string(),
                            value: v.clone(),
                        });
                    }
                    let slot_bound = name
                        .slot
                        .is_some_and(|s| ctx.frames[frame_idx].slots[s as usize].is_some());
                    if slot_bound {
                        let s = name.slot.expect("checked above") as usize;
                        ctx.frames[frame_idx].slots[s] = Some(v);
                    } else if self.assign_name(ctx, *name, v) && ctx.trace {
                        ctx.tracer.on_event(&TraceEvent::GlobalWrite {
                            stmt: *stmt,
                            var: program.atoms[name.atom as usize].to_string(),
                        });
                    }
                }
                Op::Declare { stmt, name } => {
                    let v = ctx.stack.pop().expect("declare operand");
                    if ctx.trace {
                        ctx.tracer.on_event(&TraceEvent::Write {
                            stmt: *stmt,
                            var: program.atoms[name.atom as usize].to_string(),
                            value: v.clone(),
                        });
                    }
                    if self.declare_name(ctx, *name, v) && ctx.trace {
                        ctx.tracer.on_event(&TraceEvent::GlobalWrite {
                            stmt: *stmt,
                            var: program.atoms[name.atom as usize].to_string(),
                        });
                    }
                }
                Op::DeclareFn {
                    stmt,
                    name,
                    template,
                    chunk: fn_chunk,
                } => {
                    if ctx.profile {
                        ctx.prof_allocs += 1;
                    }
                    let v = Value::Function(Rc::new(Closure {
                        name: template.name.clone(),
                        params: template.params.clone(),
                        body: template.body.clone(),
                        compiled: Some(CompiledChunk {
                            program: Rc::clone(&program),
                            chunk: *fn_chunk,
                        }),
                    }));
                    if ctx.trace {
                        ctx.tracer.on_event(&TraceEvent::Write {
                            stmt: *stmt,
                            var: program.atoms[name.atom as usize].to_string(),
                            value: Value::Null,
                        });
                    }
                    if self.declare_name(ctx, *name, v) && ctx.trace {
                        ctx.tracer.on_event(&TraceEvent::GlobalWrite {
                            stmt: *stmt,
                            var: program.atoms[name.atom as usize].to_string(),
                        });
                    }
                }
                Op::MakeClosure {
                    template,
                    chunk: fn_chunk,
                } => {
                    steps += 1;
                    if steps > self.step_limit {
                        return Err(self.budget_err(ctx));
                    }
                    cycles += 50;
                    if ctx.profile {
                        ctx.prof_allocs += 1;
                    }
                    ctx.stack.push(Value::Function(Rc::new(Closure {
                        name: template.name.clone(),
                        params: template.params.clone(),
                        body: template.body.clone(),
                        compiled: Some(CompiledChunk {
                            program: Rc::clone(&program),
                            chunk: *fn_chunk,
                        }),
                    })));
                }
                Op::MakeArray(n) => {
                    if ctx.profile {
                        ctx.prof_allocs += 1;
                    }
                    let vals = ctx.stack.split_off(ctx.stack.len() - *n as usize);
                    ctx.stack.push(Value::array(vals));
                }
                Op::MakeObject(keys) => {
                    if ctx.profile {
                        ctx.prof_allocs += 1;
                    }
                    let vals = ctx.stack.split_off(ctx.stack.len() - keys.len());
                    let map: BTreeMap<String, Value> = keys.iter().cloned().zip(vals).collect();
                    ctx.stack.push(Value::Object(Rc::new(RefCell::new(map))));
                }
                Op::GetMember(field) => {
                    let b = ctx.stack.pop().expect("member base");
                    let v = crate::ops::member_get(&b, field).map_err(|m| Self::err(ctx, m))?;
                    ctx.stack.push(v);
                }
                Op::GetIndex => {
                    let idx = ctx.stack.pop().expect("index");
                    let b = ctx.stack.pop().expect("index base");
                    let v = crate::ops::index_get(&b, &idx).map_err(|m| Self::err(ctx, m))?;
                    ctx.stack.push(v);
                }
                Op::SetMember { stmt, field, root } => {
                    let b = ctx.stack.pop().expect("member base");
                    let v = ctx.stack.pop().expect("member value");
                    self.root_write_events(ctx, &program, *stmt, *root, &v);
                    self.journal_container(&b);
                    crate::ops::member_set(&b, field, v).map_err(|m| RuntimeError {
                        stmt: Some(*stmt),
                        message: m,
                    })?;
                }
                Op::SetIndex { stmt, root } => {
                    let idx = ctx.stack.pop().expect("index");
                    let b = ctx.stack.pop().expect("index base");
                    let v = ctx.stack.pop().expect("index value");
                    self.root_write_events(ctx, &program, *stmt, *root, &v);
                    self.journal_container(&b);
                    crate::ops::index_set(&b, &idx, v).map_err(|m| RuntimeError {
                        stmt: Some(*stmt),
                        message: m,
                    })?;
                }
                Op::Binary(op) => {
                    let b = ctx.stack.pop().expect("rhs");
                    let a = ctx.stack.pop().expect("lhs");
                    let v = crate::ops::binary(*op, &a, &b).map_err(|m| Self::err(ctx, m))?;
                    ctx.stack.push(v);
                }
                Op::Unary(op) => {
                    let a = ctx.stack.pop().expect("operand");
                    let v = crate::ops::unary(*op, &a).map_err(|m| Self::err(ctx, m))?;
                    ctx.stack.push(v);
                }
                Op::And(target) => {
                    let keep = !ctx.stack.last().expect("lhs").is_truthy();
                    if keep {
                        ip = *target as usize;
                    } else {
                        ctx.stack.pop();
                    }
                }
                Op::Or(target) => {
                    let keep = ctx.stack.last().expect("lhs").is_truthy();
                    if keep {
                        ip = *target as usize;
                    } else {
                        ctx.stack.pop();
                    }
                }
                Op::Jump(target) => ip = *target as usize,
                Op::JumpIfFalse(target) => {
                    let c = ctx.stack.pop().expect("condition");
                    if !c.is_truthy() {
                        ip = *target as usize;
                    }
                }
                Op::Call { argc } => {
                    let callee = ctx.stack.pop().expect("callee");
                    let split = ctx.stack.len() - *argc as usize;
                    match callee {
                        Value::Function(c) => {
                            let call_site = ctx.cur_stmt;
                            let traced_args = ctx.trace.then(|| {
                                (
                                    c.name.clone().unwrap_or_else(|| "<anonymous>".to_string()),
                                    ctx.stack[split..].to_vec(),
                                )
                            });
                            ctx.steps = steps;
                            ctx.cycles = cycles;
                            let ret = self.call_closure_stack(ctx, &c, split)?;
                            steps = ctx.steps;
                            cycles = ctx.cycles;
                            ctx.cur_stmt = call_site;
                            if let Some((name, args)) = traced_args {
                                ctx.tracer.on_event(&TraceEvent::Invoke {
                                    stmt: call_site,
                                    func: name,
                                    args,
                                    ret: ret.clone(),
                                });
                            }
                            ctx.stack.push(ret);
                        }
                        Value::Native(n) => {
                            let mut args = self.arg_pool.pop().unwrap_or_default();
                            args.extend(ctx.stack.drain(split..));
                            ctx.steps = steps;
                            ctx.cycles = cycles;
                            let v = Self::host_call(ctx, &n, &args)?;
                            steps = ctx.steps;
                            cycles = ctx.cycles;
                            args.clear();
                            self.arg_pool.push(args);
                            ctx.stack.push(v);
                        }
                        other => {
                            return Err(Self::err(ctx, format!("cannot call {other}")));
                        }
                    }
                }
                Op::CallMethod { method, argc, root } => {
                    let b = ctx.stack.pop().expect("method base");
                    let split = ctx.stack.len() - *argc as usize;
                    let mut args = self.arg_pool.pop().unwrap_or_default();
                    args.extend(ctx.stack.drain(split..));
                    ctx.steps = steps;
                    ctx.cycles = cycles;
                    let ret = self.call_method_vm(ctx, &b, method, &mut args)?;
                    steps = ctx.steps;
                    cycles = ctx.cycles;
                    args.clear();
                    self.arg_pool.push(args);
                    if let Some(root) = root {
                        if ctx.trace {
                            ctx.tracer.on_event(&TraceEvent::Write {
                                stmt: ctx.cur_stmt,
                                var: program.atoms[root.atom as usize].to_string(),
                                value: b.clone(),
                            });
                            if self.is_global_binding(ctx, *root) {
                                ctx.tracer.on_event(&TraceEvent::GlobalWrite {
                                    stmt: ctx.cur_stmt,
                                    var: program.atoms[root.atom as usize].to_string(),
                                });
                            }
                        }
                    }
                    ctx.stack.push(ret);
                }
                Op::New { ctor, argc } => {
                    if ctx.profile {
                        ctx.prof_allocs += 1;
                    }
                    let args = ctx.stack.split_off(ctx.stack.len() - *argc as usize);
                    match crate::ops::construct_builtin(ctor, args) {
                        crate::ops::Constructed::Done(v) => ctx.stack.push(v),
                        crate::ops::Constructed::Host(args) => {
                            ctx.steps = steps;
                            ctx.cycles = cycles;
                            let v = Self::host_call(ctx, &format!("new:{ctor}"), &args)?;
                            steps = ctx.steps;
                            cycles = ctx.cycles;
                            ctx.stack.push(v);
                        }
                    }
                }
                Op::Pop => {
                    ctx.stack.pop();
                }
                Op::Return => {
                    let v = ctx.stack.pop().expect("return value");
                    ctx.stack.truncate(base);
                    ctx.steps = steps;
                    ctx.cycles = cycles;
                    return Ok(v);
                }
                Op::ReturnNull => {
                    ctx.stack.truncate(base);
                    ctx.steps = steps;
                    ctx.cycles = cycles;
                    return Ok(Value::Null);
                }
            }
        }
    }

    /// Emit the receiver-root Write/GlobalWrite events of a member/index
    /// assignment (before the mutation, like the interpreter).
    fn root_write_events(
        &self,
        ctx: &mut Ctx<'_>,
        program: &CompiledProgram,
        stmt: StmtId,
        root: Option<NameRef>,
        value: &Value,
    ) {
        if !ctx.trace {
            return;
        }
        let Some(root) = root else { return };
        ctx.tracer.on_event(&TraceEvent::Write {
            stmt,
            var: program.atoms[root.atom as usize].to_string(),
            value: value.clone(),
        });
        if self.is_global_binding(ctx, root) {
            ctx.tracer.on_event(&TraceEvent::GlobalWrite {
                stmt,
                var: program.atoms[root.atom as usize].to_string(),
            });
        }
    }

    /// Bind `name` in the innermost scope; returns `true` for a global
    /// binding (top level).
    fn declare_name(&mut self, ctx: &mut Ctx<'_>, nref: NameRef, value: Value) -> bool {
        let last = ctx.frames.len() - 1;
        if let Some(slot) = nref.slot {
            ctx.frames[last].slots[slot as usize] = Some(value);
            return false;
        }
        let gid = ctx.frames[last].gids[nref.gid as usize];
        if let Some(j) = &mut self.journal {
            j.note_global(gid, self.store.values[gid as usize].clone());
        }
        if self.store.values[gid as usize].is_none() {
            self.bind_log.push(gid);
        }
        self.store.values[gid as usize] = Some(value);
        true
    }

    fn call_method_vm(
        &mut self,
        ctx: &mut Ctx<'_>,
        base: &Value,
        method: &str,
        args: &mut [Value],
    ) -> Result<Value, RuntimeError> {
        match base {
            Value::Native(obj) => {
                // build "obj.method" in a reused buffer instead of a fresh
                // format! allocation per host call
                let mut name = std::mem::take(&mut self.scratch_name);
                name.clear();
                name.push_str(obj);
                name.push('.');
                name.push_str(method);
                let r = Self::host_call(ctx, &name, args);
                self.scratch_name = name;
                r
            }
            Value::Array(items) if matches!(method, "map" | "filter" | "forEach") => {
                let f = if args.is_empty() {
                    Value::Null
                } else {
                    std::mem::take(&mut args[0])
                };
                let snapshot: Vec<Value> = items.borrow().clone();
                let mut out = Vec::new();
                let mut call_args = self.arg_pool.pop().unwrap_or_default();
                for (i, item) in snapshot.into_iter().enumerate() {
                    let r = match &f {
                        Value::Function(c) => {
                            call_args.clear();
                            call_args.push(item.clone());
                            call_args.push(Value::Num(i as f64));
                            self.call_closure_vm(ctx, c, &mut call_args)?
                        }
                        other => {
                            return Err(RuntimeError {
                                stmt: None,
                                message: format!("cannot call non-function value {other}"),
                            })
                        }
                    };
                    match method {
                        "map" => out.push(r),
                        "filter" if r.is_truthy() => out.push(item),
                        _ => {}
                    }
                }
                call_args.clear();
                self.arg_pool.push(call_args);
                if method == "forEach" {
                    Ok(Value::Null)
                } else {
                    Ok(Value::array(out))
                }
            }
            Value::Object(map) => {
                let f = map.borrow().get(method).cloned();
                match f {
                    Some(Value::Function(c)) => {
                        let call_site = ctx.cur_stmt;
                        let traced_args = ctx.trace.then(|| args.to_vec());
                        let ret = self.call_closure_vm(ctx, &c, args)?;
                        ctx.cur_stmt = call_site;
                        if let Some(args) = traced_args {
                            ctx.tracer.on_event(&TraceEvent::Invoke {
                                stmt: call_site,
                                func: method.to_string(),
                                args,
                                ret: ret.clone(),
                            });
                        }
                        Ok(ret)
                    }
                    _ => Err(Self::err(ctx, format!("object has no method '{method}'"))),
                }
            }
            base => {
                if matches!(base, Value::Array(_)) && matches!(method, "push" | "pop") {
                    self.journal_container(base);
                }
                crate::ops::simple_method(base, method, args)
                    .expect("non-engine method dispatch is simple")
                    .map_err(|m| Self::err(ctx, m))
            }
        }
    }
}

/// The bound local named `name` in frame `f`, if any. When the frame runs
/// the same program as the prober, locals are matched by atom id (integer
/// compares); the string comparison is only needed across programs.
fn frame_local<'f>(
    f: &'f Frame,
    program: &Rc<CompiledProgram>,
    atom: u32,
    name: &str,
) -> Option<&'f Value> {
    let chunk = &f.program.chunks[f.chunk as usize];
    if Rc::ptr_eq(&f.program, program) {
        for (i, &a) in chunk.locals.iter().enumerate() {
            if a == atom {
                return f.slots[i].as_ref();
            }
        }
        return None;
    }
    for (i, &a) in chunk.locals.iter().enumerate() {
        if &*f.program.atoms[a as usize] == name {
            return f.slots[i].as_ref();
        }
    }
    None
}

fn frame_local_mut<'f>(
    f: &'f mut Frame,
    program: &Rc<CompiledProgram>,
    atom: u32,
    name: &str,
) -> Option<&'f mut Option<Value>> {
    let chunk = &f.program.chunks[f.chunk as usize];
    let same = Rc::ptr_eq(&f.program, program);
    for (i, &a) in chunk.locals.iter().enumerate() {
        let hit = if same {
            a == atom
        } else {
            &*f.program.atoms[a as usize] == name
        };
        if hit && f.slots[i].is_some() {
            return Some(&mut f.slots[i]);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::compile;
    use crate::instrument::NoopInstrument;
    use crate::interp::EmptyHost;
    use crate::parser::parse;

    fn run_vm(src: &str) -> (Vm, u64) {
        let prog = Rc::new(compile(&parse(src).unwrap()));
        let mut host = EmptyHost;
        let mut vm = Vm::new(prog, &host.native_names());
        let cycles = vm.run_top(&mut host, &mut NoopInstrument).unwrap();
        (vm, cycles)
    }

    #[test]
    fn arithmetic_and_globals() {
        let (vm, _) = run_vm("var x = 2 + 3 * 4; var y = x % 5;");
        assert_eq!(vm.get_global("x"), Some(Value::Num(14.0)));
        assert_eq!(vm.get_global("y"), Some(Value::Num(4.0)));
    }

    #[test]
    fn functions_and_loops() {
        let (vm, _) = run_vm(
            "function sq(n) { return n * n; }
             var s = 0;
             for (var i = 1; i <= 4; i = i + 1) { s = s + sq(i); }",
        );
        assert_eq!(vm.get_global("s"), Some(Value::Num(30.0)));
    }

    #[test]
    fn dynamic_scope_fallback() {
        // g reads its caller's local, which only dynamic scoping allows
        let (vm, _) = run_vm(
            "function g() { return y + 1; }
             function f() { var y = 5; return g(); }
             var r = f();",
        );
        assert_eq!(vm.get_global("r"), Some(Value::Num(6.0)));
    }

    /// Records the profiling hook stream, checking cost conservation and
    /// frame balance.
    #[derive(Default)]
    struct CostRecorder {
        cycles: u64,
        allocs: u64,
        pushes: Vec<Option<String>>,
        depth: i64,
    }

    impl crate::instrument::Instrument for CostRecorder {
        fn on_event(&mut self, _event: &crate::instrument::TraceEvent) {}

        fn wants_events(&self) -> bool {
            false
        }

        fn wants_profile(&self) -> bool {
            true
        }

        fn on_stmt_cost(&mut self, _stmt: StmtId, cycles: u64, allocs: u64) {
            self.cycles += cycles;
            self.allocs += allocs;
        }

        fn on_frame_push(&mut self, name: Option<&str>) {
            self.pushes.push(name.map(str::to_string));
            self.depth += 1;
        }

        fn on_frame_pop(&mut self) {
            self.depth -= 1;
        }
    }

    #[test]
    fn profile_hooks_conserve_cycles_and_balance_frames() {
        let prog = Rc::new(compile(
            &parse(
                "function sq(n) { var a = [n, n]; return a[0] * a[1]; }
                 var obj = { t: 0 };
                 var s = 0;
                 for (var i = 1; i <= 4; i = i + 1) { s = s + sq(i); }",
            )
            .unwrap(),
        ));
        let mut host = EmptyHost;
        let mut vm = Vm::new(Rc::clone(&prog), &host.native_names());
        let mut rec = CostRecorder::default();
        let cycles = vm.run_top(&mut host, &mut rec).unwrap();
        assert_eq!(
            rec.cycles, cycles,
            "every cycle is attributed to a statement"
        );
        assert!(
            rec.allocs >= 5,
            "array + object literals counted: {}",
            rec.allocs
        );
        assert_eq!(rec.depth, 0, "frame pushes and pops balance");
        assert_eq!(rec.pushes.len(), 4, "one frame per sq() call");
        assert!(rec.pushes.iter().all(|n| n.as_deref() == Some("sq")));

        // profiling must not perturb execution: same cycles as unprofiled
        let mut vm2 = Vm::new(prog, &host.native_names());
        let baseline = vm2.run_top(&mut host, &mut NoopInstrument).unwrap();
        assert_eq!(cycles, baseline);
        assert_eq!(vm.get_global("s"), vm2.get_global("s"));
    }

    #[test]
    fn step_budget_enforced() {
        let prog = Rc::new(compile(&parse("while (true) { var x = 1; }").unwrap()));
        let mut host = EmptyHost;
        let mut vm = Vm::new(prog, &[]);
        vm.set_step_limit(10_000);
        let err = vm.run_top(&mut host, &mut NoopInstrument).unwrap_err();
        assert!(err.message.contains("step budget"));
    }

    #[test]
    fn checkpoint_rollback_restores_captured_state() {
        let (mut vm, _) = run_vm(
            "var counter = { n: 0 };
             var tag = 'a';
             function mutate() { counter.n = 99; tag = 'b'; fresh = 1; }",
        );
        let mut host = EmptyHost;
        vm.begin_checkpoint();
        let handler = vm.get_global("mutate").unwrap();
        vm.call_value(&handler, vec![], &mut host, &mut NoopInstrument)
            .unwrap();
        assert_eq!(vm.get_global("tag"), Some(Value::str("b")));
        vm.rollback_checkpoint();
        // captured container contents and bindings come back …
        let counter = vm.get_global("counter").unwrap();
        assert_eq!(
            crate::ops::member_get(&counter, "n").unwrap(),
            Value::Num(0.0)
        );
        assert_eq!(vm.get_global("tag"), Some(Value::str("a")));
        // … but globals created during the run persist (merge semantics,
        // matching the interpreter's snapshot/restore)
        assert_eq!(vm.get_global("fresh"), Some(Value::Num(1.0)));

        // the journal stays armed for the next run
        vm.call_value(&handler, vec![], &mut host, &mut NoopInstrument)
            .unwrap();
        vm.rollback_checkpoint();
        assert_eq!(vm.get_global("tag"), Some(Value::str("a")));
        vm.end_checkpoint();
    }

    #[test]
    fn newly_bound_detects_created_globals() {
        let (mut vm, _) = run_vm("var a = 1;");
        let mask = vm.bound_mask();
        vm.set_global("b", Value::Num(2.0));
        assert_eq!(vm.newly_bound(&mask), vec!["b".to_string()]);
    }

    /// Compile-time pin of the Send frontier (see the module docs): the
    /// seed data a worker thread builds its VM from must be `Send + Sync`;
    /// the VM itself stays thread-owned on purpose.
    #[test]
    fn sendable_seed_frontier() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<crate::ast::Program>();
        assert_send_sync::<crate::ast::Stmt>();
        assert_send_sync::<crate::ast::Expr>();
    }
}
