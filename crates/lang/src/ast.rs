//! Abstract syntax tree for NodeScript programs.
//!
//! Every statement carries a unique [`StmtId`] (assigned in parse order) and
//! the source line it came from. Statement identities are the currency of
//! EdgStr's dynamic analysis: runtime traces, datalog facts, and slices all
//! refer to statements by id.

use std::fmt;

/// Unique identifier of a statement within a [`Program`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct StmtId(pub u32);

impl fmt::Display for StmtId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    Eq,
    NotEq,
    Lt,
    Le,
    Gt,
    Ge,
    And,
    Or,
}

impl BinOp {
    /// The NodeScript surface syntax for this operator.
    pub fn symbol(self) -> &'static str {
        match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Rem => "%",
            BinOp::Eq => "==",
            BinOp::NotEq => "!=",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::And => "&&",
            BinOp::Or => "||",
        }
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnOp {
    Neg,
    Not,
}

/// An expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Var(String),
    Array(Vec<Expr>),
    Object(Vec<(String, Expr)>),
    Binary(BinOp, Box<Expr>, Box<Expr>),
    Unary(UnOp, Box<Expr>),
    /// `callee(args...)`; the callee may be a variable, member access
    /// (method call) or any expression evaluating to a function.
    Call {
        callee: Box<Expr>,
        args: Vec<Expr>,
    },
    /// `new Ctor(args...)` — treated as a call with constructor semantics.
    New {
        ctor: String,
        args: Vec<Expr>,
    },
    Member(Box<Expr>, String),
    Index(Box<Expr>, Box<Expr>),
    /// Anonymous `function (params) { body }` expression (closure).
    Function {
        params: Vec<String>,
        body: Vec<Stmt>,
    },
}

impl Expr {
    /// Whether the expression is "simple" — a literal or bare variable —
    /// for the purpose of the normalization pass.
    pub fn is_simple(&self) -> bool {
        matches!(
            self,
            Expr::Null | Expr::Bool(_) | Expr::Num(_) | Expr::Str(_) | Expr::Var(_)
        )
    }

    /// Visit every statement nested inside this expression (function
    /// expression bodies), recursively.
    pub fn visit_stmts<'a>(&'a self, f: &mut dyn FnMut(&'a Stmt)) {
        match self {
            Expr::Null | Expr::Bool(_) | Expr::Num(_) | Expr::Str(_) | Expr::Var(_) => {}
            Expr::Array(items) => {
                for e in items {
                    e.visit_stmts(f);
                }
            }
            Expr::Object(fields) => {
                for (_, e) in fields {
                    e.visit_stmts(f);
                }
            }
            Expr::Binary(_, a, b) => {
                a.visit_stmts(f);
                b.visit_stmts(f);
            }
            Expr::Unary(_, a) => a.visit_stmts(f),
            Expr::Call { callee, args } => {
                callee.visit_stmts(f);
                for a in args {
                    a.visit_stmts(f);
                }
            }
            Expr::New { args, .. } => {
                for a in args {
                    a.visit_stmts(f);
                }
            }
            Expr::Member(base, _) => base.visit_stmts(f),
            Expr::Index(base, idx) => {
                base.visit_stmts(f);
                idx.visit_stmts(f);
            }
            Expr::Function { body, .. } => {
                for s in body {
                    s.visit(f);
                }
            }
        }
    }

    /// Collect the names of all variables read by this expression
    /// (including within nested function bodies' free variables, which is a
    /// conservative over-approximation suitable for slicing).
    pub fn read_vars(&self, out: &mut Vec<String>) {
        match self {
            Expr::Null | Expr::Bool(_) | Expr::Num(_) | Expr::Str(_) => {}
            Expr::Var(v) => out.push(v.clone()),
            Expr::Array(items) => {
                for i in items {
                    i.read_vars(out);
                }
            }
            Expr::Object(fields) => {
                for (_, v) in fields {
                    v.read_vars(out);
                }
            }
            Expr::Binary(_, a, b) => {
                a.read_vars(out);
                b.read_vars(out);
            }
            Expr::Unary(_, a) => a.read_vars(out),
            Expr::Call { callee, args } => {
                callee.read_vars(out);
                for a in args {
                    a.read_vars(out);
                }
            }
            Expr::New { args, .. } => {
                for a in args {
                    a.read_vars(out);
                }
            }
            Expr::Member(base, _) => base.read_vars(out),
            Expr::Index(base, idx) => {
                base.read_vars(out);
                idx.read_vars(out);
            }
            Expr::Function { body, .. } => {
                for s in body {
                    s.read_vars(out);
                }
            }
        }
    }
}

/// The target of an assignment.
#[derive(Debug, Clone, PartialEq)]
pub enum LValue {
    Var(String),
    Member(Box<Expr>, String),
    Index(Box<Expr>, Box<Expr>),
}

impl LValue {
    /// The root variable being written through this lvalue, if any.
    pub fn root_var(&self) -> Option<&str> {
        fn expr_root(e: &Expr) -> Option<&str> {
            match e {
                Expr::Var(v) => Some(v),
                Expr::Member(base, _) => expr_root(base),
                Expr::Index(base, _) => expr_root(base),
                _ => None,
            }
        }
        match self {
            LValue::Var(v) => Some(v),
            LValue::Member(base, _) => expr_root(base),
            LValue::Index(base, _) => expr_root(base),
        }
    }
}

/// A statement. Each variant's first fields are its [`StmtId`] and source
/// line.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// `var name = init;`
    Let {
        id: StmtId,
        line: u32,
        name: String,
        init: Option<Expr>,
    },
    /// `target = value;`
    Assign {
        id: StmtId,
        line: u32,
        target: LValue,
        value: Expr,
    },
    /// Bare expression statement, e.g. a call.
    Expr { id: StmtId, line: u32, expr: Expr },
    If {
        id: StmtId,
        line: u32,
        cond: Expr,
        then_block: Vec<Stmt>,
        else_block: Vec<Stmt>,
    },
    While {
        id: StmtId,
        line: u32,
        cond: Expr,
        body: Vec<Stmt>,
    },
    /// Classic `for (init; cond; update) { body }` loop.
    For {
        id: StmtId,
        line: u32,
        init: Box<Stmt>,
        cond: Expr,
        update: Box<Stmt>,
        body: Vec<Stmt>,
    },
    Return {
        id: StmtId,
        line: u32,
        value: Option<Expr>,
    },
    /// Named `function name(params) { body }` declaration.
    Function {
        id: StmtId,
        line: u32,
        name: String,
        params: Vec<String>,
        body: Vec<Stmt>,
    },
}

impl Stmt {
    /// This statement's unique id.
    pub fn id(&self) -> StmtId {
        match self {
            Stmt::Let { id, .. }
            | Stmt::Assign { id, .. }
            | Stmt::Expr { id, .. }
            | Stmt::If { id, .. }
            | Stmt::While { id, .. }
            | Stmt::For { id, .. }
            | Stmt::Return { id, .. }
            | Stmt::Function { id, .. } => *id,
        }
    }

    /// The 1-based source line this statement starts on.
    pub fn line(&self) -> u32 {
        match self {
            Stmt::Let { line, .. }
            | Stmt::Assign { line, .. }
            | Stmt::Expr { line, .. }
            | Stmt::If { line, .. }
            | Stmt::While { line, .. }
            | Stmt::For { line, .. }
            | Stmt::Return { line, .. }
            | Stmt::Function { line, .. } => *line,
        }
    }

    /// Variables this statement reads at its own level (conservative).
    pub fn read_vars(&self, out: &mut Vec<String>) {
        match self {
            Stmt::Let { init, .. } => {
                if let Some(e) = init {
                    e.read_vars(out);
                }
            }
            Stmt::Assign { target, value, .. } => {
                value.read_vars(out);
                // member/index writes also read the base object
                match target {
                    LValue::Var(_) => {}
                    LValue::Member(base, _) => base.read_vars(out),
                    LValue::Index(base, idx) => {
                        base.read_vars(out);
                        idx.read_vars(out);
                    }
                }
            }
            Stmt::Expr { expr, .. } => expr.read_vars(out),
            Stmt::If { cond, .. } => cond.read_vars(out),
            Stmt::While { cond, .. } => cond.read_vars(out),
            Stmt::For { cond, .. } => cond.read_vars(out),
            Stmt::Return { value, .. } => {
                if let Some(e) = value {
                    e.read_vars(out);
                }
            }
            Stmt::Function { .. } => {}
        }
    }

    /// The variable this statement writes at its own level, if any.
    pub fn written_var(&self) -> Option<String> {
        match self {
            Stmt::Let { name, .. } => Some(name.clone()),
            Stmt::Assign { target, .. } => target.root_var().map(|s| s.to_string()),
            Stmt::Function { name, .. } => Some(name.clone()),
            _ => None,
        }
    }

    /// Visit this statement and all nested statements (pre-order),
    /// including statements inside function-expression bodies (e.g. route
    /// handlers registered with `app.get(path, function (req, res) {…})`).
    pub fn visit<'a>(&'a self, f: &mut dyn FnMut(&'a Stmt)) {
        f(self);
        match self {
            Stmt::If {
                cond,
                then_block,
                else_block,
                ..
            } => {
                cond.visit_stmts(f);
                for s in then_block.iter().chain(else_block.iter()) {
                    s.visit(f);
                }
            }
            Stmt::While { cond, body, .. } => {
                cond.visit_stmts(f);
                for s in body {
                    s.visit(f);
                }
            }
            Stmt::For {
                init,
                cond,
                update,
                body,
                ..
            } => {
                init.visit(f);
                cond.visit_stmts(f);
                update.visit(f);
                for s in body {
                    s.visit(f);
                }
            }
            Stmt::Function { body, .. } => {
                for s in body {
                    s.visit(f);
                }
            }
            Stmt::Let { init, .. } => {
                if let Some(e) = init {
                    e.visit_stmts(f);
                }
            }
            Stmt::Assign { target, value, .. } => {
                match target {
                    LValue::Var(_) => {}
                    LValue::Member(base, _) => base.visit_stmts(f),
                    LValue::Index(base, idx) => {
                        base.visit_stmts(f);
                        idx.visit_stmts(f);
                    }
                }
                value.visit_stmts(f);
            }
            Stmt::Expr { expr, .. } => expr.visit_stmts(f),
            Stmt::Return { value, .. } => {
                if let Some(e) = value {
                    e.visit_stmts(f);
                }
            }
        }
    }
}

/// A parsed NodeScript program: a sequence of top-level statements.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Program {
    pub stmts: Vec<Stmt>,
    /// Total number of statement ids allocated (ids are `0..stmt_count`).
    pub stmt_count: u32,
}

impl Program {
    /// Iterate over every statement in the program, including nested ones.
    pub fn all_stmts(&self) -> Vec<&Stmt> {
        let mut out = Vec::new();
        for s in &self.stmts {
            s.visit(&mut |st| out.push(st));
        }
        out
    }

    /// Find a statement by id anywhere in the program.
    pub fn find(&self, id: StmtId) -> Option<&Stmt> {
        self.all_stmts().into_iter().find(|s| s.id() == id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lvalue_root_var_traverses_members() {
        let lv = LValue::Member(
            Box::new(Expr::Index(
                Box::new(Expr::Var("rows".into())),
                Box::new(Expr::Num(0.0)),
            )),
            "name".into(),
        );
        assert_eq!(lv.root_var(), Some("rows"));
    }

    #[test]
    fn expr_read_vars_collects_nested() {
        let e = Expr::Binary(
            BinOp::Add,
            Box::new(Expr::Var("a".into())),
            Box::new(Expr::Call {
                callee: Box::new(Expr::Var("f".into())),
                args: vec![Expr::Var("b".into())],
            }),
        );
        let mut vars = Vec::new();
        e.read_vars(&mut vars);
        assert_eq!(vars, vec!["a", "f", "b"]);
    }

    #[test]
    fn stmt_written_var() {
        let s = Stmt::Let {
            id: StmtId(0),
            line: 1,
            name: "x".into(),
            init: None,
        };
        assert_eq!(s.written_var().as_deref(), Some("x"));
    }

    #[test]
    fn is_simple_classification() {
        assert!(Expr::Num(1.0).is_simple());
        assert!(Expr::Var("x".into()).is_simple());
        assert!(!Expr::Array(vec![]).is_simple());
    }
}
