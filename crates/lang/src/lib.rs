//! # edgstr-lang — NodeScript, a Node.js-like mini language
//!
//! EdgStr (ICDCS 2024) analyzes and transforms Node.js cloud services. This
//! crate provides the equivalent executable substrate for the Rust
//! reproduction: **NodeScript**, a small JavaScript-like language with
//!
//! - a lexer/parser ([`parse`]) and pretty-printer ([`print_program`]);
//! - a tree-walking interpreter ([`Interpreter`]) whose *native object*
//!   calls (`app`, `db`, `fs`, `res`, …) dispatch to an embedder-supplied
//!   [`Host`] — the hook EdgStr uses to intercept SQL commands, file
//!   accesses, and HTTP responses;
//! - Jalangi-style dynamic instrumentation ([`Instrument`], [`TraceEvent`])
//!   reporting every statement entry, variable read/write, and function
//!   invocation;
//! - the temp-var normalization pass ([`normalize()`]) of §III-E that makes
//!   marshal/unmarshal points visible to the read/write log;
//! - virtual CPU-cycle accounting ([`Interpreter::cycles`]) that drives the
//!   device performance models in `edgstr-sim`.
//!
//! ## Example
//!
//! ```
//! use edgstr_lang::{parse, Interpreter, EmptyHost, NoopInstrument, Value};
//!
//! let prog = parse("function sq(n) { return n * n; } var r = sq(6);").unwrap();
//! let mut host = EmptyHost;
//! let mut interp = Interpreter::new(&mut host);
//! interp.run_program(&prog, &mut NoopInstrument).unwrap();
//! assert_eq!(interp.globals()["r"], Value::Num(36.0));
//! ```

pub mod ast;
pub mod compile;
pub mod instrument;
pub mod interp;
pub mod normalize;
pub mod ops;
pub mod parser;
pub mod printer;
pub mod token;
pub mod value;
pub mod vm;

pub use ast::{BinOp, Expr, LValue, Program, Stmt, StmtId, UnOp};
pub use compile::{compile, CompiledChunk, CompiledProgram};
pub use instrument::{Instrument, NoopInstrument, RecordingInstrument, TraceEvent};
pub use interp::{EmptyHost, Host, HostOutcome, Interpreter, RuntimeError, STMT_CYCLES};
pub use normalize::{normalize, renumber};
pub use parser::{parse, ParseError};
pub use printer::{print_expr, print_program, print_stmts};
pub use value::{fnv1a, Atom, Closure, Value};
pub use vm::Vm;
