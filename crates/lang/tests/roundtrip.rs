//! Property tests: the printer and parser are mutual inverses over
//! generated ASTs, and the interpreter is deterministic.

use edgstr_lang::{
    normalize, parse, print_program, renumber, BinOp, EmptyHost, Expr, Interpreter, LValue,
    NoopInstrument, Stmt, StmtId, UnOp,
};
use proptest::prelude::*;

fn ident() -> impl Strategy<Value = String> {
    "[a-z][a-z0-9_]{0,6}".prop_filter("not a keyword", |s| {
        !matches!(
            s.as_str(),
            "var"
                | "let"
                | "const"
                | "function"
                | "if"
                | "else"
                | "while"
                | "for"
                | "return"
                | "true"
                | "false"
                | "null"
                | "undefined"
                | "new"
        )
    })
}

fn literal() -> impl Strategy<Value = Expr> {
    prop_oneof![
        Just(Expr::Null),
        any::<bool>().prop_map(Expr::Bool),
        // printable, re-parseable numbers
        (0u32..100_000).prop_map(|n| Expr::Num(f64::from(n))),
        (0u32..1000, 1u32..100).prop_map(|(a, b)| Expr::Num(f64::from(a) + f64::from(b) / 128.0)),
        "[ -~&&[^\"\\\\']]{0,12}".prop_map(Expr::Str),
    ]
}

fn expr(depth: u32) -> BoxedStrategy<Expr> {
    if depth == 0 {
        prop_oneof![literal(), ident().prop_map(Expr::Var)].boxed()
    } else {
        let inner = expr(depth - 1);
        prop_oneof![
            literal(),
            ident().prop_map(Expr::Var),
            (inner.clone(), inner.clone(), binop()).prop_map(|(a, b, op)| Expr::Binary(
                op,
                Box::new(a),
                Box::new(b)
            )),
            (inner.clone(), prop_oneof![Just(UnOp::Neg), Just(UnOp::Not)])
                .prop_map(|(a, op)| Expr::Unary(op, Box::new(a))),
            prop::collection::vec(inner.clone(), 0..3).prop_map(Expr::Array),
            prop::collection::vec((ident(), inner.clone()), 0..3).prop_map(|fields| {
                // object keys must be unique for stable round-trips
                let mut seen = std::collections::BTreeSet::new();
                Expr::Object(
                    fields
                        .into_iter()
                        .filter(|(k, _)| seen.insert(k.clone()))
                        .collect(),
                )
            }),
            (ident(), prop::collection::vec(inner.clone(), 0..3)).prop_map(|(f, args)| {
                Expr::Call {
                    callee: Box::new(Expr::Var(f)),
                    args,
                }
            }),
            (inner.clone(), ident()).prop_map(|(b, f)| Expr::Member(Box::new(b), f)),
            (inner.clone(), inner).prop_map(|(b, i)| Expr::Index(Box::new(b), Box::new(i))),
        ]
        .boxed()
    }
}

fn binop() -> impl Strategy<Value = BinOp> {
    prop_oneof![
        Just(BinOp::Add),
        Just(BinOp::Sub),
        Just(BinOp::Mul),
        Just(BinOp::Div),
        Just(BinOp::Eq),
        Just(BinOp::Lt),
        Just(BinOp::Ge),
        Just(BinOp::And),
        Just(BinOp::Or),
    ]
}

fn stmt(depth: u32) -> BoxedStrategy<Stmt> {
    let e = || expr(2);
    let leaf = prop_oneof![
        (ident(), proptest::option::of(e())).prop_map(|(name, init)| Stmt::Let {
            id: StmtId(0),
            line: 1,
            name,
            init
        }),
        (ident(), e()).prop_map(|(v, value)| Stmt::Assign {
            id: StmtId(0),
            line: 1,
            target: LValue::Var(v),
            value
        }),
        e().prop_map(|expr| Stmt::Expr {
            id: StmtId(0),
            line: 1,
            expr
        }),
        proptest::option::of(e()).prop_map(|value| Stmt::Return {
            id: StmtId(0),
            line: 1,
            value
        }),
    ];
    if depth == 0 {
        leaf.boxed()
    } else {
        let inner = stmt(depth - 1);
        prop_oneof![
            leaf,
            (
                e(),
                prop::collection::vec(inner.clone(), 0..3),
                prop::collection::vec(inner.clone(), 0..2)
            )
                .prop_map(|(cond, then_block, else_block)| Stmt::If {
                    id: StmtId(0),
                    line: 1,
                    cond,
                    then_block,
                    else_block
                }),
            (e(), prop::collection::vec(inner.clone(), 0..3)).prop_map(|(cond, body)| {
                Stmt::While {
                    id: StmtId(0),
                    line: 1,
                    cond,
                    body,
                }
            }),
            (
                ident(),
                prop::collection::vec(ident(), 0..3),
                prop::collection::vec(inner, 0..3)
            )
                .prop_map(|(name, params, body)| {
                    let mut seen = std::collections::BTreeSet::new();
                    Stmt::Function {
                        id: StmtId(0),
                        line: 1,
                        name,
                        params: params
                            .into_iter()
                            .filter(|p| seen.insert(p.clone()))
                            .collect(),
                        body,
                    }
                }),
        ]
        .boxed()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// print ∘ parse is idempotent: parsing printed output and printing
    /// again yields identical text.
    #[test]
    fn print_parse_round_trip(stmts in prop::collection::vec(stmt(2), 1..6)) {
        let program = renumber(stmts);
        let printed = print_program(&program);
        let reparsed = parse(&printed)
            .unwrap_or_else(|e| panic!("printed program must reparse: {e}\n{printed}"));
        let reprinted = print_program(&reparsed);
        prop_assert_eq!(printed, reprinted);
    }

    /// Normalized programs still reparse, and normalization is idempotent
    /// up to temp-variable naming.
    #[test]
    fn normalize_output_reparses(stmts in prop::collection::vec(stmt(2), 1..5)) {
        let program = renumber(stmts);
        let normalized = normalize(&program);
        let printed = print_program(&normalized);
        parse(&printed)
            .unwrap_or_else(|e| panic!("normalized program must reparse: {e}\n{printed}"));
        // every statement id is unique after normalization
        let all = normalized.all_stmts();
        let ids: std::collections::BTreeSet<_> = all.iter().map(|s| s.id()).collect();
        prop_assert_eq!(ids.len(), all.len());
    }

    /// The interpreter is deterministic: two runs of the same program over
    /// the same host produce identical globals.
    #[test]
    fn interpretation_is_deterministic(stmts in prop::collection::vec(stmt(1), 1..5)) {
        let program = renumber(stmts);
        let run = || {
            let mut host = EmptyHost;
            let mut interp = Interpreter::new(&mut host);
            let result = interp.run_program(&program, &mut NoopInstrument);
            (result.is_ok(), format!("{:?}", interp.globals()))
        };
        let a = run();
        let b = run();
        prop_assert_eq!(a, b);
    }
}
