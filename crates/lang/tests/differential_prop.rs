//! Differential tests: the compiled VM and the tree-walking interpreter
//! must be observationally identical — same results, same error messages,
//! same globals, same virtual-cycle totals, same trace-event streams.
//!
//! A deterministic corpus covers every language feature and error path;
//! a property test then runs randomly generated programs (with shrinking)
//! through both engines.

use edgstr_lang::{
    compile, parse, renumber, BinOp, EmptyHost, Expr, Host, Interpreter, LValue, Program,
    RecordingInstrument, Stmt, StmtId, TraceEvent, UnOp, Value, Vm,
};
use proptest::prelude::*;
use std::collections::BTreeMap;
use std::rc::Rc;

const STEP_LIMIT: u64 = 200_000;

/// Everything observable about one engine run.
#[derive(Debug, Clone, PartialEq)]
struct Observation {
    outcome: Result<(), String>,
    cycles: Option<u64>,
    globals: Vec<(String, String)>,
    events: Vec<String>,
}

/// A comparable fingerprint of a trace event. Values go through
/// `to_json` so reference identity (which legitimately differs between
/// engines) does not leak into the comparison.
fn fingerprint(e: &TraceEvent) -> String {
    match e {
        TraceEvent::StmtEnter { stmt } => format!("S {stmt}"),
        TraceEvent::Read { stmt, var, value } => {
            format!("R {stmt} {var} {}", value.to_json())
        }
        TraceEvent::Write { stmt, var, value } => {
            format!("W {stmt} {var} {}", value.to_json())
        }
        TraceEvent::Invoke {
            stmt,
            func,
            args,
            ret,
        } => {
            let args: Vec<String> = args.iter().map(|a| a.to_json().to_string()).collect();
            format!("I {stmt} {func}({}) -> {}", args.join(","), ret.to_json())
        }
        TraceEvent::GlobalWrite { stmt, var } => format!("G {stmt} {var}"),
        TraceEvent::FunctionEnter { decl, call_site } => format!("F {decl} {call_site}"),
    }
}

fn globals_fingerprint(globals: &BTreeMap<String, Value>) -> Vec<(String, String)> {
    globals
        .iter()
        .map(|(k, v)| (k.clone(), v.to_json().to_string()))
        .collect()
}

fn run_tree(program: &Program) -> Observation {
    let mut host = EmptyHost;
    let mut interp = Interpreter::new(&mut host);
    interp.set_step_limit(STEP_LIMIT);
    let mut rec = RecordingInstrument::new();
    let outcome = interp.run_program(program, &mut rec);
    Observation {
        cycles: outcome.is_ok().then(|| interp.cycles()),
        outcome: outcome.map_err(|e| e.to_string()),
        globals: globals_fingerprint(interp.globals()),
        events: rec.events.iter().map(fingerprint).collect(),
    }
}

fn run_vm(program: &Program) -> Observation {
    let mut host = EmptyHost;
    let compiled = Rc::new(compile(program));
    let mut vm = Vm::new(compiled, &host.native_names());
    vm.set_step_limit(STEP_LIMIT);
    let mut rec = RecordingInstrument::new();
    let outcome = vm.run_top(&mut host, &mut rec);
    Observation {
        cycles: outcome.as_ref().ok().copied(),
        outcome: outcome.map(|_| ()).map_err(|e| e.to_string()),
        globals: globals_fingerprint(&vm.globals_map()),
        events: rec.events.iter().map(fingerprint).collect(),
    }
}

fn assert_agree(src: &str) {
    let program = parse(src).unwrap_or_else(|e| panic!("parse failure: {e}\n{src}"));
    let tree = run_tree(&program);
    let vm = run_vm(&program);
    assert_eq!(tree, vm, "engines diverge on:\n{src}");
}

#[test]
fn corpus_arithmetic_and_strings() {
    for src in [
        "var x = 2 + 3 * 4 - 1; var y = x / 3; var z = x % 5;",
        "var s = 'a' + 1 + 'b' + true + null;",
        "var a = 'x' < 'y'; var b = 3 >= 3; var c = 1 != 2; var d = 'q' == 'q';",
        "var n = -5; var m = !0; var k = !'text';",
        "var big = 1e14 + 0.5;",
    ] {
        assert_agree(src);
    }
}

#[test]
fn corpus_control_flow() {
    for src in [
        "var s = 0; var i = 1; while (i <= 10) { s = s + i; i = i + 1; }",
        "var s = 0; for (var i = 0; i < 7; i = i + 1) { if (i % 2 == 0) { s = s + i; } else { s = s - 1; } }",
        "var r = 0; if (1 < 2) { r = 1; }",
        "function f(n) { if (n <= 1) { return 1; } return n * f(n - 1); } var x = f(6);",
        "var hit = false || true; var miss = false && nope;",
        "var v = null || 'fallback'; var w = 'first' || nope;",
    ] {
        assert_agree(src);
    }
}

#[test]
fn corpus_functions_and_scoping() {
    for src in [
        "function sq(n) { return n * n; } var r = sq(7) + sq(2);",
        "var f = function (x, y) { return x + y; }; var r = f(1, 2); var partial = f(1);",
        // dynamic scoping: callee reads caller's local
        "function g() { return y * 2; } function f() { var y = 21; return g(); } var r = f();",
        // assignment without declaration creates a global from inside a call
        "function f() { leaked = 9; var kept = 1; return kept; } var r = f(); var l = leaked;",
        // local declared after use site falls through to global first
        "var x = 'global'; function f() { var seen = x; var x = 'local'; return seen + ':' + x; } var r = f();",
        // duplicate parameter names: last binding wins
        "function f(a, a) { return a; } var r = f(1, 2);",
        "function outer() { var acc = 0; function inner(k) { acc = acc + k; } inner(2); inner(3); return acc; } var r = outer();",
    ] {
        assert_agree(src);
    }
}

#[test]
fn corpus_objects_arrays_methods() {
    for src in [
        "var o = { a: [1, 2], b: 'x' }; o.a.push(3); o.c = o.a.length; o['d'] = o.b + '!';",
        "var a = [1, 2, 3, 4]; var d = a.map(function (x) { return x * 2; }); var e = a.filter(function (x) { return x % 2 == 0; }); var j = d.join('-');",
        "var a = [5, 6]; var p = a.pop(); var n = a.push(7, 8); var i = a.indexOf(7); var s = a.slice(0, 2);",
        "var t = ' Hello World '; var u = t.trim().toUpperCase(); var parts = t.trim().split(' '); var c = t.charCodeAt(1); var sub = t.substring(1, 6);",
        "var o = { greet: function (who) { return 'hi ' + who; } }; var r = o.greet('x');",
        "var counts = {}; counts['k'] = (counts['k'] || 0) + 1; counts['k'] = (counts['k'] || 0) + 1;",
        "var b = new Uint8Array([65, 66, 67]); var s = b.toString(); var mid = b.slice(1, 3); var len = b.length; var first = b[0];",
        "var arr = new Array(1, 2); var obj = new Object(); var buf = new Buffer('hi');",
        "var nested = [[1, 2], [3]]; nested[0].push(9); var x = nested[0][2]; nested[1][5] = 'far'; var l = nested[1].length;",
        "var sum = 0; [10, 20, 30].forEach(function (v, i) { sum = sum + v + i; }); var r = sum;",
    ] {
        assert_agree(src);
    }
}

#[test]
fn corpus_error_paths() {
    for src in [
        "var x = nope;",
        "var x = 1 + null;",
        "var x = null - 1;",
        "var x = -'text';",
        "var x = 1 < 'a';",
        "var x = 5; var y = x();",
        "var x = 5; var y = x.field;",
        "var x = true; var y = x[0];",
        "var x = 3; x[0] = 1;",
        "var x = 'str'; x.f = 1;",
        "var a = []; var r = a.unknownMethod();",
        "var s = 'x'; var r = s.unknownMethod();",
        "var n = 5; var r = n.trim();",
        "var o = {}; var r = o.missing();",
        "function f(n) { return f(n + 1); } var x = f(0);",
        "while (true) { var x = 1; }",
        "var i = 0; while (i < 100000) { i = i + 1; } var after = i;",
        "function boom() { return nope; } var ok = 1; var r = boom(); var unreached = 2;",
        "var a = [1, 2]; var r = a.map(5);",
    ] {
        assert_agree(src);
    }
}

#[test]
fn corpus_trace_sensitive_shapes() {
    for src in [
        // push through a global emits root Write + GlobalWrite at the call
        "var log = []; function add(x) { log.push(x); } add(1); add(2);",
        // member assignment events carry the assigned value, not the base
        "var state = { n: 0 }; function bump() { state.n = state.n + 1; } bump(); bump();",
        // closure invoke events carry the call-site statement
        "function id(x) { return x; } var a = id(1); var b = id(id(2));",
        // function declarations write null, not the closure
        "function later() { return 1; } var r = later();",
        // literal-heavy expressions exercise constant folding
        "var x = 1 + 2 + 3 + 4 + 5; var y = 'a' + 'b' + 'c'; var z = (2 * 3) + (10 / 4) + -(1 - 2);",
        "var cond = 1 + 1 == 2; if (2 + 2 == 4) { var inside = 'yes'; }",
    ] {
        assert_agree(src);
    }
}

// ---------------------------------------------------------------------------
// Property test: random programs agree on outcome, globals and cycles.
// ---------------------------------------------------------------------------

fn ident() -> impl Strategy<Value = String> {
    "[a-k][a-z0-9]{0,4}".prop_filter("not a keyword", |s| {
        !matches!(
            s.as_str(),
            "var"
                | "function"
                | "if"
                | "else"
                | "while"
                | "for"
                | "return"
                | "true"
                | "false"
                | "null"
                | "new"
        )
    })
}

fn method_name() -> impl Strategy<Value = String> {
    prop_oneof![
        Just("push".to_string()),
        Just("pop".to_string()),
        Just("join".to_string()),
        Just("slice".to_string()),
        Just("indexOf".to_string()),
        Just("trim".to_string()),
        Just("toUpperCase".to_string()),
        Just("split".to_string()),
        Just("map".to_string()),
        Just("filter".to_string()),
        Just("forEach".to_string()),
    ]
}

fn literal() -> impl Strategy<Value = Expr> {
    prop_oneof![
        Just(Expr::Null),
        any::<bool>().prop_map(Expr::Bool),
        (0u32..1000).prop_map(|n| Expr::Num(f64::from(n))),
        (0u32..100, 1u32..16).prop_map(|(a, b)| Expr::Num(f64::from(a) + f64::from(b) / 16.0)),
        "[a-z ]{0,8}".prop_map(Expr::Str),
    ]
}

fn binop() -> impl Strategy<Value = BinOp> {
    prop_oneof![
        Just(BinOp::Add),
        Just(BinOp::Sub),
        Just(BinOp::Mul),
        Just(BinOp::Div),
        Just(BinOp::Rem),
        Just(BinOp::Eq),
        Just(BinOp::NotEq),
        Just(BinOp::Lt),
        Just(BinOp::Le),
        Just(BinOp::Gt),
        Just(BinOp::Ge),
        Just(BinOp::And),
        Just(BinOp::Or),
    ]
}

fn expr(depth: u32) -> BoxedStrategy<Expr> {
    if depth == 0 {
        prop_oneof![literal(), ident().prop_map(Expr::Var)].boxed()
    } else {
        let inner = expr(depth - 1);
        prop_oneof![
            literal(),
            ident().prop_map(Expr::Var),
            (binop(), inner.clone(), inner.clone()).prop_map(|(op, a, b)| Expr::Binary(
                op,
                Box::new(a),
                Box::new(b)
            )),
            (prop_oneof![Just(UnOp::Neg), Just(UnOp::Not)], inner.clone())
                .prop_map(|(op, a)| Expr::Unary(op, Box::new(a))),
            prop::collection::vec(inner.clone(), 0..3).prop_map(Expr::Array),
            prop::collection::vec((ident(), inner.clone()), 0..3).prop_map(|fields| {
                let mut seen = std::collections::BTreeSet::new();
                Expr::Object(
                    fields
                        .into_iter()
                        .filter(|(k, _)| seen.insert(k.clone()))
                        .collect(),
                )
            }),
            (ident(), prop::collection::vec(inner.clone(), 0..3)).prop_map(|(f, args)| {
                Expr::Call {
                    callee: Box::new(Expr::Var(f)),
                    args,
                }
            }),
            (
                inner.clone(),
                method_name(),
                prop::collection::vec(inner.clone(), 0..2)
            )
                .prop_map(|(base, m, args)| Expr::Call {
                    callee: Box::new(Expr::Member(Box::new(base), m)),
                    args,
                }),
            (inner.clone(), ident()).prop_map(|(b, f)| Expr::Member(Box::new(b), f)),
            (inner.clone(), inner).prop_map(|(b, i)| Expr::Index(Box::new(b), Box::new(i))),
        ]
        .boxed()
    }
}

fn stmt(depth: u32) -> BoxedStrategy<Stmt> {
    let e = || expr(2);
    let leaf = prop_oneof![
        (ident(), proptest::option::of(e())).prop_map(|(name, init)| Stmt::Let {
            id: StmtId(0),
            line: 1,
            name,
            init
        }),
        (ident(), e()).prop_map(|(v, value)| Stmt::Assign {
            id: StmtId(0),
            line: 1,
            target: LValue::Var(v),
            value
        }),
        (ident(), ident(), e()).prop_map(|(b, f, value)| Stmt::Assign {
            id: StmtId(0),
            line: 1,
            target: LValue::Member(Box::new(Expr::Var(b)), f),
            value
        }),
        (ident(), e(), e()).prop_map(|(b, i, value)| Stmt::Assign {
            id: StmtId(0),
            line: 1,
            target: LValue::Index(Box::new(Expr::Var(b)), Box::new(i)),
            value
        }),
        e().prop_map(|expr| Stmt::Expr {
            id: StmtId(0),
            line: 1,
            expr
        }),
        proptest::option::of(e()).prop_map(|value| Stmt::Return {
            id: StmtId(0),
            line: 1,
            value
        }),
    ];
    if depth == 0 {
        leaf.boxed()
    } else {
        let inner = stmt(depth - 1);
        prop_oneof![
            leaf,
            (
                e(),
                prop::collection::vec(inner.clone(), 0..3),
                prop::collection::vec(inner.clone(), 0..2)
            )
                .prop_map(|(cond, then_block, else_block)| Stmt::If {
                    id: StmtId(0),
                    line: 1,
                    cond,
                    then_block,
                    else_block
                }),
            (e(), prop::collection::vec(inner.clone(), 0..3)).prop_map(|(cond, body)| {
                Stmt::While {
                    id: StmtId(0),
                    line: 1,
                    cond,
                    body,
                }
            }),
            (
                ident(),
                prop::collection::vec(ident(), 0..3),
                prop::collection::vec(inner, 0..4)
            )
                .prop_map(|(name, params, body)| Stmt::Function {
                    id: StmtId(0),
                    line: 1,
                    name,
                    params,
                    body,
                }),
        ]
        .boxed()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Random programs agree between engines on outcome, error text,
    /// final globals, trace events and cycle totals.
    #[test]
    fn engines_agree_on_random_programs(stmts in prop::collection::vec(stmt(2), 1..8)) {
        let program = renumber(stmts);
        let tree = run_tree(&program);
        let vm = run_vm(&program);
        prop_assert_eq!(tree, vm);
    }
}
