//! `text-analyzer` — document analytics: text uploads analyzed for word
//! statistics, with file-backed document storage (the "files" replication
//! unit of §III-C).

use crate::{SubjectApp, TrafficProfile};
use edgstr_net::HttpRequest;
use serde_json::json;

/// NodeScript source of the text-analyzer server.
pub const SOURCE: &str = r#"
// text-analyzer: word statistics over uploaded documents
fs.writeFile("/corpora/stopwords-embeddings.bin", util.blob(700000, 7));
db.query("CREATE TABLE docs (id INT PRIMARY KEY, name TEXT, words INT)");
var doc_count = 0;

function words_of(text) {
    var parts = text.split(" ");
    var words = [];
    for (var i = 0; i < parts.length; i = i + 1) {
        var w = parts[i].trim();
        if (w.length > 0) { words.push(w); }
    }
    return words;
}

function frequency(words) {
    var seen = [];
    var counts = [];
    for (var i = 0; i < words.length; i = i + 1) {
        var w = words[i].toLowerCase();
        var at = seen.indexOf(w);
        if (at == -1) {
            seen.push(w);
            counts.push(1);
        } else {
            counts[at] = counts[at] + 1;
        }
    }
    return { words: seen, counts: counts };
}

app.post("/analyze", function (req, res) {
    var text = req.body.text;
    var words = words_of(text);
    var freq = frequency(words);
    var longest = "";
    for (var i = 0; i < words.length; i = i + 1) {
        if (words[i].length > longest.length) { longest = words[i]; }
    }
    res.send({ words: words.length, unique: freq.words.length, longest: longest });
});

app.post("/document", function (req, res) {
    var name = req.body.name;
    var text = req.body.text;
    fs.writeFile("/docs/" + name + ".txt", text);
    var n = words_of(text).length;
    doc_count = doc_count + 1;
    db.query("INSERT INTO docs VALUES (" + doc_count + ", '" + name + "', " + n + ")");
    res.send({ saved: name, words: n });
});

app.get("/document", function (req, res) {
    var name = req.params.name;
    var data = fs.readFile("/docs/" + name + ".txt");
    res.send({ name: name, size: data.length });
});

app.get("/wordfreq", function (req, res) {
    var name = req.params.name;
    var data = fs.readFile("/docs/" + name + ".txt");
    var text = "" + data;
    var freq = frequency(words_of(text));
    res.send(freq);
});

app.get("/docs", function (req, res) {
    var rows = db.query("SELECT * FROM docs ORDER BY id");
    res.send(rows);
});

app.post("/summarize", function (req, res) {
    var text = req.body.text;
    var sentences = text.split(".");
    var keep = req.body.sentences;
    var out = [];
    for (var i = 0; i < sentences.length && i < keep; i = i + 1) {
        var s = sentences[i].trim();
        if (s.length > 0) { out.push(s); }
    }
    res.send({ summary: out.join(". "), kept: out.length });
});
"#;

/// Build the subject app descriptor.
pub fn app() -> SubjectApp {
    let essay = "Edge computing moves processing close to clients. \
                 The cloud remains the system of record. \
                 Replicas converge through CRDTs.";
    let service_requests = vec![
        HttpRequest::post("/analyze", json!({"text": essay}), vec![]),
        HttpRequest::post("/document", json!({"name": "notes", "text": essay}), vec![]),
        HttpRequest::get("/document", json!({"name": "notes"})),
        HttpRequest::get("/wordfreq", json!({"name": "notes"})),
        HttpRequest::get("/docs", json!({})),
        HttpRequest::post("/summarize", json!({"text": essay, "sentences": 2}), vec![]),
    ];
    let regression_requests = vec![
        HttpRequest::post("/analyze", json!({"text": "alpha beta alpha"}), vec![]),
        HttpRequest::post(
            "/document",
            json!({"name": "r1", "text": "one two three"}),
            vec![],
        ),
        HttpRequest::get("/wordfreq", json!({"name": "notes"})),
        HttpRequest::get("/docs", json!({})),
        HttpRequest::post(
            "/summarize",
            json!({"text": "First. Second. Third.", "sentences": 1}),
            vec![],
        ),
    ];
    SubjectApp {
        name: "text-analyzer",
        source: SOURCE.to_string(),
        service_requests,
        regression_requests,
        profile: TrafficProfile::FileBacked,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use edgstr_analysis::ServerProcess;

    #[test]
    fn analyze_counts_words() {
        let a = app();
        let mut s = ServerProcess::from_source(&a.source).unwrap();
        s.init().unwrap();
        let out = s
            .handle(&HttpRequest::post(
                "/analyze",
                json!({"text": "red green red refactoring"}),
                vec![],
            ))
            .unwrap();
        assert_eq!(out.response.body["words"], json!(4));
        assert_eq!(out.response.body["unique"], json!(3));
        assert_eq!(out.response.body["longest"], json!("refactoring"));
    }

    #[test]
    fn documents_round_trip_through_fs() {
        let a = app();
        let mut s = ServerProcess::from_source(&a.source).unwrap();
        s.init().unwrap();
        s.handle(&a.service_requests[1]).unwrap();
        assert!(s.fs.contains("/docs/notes.txt"));
        let freq = s.handle(&a.service_requests[3]).unwrap();
        assert!(freq.response.body["words"].as_array().unwrap().len() > 5);
    }

    #[test]
    fn summarize_truncates_sentences() {
        let a = app();
        let mut s = ServerProcess::from_source(&a.source).unwrap();
        s.init().unwrap();
        let out = s
            .handle(&HttpRequest::post(
                "/summarize",
                json!({"text": "A one. B two. C three.", "sentences": 2}),
                vec![],
            ))
            .unwrap();
        assert_eq!(out.response.body["kept"], json!(2));
        assert_eq!(out.response.body["summary"], json!("A one. B two"));
    }
}
