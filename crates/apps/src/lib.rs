//! # edgstr-apps — the subject applications of the evaluation (§IV-A)
//!
//! The paper evaluates EdgStr on "7 open-source distributed applications
//! and their 42 remote services", found by searching GitHub for Node.js
//! client/server apps (Express/Koa servers; Ajax/fetch/React clients).
//! Table II names a subset (the object-detection app `fobojet`,
//! `mnist-rest`, `Bookworm`, `med-chem-rules`); the remaining subjects are
//! reconstructed here to match the stated mix: CPU-bound services that
//! process client-collected sensor data, some database-backed, some
//! TensorFlow-based, some file-backed, spanning read-mostly to
//! write-heavy profiles.
//!
//! Each [`SubjectApp`] bundles the NodeScript server source, one sample
//! request per remote service (42 total across the seven apps), and a
//! regression suite used by the RQ1 correctness experiment.

pub mod bookworm;
pub mod fobojet;
pub mod geotracker;
pub mod medchem;
pub mod mnistrest;
pub mod sensorhub;
pub mod textanalyzer;

use edgstr_net::HttpRequest;

/// Workload shape of an app, used to pick representative subjects per
/// experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrafficProfile {
    /// Large uploads (images), heavy computation.
    HeavyUploadHeavyCompute,
    /// Small uploads, heavy computation.
    LightUploadHeavyCompute,
    /// Small requests against a database, read-mostly.
    ReadMostlyDb,
    /// Small requests, deterministic computation (cacheable).
    CacheableCompute,
    /// Frequent small writes (sensor ingest).
    WriteHeavy,
    /// Mixed math + database.
    Mixed,
    /// File-backed documents.
    FileBacked,
}

/// One subject application.
#[derive(Debug, Clone)]
pub struct SubjectApp {
    /// Short name as used in Table II (e.g. `fobojet`).
    pub name: &'static str,
    /// NodeScript server source.
    pub source: String,
    /// One representative request per remote service.
    pub service_requests: Vec<HttpRequest>,
    /// Requests whose responses must be identical between the original
    /// and the EdgStr replica (the app's regression tests, §IV-B).
    pub regression_requests: Vec<HttpRequest>,
    /// Workload shape.
    pub profile: TrafficProfile,
}

impl SubjectApp {
    /// Number of remote services this app exposes.
    pub fn service_count(&self) -> usize {
        self.service_requests.len()
    }
}

/// All seven subject applications.
pub fn all_apps() -> Vec<SubjectApp> {
    vec![
        fobojet::app(),
        mnistrest::app(),
        bookworm::app(),
        medchem::app(),
        sensorhub::app(),
        geotracker::app(),
        textanalyzer::app(),
    ]
}

/// Deterministic synthetic binary payload of roughly `kib` KiB — the
/// stand-in for camera images (the paper's 1–20 MB uploads) and other
/// client-collected sensor data we cannot ship in a repository.
pub fn synthetic_payload(seed: u64, kib: usize) -> Vec<u8> {
    let mut out = Vec::with_capacity(kib * 1024);
    let mut x = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).max(1);
    while out.len() < kib * 1024 {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        out.extend_from_slice(&x.to_le_bytes());
    }
    out.truncate(kib * 1024);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use edgstr_analysis::ServerProcess;

    #[test]
    fn seven_apps_forty_two_services() {
        let apps = all_apps();
        assert_eq!(apps.len(), 7, "the paper evaluates 7 subject apps");
        let total: usize = apps.iter().map(SubjectApp::service_count).sum();
        assert_eq!(total, 42, "the paper evaluates 42 remote services");
    }

    #[test]
    fn every_app_parses_and_initializes() {
        for app in all_apps() {
            let mut s = ServerProcess::from_source(&app.source)
                .unwrap_or_else(|e| panic!("{}: {e}", app.name));
            s.init().unwrap_or_else(|e| panic!("{}: {e}", app.name));
            assert_eq!(
                s.routes().len(),
                app.service_count(),
                "{}: route count vs declared services",
                app.name
            );
        }
    }

    #[test]
    fn every_service_request_succeeds_against_original() {
        for app in all_apps() {
            let mut s = ServerProcess::from_source(&app.source).unwrap();
            s.init().unwrap();
            for req in &app.service_requests {
                let out = s.handle(req).unwrap_or_else(|e| {
                    panic!("{}: {} {} failed: {e}", app.name, req.verb, req.path)
                });
                assert!(
                    out.response.is_success(),
                    "{}: {} {} returned {}",
                    app.name,
                    req.verb,
                    req.path,
                    out.response.status
                );
                assert!(
                    !out.response.body.is_null(),
                    "{}: {} {} must return non-empty responses (§III-A)",
                    app.name,
                    req.verb,
                    req.path
                );
            }
        }
    }

    #[test]
    fn regression_requests_are_replayable() {
        for app in all_apps() {
            let mut s = ServerProcess::from_source(&app.source).unwrap();
            s.init().unwrap();
            // regression suites assume the live state established by the
            // captured traffic (the same state the transformation
            // checkpoints), so replay the service requests first
            for req in &app.service_requests {
                let _ = s.handle(req);
            }
            assert!(
                !app.regression_requests.is_empty(),
                "{} must ship regression tests",
                app.name
            );
            for req in &app.regression_requests {
                s.handle(req).unwrap_or_else(|e| {
                    panic!("{}: regression {} failed: {e}", app.name, req.path)
                });
            }
        }
    }

    #[test]
    fn synthetic_payload_deterministic_and_sized() {
        let a = synthetic_payload(7, 64);
        let b = synthetic_payload(7, 64);
        let c = synthetic_payload(8, 64);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.len(), 64 * 1024);
    }
}
