//! `fobojet` — the paper's motivating subject (`firebase-objdet-node`,
//! Fig. 1): a mobile client uploads camera images; the cloud service
//! localizes and identifies objects with a pre-trained deep-learning model
//! and returns boxes + labels. Heavy uploads, heavy compute.

use crate::{synthetic_payload, SubjectApp, TrafficProfile};
use edgstr_net::HttpRequest;
use serde_json::json;

/// NodeScript source of the fobojet server.
pub const SOURCE: &str = r#"
// firebase-objdet-node: cloud object-detection service
// the pre-trained detection model lives in the process working set
fs.writeFile("/models/objdet.bin", util.blob(4000000, 1));
var model_weights = fs.readFile("/models/objdet.bin");
db.query("CREATE TABLE history (id INT PRIMARY KEY, label TEXT, score REAL)");
var labels = ["person", "car", "dog", "bicycle", "chair", "bottle"];
var threshold = 0.5;
var predictions = 0;

function summarize(dets) {
    var names = [];
    for (var i = 0; i < dets.length; i = i + 1) {
        var d = dets[i];
        if (d.score >= threshold) {
            names.push(d.label);
        }
    }
    return names;
}

app.post("/predict", function (req, res) {
    var b = req.body.img;
    var tv = new Uint8Array(b);
    var out = tensor.infer("objdet", tv);
    predictions = predictions + 1;
    var dets = out.detections;
    var names = summarize(dets);
    var first = dets[0];
    db.query("INSERT INTO history VALUES (" + predictions + ", '" + first.label + "', " + first.score + ")");
    res.send({ id: predictions, objects: names, detections: dets });
});

app.get("/labels", function (req, res) {
    res.send({ labels: labels, count: labels.length });
});

app.get("/history", function (req, res) {
    var limit = req.params.limit;
    var rows = db.query("SELECT * FROM history ORDER BY id DESC LIMIT " + limit);
    res.send(rows);
});

app.post("/feedback", function (req, res) {
    var id = req.body.id;
    var correct = req.body.correct;
    db.query("UPDATE history SET score = " + correct + " WHERE id = " + id);
    res.send({ updated: id });
});

app.get("/stats", function (req, res) {
    var rows = db.query("SELECT COUNT(*), AVG(score) FROM history");
    var agg = rows[0];
    res.send({ total: agg.count, mean_score: agg, served: predictions });
});

app.post("/calibrate", function (req, res) {
    threshold = req.body.threshold;
    res.send({ threshold: threshold });
});
"#;

/// Build the subject app descriptor.
pub fn app() -> SubjectApp {
    let img = synthetic_payload(1, 256); // ~256 KiB camera image
    let small_img = synthetic_payload(2, 64);
    let service_requests = vec![
        HttpRequest::post("/predict", json!({}), img.clone()),
        HttpRequest::get("/labels", json!({})),
        HttpRequest::get("/history", json!({"limit": 10})),
        HttpRequest::post("/feedback", json!({"id": 1, "correct": 1.0}), vec![]),
        HttpRequest::get("/stats", json!({})),
        HttpRequest::post("/calibrate", json!({"threshold": 0.6}), vec![]),
    ];
    let regression_requests = vec![
        HttpRequest::post("/predict", json!({}), img),
        HttpRequest::post("/predict", json!({}), small_img),
        HttpRequest::get("/labels", json!({})),
        HttpRequest::get("/history", json!({"limit": 5})),
        HttpRequest::get("/stats", json!({})),
    ];
    SubjectApp {
        name: "fobojet",
        source: SOURCE.to_string(),
        service_requests,
        regression_requests,
        profile: TrafficProfile::HeavyUploadHeavyCompute,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use edgstr_analysis::ServerProcess;

    #[test]
    fn predict_detects_objects_and_records_history() {
        let a = app();
        let mut s = ServerProcess::from_source(&a.source).unwrap();
        s.init().unwrap();
        let out = s.handle(&a.service_requests[0]).unwrap();
        assert!(out.response.body["objects"].is_array());
        assert_eq!(out.response.body["id"], json!(1));
        assert!(out.cycles > 10_000_000, "object detection must be heavy");
        // history grows
        let hist = s.handle(&a.service_requests[2]).unwrap();
        assert_eq!(hist.response.body.as_array().unwrap().len(), 1);
    }

    #[test]
    fn calibrate_changes_threshold_behaviour() {
        let a = app();
        let mut s = ServerProcess::from_source(&a.source).unwrap();
        s.init().unwrap();
        let out = s
            .handle(&HttpRequest::post(
                "/calibrate",
                json!({"threshold": 0.99}),
                vec![],
            ))
            .unwrap();
        assert_eq!(out.response.body["threshold"], json!(0.99));
    }
}
