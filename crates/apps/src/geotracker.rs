//! `geo-tracker` — vehicle location tracking: positions ingested from
//! mobile clients, route/distance computation, geofence monitoring.
//! Mixed math + database workload.

use crate::{SubjectApp, TrafficProfile};
use edgstr_net::HttpRequest;
use serde_json::json;

/// NodeScript source of the geo-tracker server.
pub const SOURCE: &str = r#"
// geo-tracker: fleet positions, distances, geofences
fs.writeFile("/maps/region-tiles.pak", util.blob(1200000, 6));
db.query("CREATE TABLE positions (id INT PRIMARY KEY, vehicle TEXT, x REAL, y REAL)");
db.query("CREATE TABLE fences (id INT PRIMARY KEY, name TEXT, x REAL, y REAL, radius REAL)");
db.query("INSERT INTO fences VALUES (1, 'depot', 0, 0, 50)");
var points = 0;

function dist(ax, ay, bx, by) {
    var dx = ax - bx;
    var dy = ay - by;
    return Math.sqrt(dx * dx + dy * dy);
}

app.post("/position", function (req, res) {
    var vehicle = req.body.vehicle;
    var x = req.body.x;
    var y = req.body.y;
    points = points + 1;
    db.query("INSERT INTO positions VALUES (" + points + ", '" + vehicle + "', " + x + ", " + y + ")");
    res.send({ recorded: points });
});

app.get("/track", function (req, res) {
    var vehicle = req.params.vehicle;
    var rows = db.query("SELECT id, x, y FROM positions WHERE vehicle = '" + vehicle + "' ORDER BY id");
    res.send({ vehicle: vehicle, track: rows });
});

app.get("/distance", function (req, res) {
    var vehicle = req.params.vehicle;
    var rows = db.query("SELECT x, y FROM positions WHERE vehicle = '" + vehicle + "' ORDER BY id");
    var total = 0;
    for (var i = 1; i < rows.length; i = i + 1) {
        total = total + dist(rows[i - 1].x, rows[i - 1].y, rows[i].x, rows[i].y);
    }
    res.send({ vehicle: vehicle, distance: total, points: rows.length });
});

app.get("/nearby", function (req, res) {
    var x = req.params.x;
    var y = req.params.y;
    var radius = req.params.radius;
    var rows = db.query("SELECT vehicle, x, y FROM positions");
    var near = [];
    for (var i = 0; i < rows.length; i = i + 1) {
        if (dist(rows[i].x, rows[i].y, x, y) <= radius) {
            near.push(rows[i].vehicle);
        }
    }
    res.send({ near: near });
});

app.post("/geofence", function (req, res) {
    var id = req.body.id;
    var name = req.body.name;
    db.query("INSERT INTO fences VALUES (" + id + ", '" + name + "', " + req.body.x + ", " + req.body.y + ", " + req.body.radius + ")");
    res.send({ added: name });
});

app.get("/violations", function (req, res) {
    var fences = db.query("SELECT name, x, y, radius FROM fences");
    var rows = db.query("SELECT vehicle, x, y FROM positions");
    var out = [];
    for (var i = 0; i < rows.length; i = i + 1) {
        var inside = false;
        for (var j = 0; j < fences.length; j = j + 1) {
            if (dist(rows[i].x, rows[i].y, fences[j].x, fences[j].y) <= fences[j].radius) {
                inside = true;
            }
        }
        if (!inside) {
            out.push(rows[i].vehicle);
        }
    }
    res.send({ violations: out, checked: rows.length });
});
"#;

/// Build the subject app descriptor.
pub fn app() -> SubjectApp {
    let service_requests = vec![
        HttpRequest::post(
            "/position",
            json!({"vehicle": "van-1", "x": 10.0, "y": 20.0}),
            vec![],
        ),
        HttpRequest::get("/track", json!({"vehicle": "van-1"})),
        HttpRequest::get("/distance", json!({"vehicle": "van-1"})),
        HttpRequest::get("/nearby", json!({"x": 0, "y": 0, "radius": 100})),
        HttpRequest::post(
            "/geofence",
            json!({"id": 2, "name": "airport", "x": 500.0, "y": 500.0, "radius": 80.0}),
            vec![],
        ),
        HttpRequest::get("/violations", json!({})),
    ];
    let regression_requests = vec![
        HttpRequest::post(
            "/position",
            json!({"vehicle": "van-2", "x": 3.0, "y": 4.0}),
            vec![],
        ),
        HttpRequest::post(
            "/position",
            json!({"vehicle": "van-2", "x": 6.0, "y": 8.0}),
            vec![],
        ),
        HttpRequest::get("/distance", json!({"vehicle": "van-2"})),
        HttpRequest::get("/nearby", json!({"x": 5, "y": 5, "radius": 10})),
        HttpRequest::get("/violations", json!({})),
    ];
    SubjectApp {
        name: "geo-tracker",
        source: SOURCE.to_string(),
        service_requests,
        regression_requests,
        profile: TrafficProfile::Mixed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use edgstr_analysis::ServerProcess;

    #[test]
    fn distance_sums_track_segments() {
        let a = app();
        let mut s = ServerProcess::from_source(&a.source).unwrap();
        s.init().unwrap();
        for (x, y) in [(0.0, 0.0), (3.0, 4.0), (3.0, 4.0)] {
            s.handle(&HttpRequest::post(
                "/position",
                json!({"vehicle": "t", "x": x, "y": y}),
                vec![],
            ))
            .unwrap();
        }
        let d = s
            .handle(&HttpRequest::get("/distance", json!({"vehicle": "t"})))
            .unwrap();
        assert_eq!(d.response.body["distance"], json!(5));
        assert_eq!(d.response.body["points"], json!(3));
    }

    #[test]
    fn violations_respect_fences() {
        let a = app();
        let mut s = ServerProcess::from_source(&a.source).unwrap();
        s.init().unwrap();
        // inside depot fence (radius 50 around origin)
        s.handle(&HttpRequest::post(
            "/position",
            json!({"vehicle": "inside", "x": 10.0, "y": 10.0}),
            vec![],
        ))
        .unwrap();
        // far away
        s.handle(&HttpRequest::post(
            "/position",
            json!({"vehicle": "outside", "x": 900.0, "y": 900.0}),
            vec![],
        ))
        .unwrap();
        let v = s
            .handle(&HttpRequest::get("/violations", json!({})))
            .unwrap();
        assert_eq!(v.response.body["violations"], json!(["outside"]));
    }
}
