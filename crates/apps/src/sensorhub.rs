//! `sensor-hub` — IoT sensor ingestion and summarization. The paper argues
//! EdgStr is "widely suitable for the types of services that process
//! client-collected sensor data … CPU-bound, transforming sensor data
//! collections into computed summaries, persisted for future referencing"
//! (§II-D). Write-heavy ingest with aggregate queries.

use crate::{SubjectApp, TrafficProfile};
use edgstr_net::{HttpRequest, Verb};
use serde_json::json;

/// NodeScript source of the sensor-hub server.
pub const SOURCE: &str = r#"
// sensor-hub: telemetry ingest + computed summaries
fs.writeFile("/calib/sensor-curves.bin", util.blob(400000, 5));
db.query("CREATE TABLE readings (id INT PRIMARY KEY, device TEXT, celsius REAL)");
var ingested = 0;
var alert_limit = 40;

app.post("/reading", function (req, res) {
    var device = req.body.device;
    var celsius = req.body.celsius;
    ingested = ingested + 1;
    db.query("INSERT INTO readings VALUES (" + ingested + ", '" + device + "', " + celsius + ")");
    res.send({ stored: ingested });
});

app.get("/summary", function (req, res) {
    var agg = db.query("SELECT COUNT(*), AVG(celsius), MIN(celsius), MAX(celsius) FROM readings");
    res.send(agg[0]);
});

app.get("/alerts", function (req, res) {
    var hot = db.query("SELECT device, celsius FROM readings WHERE celsius > " + alert_limit + " ORDER BY celsius DESC");
    res.send({ limit: alert_limit, alerts: hot });
});

app.post("/threshold", function (req, res) {
    alert_limit = req.body.limit;
    res.send({ limit: alert_limit });
});

app.get("/devices", function (req, res) {
    var rows = db.query("SELECT device FROM readings ORDER BY device");
    var names = [];
    for (var i = 0; i < rows.length; i = i + 1) {
        var d = rows[i].device;
        if (names.indexOf(d) == -1) { names.push(d); }
    }
    res.send({ devices: names, count: names.length });
});

app.delete("/readings", function (req, res) {
    var device = req.params.device;
    db.query("DELETE FROM readings WHERE device = '" + device + "'");
    var left = db.query("SELECT COUNT(*) FROM readings");
    res.send(left[0]);
});
"#;

/// Build the subject app descriptor.
pub fn app() -> SubjectApp {
    let service_requests = vec![
        HttpRequest::post(
            "/reading",
            json!({"device": "probe-a", "celsius": 21.5}),
            vec![],
        ),
        HttpRequest::get("/summary", json!({})),
        HttpRequest::get("/alerts", json!({})),
        HttpRequest::post("/threshold", json!({"limit": 35}), vec![]),
        HttpRequest::get("/devices", json!({})),
        HttpRequest {
            verb: Verb::Delete,
            path: "/readings".to_string(),
            params: json!({"device": "probe-z"}),
            body: vec![],
        },
    ];
    let regression_requests = vec![
        HttpRequest::post(
            "/reading",
            json!({"device": "probe-a", "celsius": 19.0}),
            vec![],
        ),
        HttpRequest::post(
            "/reading",
            json!({"device": "probe-b", "celsius": 44.0}),
            vec![],
        ),
        HttpRequest::get("/summary", json!({})),
        HttpRequest::get("/alerts", json!({})),
        HttpRequest::get("/devices", json!({})),
    ];
    SubjectApp {
        name: "sensor-hub",
        source: SOURCE.to_string(),
        service_requests,
        regression_requests,
        profile: TrafficProfile::WriteHeavy,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use edgstr_analysis::ServerProcess;

    #[test]
    fn ingest_then_summarize() {
        let a = app();
        let mut s = ServerProcess::from_source(&a.source).unwrap();
        s.init().unwrap();
        for t in [18.0, 22.0, 41.0] {
            s.handle(&HttpRequest::post(
                "/reading",
                json!({"device": "d1", "celsius": t}),
                vec![],
            ))
            .unwrap();
        }
        let sum = s.handle(&HttpRequest::get("/summary", json!({}))).unwrap();
        assert_eq!(sum.response.body["count"], json!(3));
        assert_eq!(sum.response.body["max(celsius)"], json!(41));
        let alerts = s.handle(&HttpRequest::get("/alerts", json!({}))).unwrap();
        assert_eq!(alerts.response.body["alerts"].as_array().unwrap().len(), 1);
    }

    #[test]
    fn threshold_is_stateful() {
        let a = app();
        let mut s = ServerProcess::from_source(&a.source).unwrap();
        s.init().unwrap();
        s.handle(&HttpRequest::post(
            "/reading",
            json!({"device": "d1", "celsius": 30.0}),
            vec![],
        ))
        .unwrap();
        s.handle(&HttpRequest::post(
            "/threshold",
            json!({"limit": 25}),
            vec![],
        ))
        .unwrap();
        let alerts = s.handle(&HttpRequest::get("/alerts", json!({}))).unwrap();
        assert_eq!(alerts.response.body["alerts"].as_array().unwrap().len(), 1);
    }

    #[test]
    fn delete_clears_device_readings() {
        let a = app();
        let mut s = ServerProcess::from_source(&a.source).unwrap();
        s.init().unwrap();
        for (d, t) in [("a", 20.0), ("b", 21.0)] {
            s.handle(&HttpRequest::post(
                "/reading",
                json!({"device": d, "celsius": t}),
                vec![],
            ))
            .unwrap();
        }
        let left = s
            .handle(&HttpRequest {
                verb: Verb::Delete,
                path: "/readings".to_string(),
                params: json!({"device": "a"}),
                body: vec![],
            })
            .unwrap();
        assert_eq!(left.response.body["count"], json!(1));
    }
}
