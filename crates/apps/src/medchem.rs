//! `med-chem-rules` — molecular rule screening (named in §IV-E as the
//! other cacheable subject): deterministic rule evaluation over molecule
//! strings, with a mutable rule base and a screening history.

use crate::{SubjectApp, TrafficProfile};
use edgstr_net::HttpRequest;
use serde_json::json;

/// NodeScript source of the med-chem-rules server.
pub const SOURCE: &str = r#"
// med-chem-rules: Lipinski-style screening of molecule strings
fs.writeFile("/data/fragment-library.sdf", util.blob(900000, 4));
db.query("CREATE TABLE rules (id INT PRIMARY KEY, name TEXT, atom TEXT, weight REAL)");
db.query("INSERT INTO rules VALUES (1, 'nitrogen-load', 'N', 1.5)");
db.query("INSERT INTO rules VALUES (2, 'oxygen-load', 'O', 1.2)");
db.query("INSERT INTO rules VALUES (3, 'ring-carbon', 'c', 0.8)");
db.query("CREATE TABLE screenings (id INT PRIMARY KEY, molecule TEXT, score REAL, pass INT)");
var screened = 0;

function count_atom(mol, atom) {
    var n = 0;
    for (var i = 0; i < mol.length; i = i + 1) {
        if (mol[i] == atom) { n = n + 1; }
    }
    return n;
}

function score_molecule(mol) {
    var rules = db.query("SELECT atom, weight FROM rules");
    var score = 0;
    for (var i = 0; i < rules.length; i = i + 1) {
        var r = rules[i];
        score = score + count_atom(mol, r.atom) * r.weight;
    }
    return score;
}

app.post("/screen", function (req, res) {
    var mol = req.body.smiles;
    var score = score_molecule(mol);
    var pass = 0;
    if (score < 10) { pass = 1; }
    screened = screened + 1;
    db.query("INSERT INTO screenings VALUES (" + screened + ", '" + mol + "', " + score + ", " + pass + ")");
    res.send({ molecule: mol, score: score, pass: pass });
});

app.get("/rules", function (req, res) {
    var rows = db.query("SELECT * FROM rules ORDER BY id");
    res.send(rows);
});

app.post("/rules", function (req, res) {
    var id = req.body.id;
    var name = req.body.name;
    var atom = req.body.atom;
    var weight = req.body.weight;
    db.query("INSERT INTO rules VALUES (" + id + ", '" + name + "', '" + atom + "', " + weight + ")");
    res.send({ added: name });
});

app.get("/screenings", function (req, res) {
    var rows = db.query("SELECT * FROM screenings ORDER BY id DESC LIMIT 20");
    res.send(rows);
});

app.post("/batch", function (req, res) {
    var mols = req.body.molecules;
    var results = [];
    for (var i = 0; i < mols.length; i = i + 1) {
        var score = score_molecule(mols[i]);
        results.push({ molecule: mols[i], score: score });
    }
    res.send({ screened: mols.length, results: results });
});

app.get("/rulestats", function (req, res) {
    var agg = db.query("SELECT COUNT(*), AVG(weight), MAX(weight) FROM rules");
    var hist = db.query("SELECT COUNT(*) FROM screenings");
    res.send({ rules: agg[0], history: hist[0], screened: screened });
});
"#;

/// Build the subject app descriptor.
pub fn app() -> SubjectApp {
    let service_requests = vec![
        HttpRequest::post("/screen", json!({"smiles": "CCNOcccNO"}), vec![]),
        HttpRequest::get("/rules", json!({})),
        HttpRequest::post(
            "/rules",
            json!({"id": 4, "name": "sulfur-load", "atom": "S", "weight": 2.0}),
            vec![],
        ),
        HttpRequest::get("/screenings", json!({})),
        HttpRequest::post(
            "/batch",
            json!({"molecules": ["CCO", "NNNN", "cccccc"]}),
            vec![],
        ),
        HttpRequest::get("/rulestats", json!({})),
    ];
    let regression_requests = vec![
        HttpRequest::post("/screen", json!({"smiles": "CCO"}), vec![]),
        HttpRequest::post("/screen", json!({"smiles": "NONOcc"}), vec![]),
        HttpRequest::get("/rules", json!({})),
        HttpRequest::post("/batch", json!({"molecules": ["NO", "cc"]}), vec![]),
        HttpRequest::get("/rulestats", json!({})),
    ];
    SubjectApp {
        name: "med-chem-rules",
        source: SOURCE.to_string(),
        service_requests,
        regression_requests,
        profile: TrafficProfile::CacheableCompute,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use edgstr_analysis::ServerProcess;

    #[test]
    fn screening_is_deterministic() {
        let a = app();
        let mut s = ServerProcess::from_source(&a.source).unwrap();
        s.init().unwrap();
        let r = s.handle(&a.regression_requests[0]).unwrap().response.body;
        // CCO: one O * 1.2
        assert_eq!(r["score"], json!(1.2));
        assert_eq!(r["pass"], json!(1));
    }

    #[test]
    fn rule_updates_change_scores() {
        let a = app();
        let mut s = ServerProcess::from_source(&a.source).unwrap();
        s.init().unwrap();
        let before = s
            .handle(&HttpRequest::post(
                "/screen",
                json!({"smiles": "SS"}),
                vec![],
            ))
            .unwrap()
            .response
            .body["score"]
            .clone();
        assert_eq!(before, json!(0));
        s.handle(&a.service_requests[2]).unwrap(); // add sulfur rule
        let after = s
            .handle(&HttpRequest::post(
                "/screen",
                json!({"smiles": "SS"}),
                vec![],
            ))
            .unwrap()
            .response
            .body["score"]
            .clone();
        assert_eq!(after, json!(4));
    }

    #[test]
    fn batch_screens_all_molecules() {
        let a = app();
        let mut s = ServerProcess::from_source(&a.source).unwrap();
        s.init().unwrap();
        let out = s.handle(&a.service_requests[4]).unwrap();
        assert_eq!(out.response.body["screened"], json!(3));
        assert_eq!(out.response.body["results"].as_array().unwrap().len(), 3);
    }
}
