//! `mnist-rest` — handwritten-digit recognition service (named in Table
//! II): small image uploads, heavy compute, with a stored sample gallery
//! and accuracy tracking.

use crate::{synthetic_payload, SubjectApp, TrafficProfile};
use edgstr_net::HttpRequest;
use serde_json::json;

/// NodeScript source of the mnist-rest server.
pub const SOURCE: &str = r#"
// mnist-rest: digit recognition with feedback-driven accuracy tracking
fs.writeFile("/models/mnist-cnn.bin", util.blob(1500000, 2));
var model_weights = fs.readFile("/models/mnist-cnn.bin");
db.query("CREATE TABLE samples (id INT PRIMARY KEY, label INT, predicted INT, verified INT)");
var model_version = "mnist-cnn-v2";
var stored = 0;

function digit_of(out) {
    var dets = out.detections;
    var first = dets[0];
    var score = first.score;
    return Math.floor(score * 9.99);
}

app.post("/predict-digit", function (req, res) {
    var raw = req.body.img;
    var pixels = new Uint8Array(raw);
    var out = tensor.infer("mnist", pixels);
    var digit = digit_of(out);
    res.send({ digit: digit, model: model_version });
});

app.post("/sample", function (req, res) {
    var raw = req.body.img;
    var label = req.body.label;
    var pixels = new Uint8Array(raw);
    var out = tensor.infer("mnist", pixels);
    var digit = digit_of(out);
    stored = stored + 1;
    fs.writeFile("/samples/" + stored + ".pgm", pixels);
    db.query("INSERT INTO samples VALUES (" + stored + ", " + label + ", " + digit + ", 0)");
    res.send({ id: stored, predicted: digit });
});

app.get("/accuracy", function (req, res) {
    var rows = db.query("SELECT label, predicted FROM samples");
    var hit = 0;
    for (var i = 0; i < rows.length; i = i + 1) {
        if (rows[i].label == rows[i].predicted) { hit = hit + 1; }
    }
    var total = rows.length;
    var acc = 0;
    if (total > 0) { acc = hit / total; }
    res.send({ accuracy: acc, samples: total });
});

app.get("/samples", function (req, res) {
    var rows = db.query("SELECT id, label, predicted FROM samples ORDER BY id");
    res.send(rows);
});

app.post("/verify", function (req, res) {
    var id = req.body.id;
    db.query("UPDATE samples SET verified = 1 WHERE id = " + id);
    var rows = db.query("SELECT COUNT(*) FROM samples WHERE verified = 1");
    res.send(rows[0]);
});

app.get("/model-info", function (req, res) {
    res.send({ model: model_version, stored: stored });
});
"#;

/// Build the subject app descriptor.
pub fn app() -> SubjectApp {
    let digit_img = synthetic_payload(11, 4); // 4 KiB: a 28x28-ish sample
    let service_requests = vec![
        HttpRequest::post("/predict-digit", json!({}), digit_img.clone()),
        HttpRequest::post("/sample", json!({"label": 7}), digit_img.clone()),
        HttpRequest::get("/accuracy", json!({})),
        HttpRequest::get("/samples", json!({})),
        HttpRequest::post("/verify", json!({"id": 1}), vec![]),
        HttpRequest::get("/model-info", json!({})),
    ];
    let regression_requests = vec![
        HttpRequest::post("/predict-digit", json!({}), digit_img.clone()),
        HttpRequest::post("/predict-digit", json!({}), synthetic_payload(12, 4)),
        HttpRequest::post("/sample", json!({"label": 3}), digit_img),
        HttpRequest::get("/accuracy", json!({})),
        HttpRequest::get("/samples", json!({})),
        HttpRequest::get("/model-info", json!({})),
    ];
    SubjectApp {
        name: "mnist-rest",
        source: SOURCE.to_string(),
        service_requests,
        regression_requests,
        profile: TrafficProfile::LightUploadHeavyCompute,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use edgstr_analysis::ServerProcess;

    #[test]
    fn predicts_stable_digits() {
        let a = app();
        let mut s = ServerProcess::from_source(&a.source).unwrap();
        s.init().unwrap();
        let r1 = s.handle(&a.service_requests[0]).unwrap().response.body;
        let r2 = s.handle(&a.service_requests[0]).unwrap().response.body;
        assert_eq!(r1, r2, "same image must give same digit");
        let d = r1["digit"].as_i64().unwrap();
        assert!((0..=9).contains(&d));
    }

    #[test]
    fn samples_persist_to_db_and_fs() {
        let a = app();
        let mut s = ServerProcess::from_source(&a.source).unwrap();
        s.init().unwrap();
        s.handle(&a.service_requests[1]).unwrap();
        assert!(s.fs.contains("/samples/1.pgm"));
        let rows = s.handle(&a.service_requests[3]).unwrap();
        assert_eq!(rows.response.body.as_array().unwrap().len(), 1);
    }
}
