//! `Bookworm` — a database-backed book catalog (named in §IV-E as one of
//! the two cacheable subjects): read-mostly queries with occasional stock
//! updates.

use crate::{SubjectApp, TrafficProfile};
use edgstr_net::{HttpRequest, Verb};
use serde_json::json;

/// NodeScript source of the Bookworm server.
pub const SOURCE: &str = r#"
// Bookworm: catalog browsing with stock management
fs.writeFile("/assets/covers.pak", util.blob(600000, 3));
db.query("CREATE TABLE books (id INT PRIMARY KEY, title TEXT, author TEXT, price REAL, stock INT)");
db.query("INSERT INTO books VALUES (1, 'Dune', 'Herbert', 9.99, 12)");
db.query("INSERT INTO books VALUES (2, 'Neuromancer', 'Gibson', 7.5, 3)");
db.query("INSERT INTO books VALUES (3, 'Accelerando', 'Stross', 12.0, 7)");
db.query("INSERT INTO books VALUES (4, 'Permutation City', 'Egan', 10.25, 0)");
db.query("INSERT INTO books VALUES (5, 'Snow Crash', 'Stephenson', 8.75, 5)");
var catalog_version = 1;

app.get("/books", function (req, res) {
    var rows = db.query("SELECT id, title, price, stock FROM books ORDER BY id");
    res.send({ version: catalog_version, books: rows });
});

app.get("/book", function (req, res) {
    var id = req.params.id;
    var rows = db.query("SELECT * FROM books WHERE id = " + id);
    res.send(rows);
});

app.post("/books", function (req, res) {
    var id = req.body.id;
    var title = req.body.title;
    var author = req.body.author;
    var price = req.body.price;
    db.query("INSERT INTO books VALUES (" + id + ", '" + title + "', '" + author + "', " + price + ", 0)");
    catalog_version = catalog_version + 1;
    res.send({ added: id, version: catalog_version });
});

app.put("/stock", function (req, res) {
    var id = req.body.id;
    var qty = req.body.qty;
    db.query("UPDATE books SET stock = " + qty + " WHERE id = " + id);
    var rows = db.query("SELECT stock FROM books WHERE id = " + id);
    res.send(rows);
});

app.get("/search", function (req, res) {
    var q = req.params.q;
    var rows = db.query("SELECT id, title FROM books WHERE title LIKE '%" + q + "%'");
    res.send({ query: q, hits: rows });
});

app.get("/recommend", function (req, res) {
    var budget = req.params.budget;
    var rows = db.query("SELECT id, title, price FROM books WHERE price <= " + budget + " AND stock > 0 ORDER BY price DESC LIMIT 3");
    res.send({ budget: budget, picks: rows });
});
"#;

/// Build the subject app descriptor.
pub fn app() -> SubjectApp {
    let service_requests = vec![
        HttpRequest::get("/books", json!({})),
        HttpRequest::get("/book", json!({"id": 2})),
        HttpRequest::post(
            "/books",
            json!({"id": 6, "title": "Diaspora", "author": "Egan", "price": 11.5}),
            vec![],
        ),
        HttpRequest {
            verb: Verb::Put,
            path: "/stock".to_string(),
            params: json!({"id": 2, "qty": 9}),
            body: vec![],
        },
        HttpRequest::get("/search", json!({"q": "an"})),
        HttpRequest::get("/recommend", json!({"budget": 10})),
    ];
    let regression_requests = vec![
        HttpRequest::get("/books", json!({})),
        HttpRequest::get("/book", json!({"id": 1})),
        HttpRequest::get("/book", json!({"id": 3})),
        HttpRequest::get("/search", json!({"q": "Dune"})),
        HttpRequest::get("/recommend", json!({"budget": 9})),
    ];
    SubjectApp {
        name: "bookworm",
        source: SOURCE.to_string(),
        service_requests,
        regression_requests,
        profile: TrafficProfile::ReadMostlyDb,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use edgstr_analysis::ServerProcess;

    #[test]
    fn catalog_reads_and_writes() {
        let a = app();
        let mut s = ServerProcess::from_source(&a.source).unwrap();
        s.init().unwrap();
        let all = s.handle(&a.service_requests[0]).unwrap();
        assert_eq!(all.response.body["books"].as_array().unwrap().len(), 5);
        s.handle(&a.service_requests[2]).unwrap();
        let all = s.handle(&a.service_requests[0]).unwrap();
        assert_eq!(all.response.body["books"].as_array().unwrap().len(), 6);
        assert_eq!(all.response.body["version"], json!(2));
    }

    #[test]
    fn search_and_recommend_filter() {
        let a = app();
        let mut s = ServerProcess::from_source(&a.source).unwrap();
        s.init().unwrap();
        let hits = s
            .handle(&HttpRequest::get("/search", json!({"q": "Neuro"})))
            .unwrap();
        assert_eq!(hits.response.body["hits"].as_array().unwrap().len(), 1);
        let picks = s.handle(&a.service_requests[5]).unwrap();
        let picks = picks.response.body["picks"].as_array().unwrap().clone();
        assert!(!picks.is_empty() && picks.len() <= 3);
    }
}
