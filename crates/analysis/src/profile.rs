//! The per-service profiling driver — Algorithm 1 of the paper.
//!
//! For each remote service `s_i`: restore the init checkpoint, execute and
//! trace a sample request, fuzz and re-execute, build the datalog facts,
//! infer entry/exit points, slice, and apply Extract Function. The result
//! is everything `edgstr-core` needs to generate the edge replica.

use crate::effects::{derive_effects, EffectSummary};
use crate::facts::{AnalysisFacts, EntryExit, TraceRun};
use crate::fuzz::{fuzz_request, request_atoms, response_atoms, FuzzDictionary};
use crate::server::{ServerError, ServerProcess};
use crate::slice::{extract_function, ExtractedService};
use crate::state::{InitState, StateUnit};
use crate::trace::Tracer;
use edgstr_lang::StmtId;
use edgstr_net::HttpRequest;
use serde_json::Value as Json;
use std::collections::BTreeSet;

/// Everything learned about one remote service.
#[derive(Debug)]
pub struct ServiceProfile {
    pub verb: edgstr_net::Verb,
    pub path: String,
    /// Entry/exit points (None when the payload could not be tracked —
    /// e.g. parameterless services).
    pub entry_exit: Option<EntryExit>,
    /// The dependence slice.
    pub slice: BTreeSet<StmtId>,
    /// The extracted standalone function plus its support declarations.
    pub extracted: Option<ExtractedService>,
    /// State units this service *writes* — the candidates for CRDT
    /// wrapping, presented to the developer (§III-D).
    pub state_units: Vec<StateUnit>,
    /// Read/write effect summary over all profiled runs — the read set is
    /// the invalidation signal for the edge response cache.
    pub effects: EffectSummary,
    /// A sample response (used by correctness regression tests).
    pub sample_response: Json,
    /// Mean virtual cycles per execution (base + fuzz runs).
    pub avg_cycles: u64,
    /// Sample request/response wire sizes.
    pub request_bytes: usize,
    pub response_bytes: usize,
    /// Number of distinct statements executed by the base run.
    pub executed_stmts: usize,
}

/// Reset the server between profiling executions. Globals roll back
/// through the armed copy-on-write checkpoint journal; the database and
/// file system are deep-restored only when the run demonstrably wrote to
/// them — or failed, leaving unknown partial state.
fn roll_back_run(
    server: &mut ServerProcess,
    init: &InitState,
    run: Option<(&crate::server::HandleOutcome, &Tracer)>,
) {
    server.rollback_checkpoint();
    let (db_dirty, fs_dirty) = match run {
        Some((out, tracer)) => (
            !out.row_effects.is_empty()
                || tracer
                    .trace
                    .sql_stmts
                    .iter()
                    .any(|(_, sql)| crate::facts::is_sql_write(sql)),
            !out.file_writes.is_empty(),
        ),
        None => (true, true),
    };
    if db_dirty {
        server.db.restore(&init.db);
    }
    if fs_dirty {
        server.fs.restore(&init.fs);
    }
}

/// Profile one service of `server` with `fuzz_iters` fuzzed re-executions.
/// The server is restored to `init` before every execution and once more
/// before returning.
///
/// # Errors
///
/// Propagates [`ServerError`] from any execution.
pub fn profile_service(
    server: &mut ServerProcess,
    init: &InitState,
    request: &HttpRequest,
    fuzz_iters: usize,
) -> Result<ServiceProfile, ServerError> {
    // base execution; when replaying the sampled request against the live
    // checkpoint fails (e.g. a duplicate-key insert), fall back to a fuzzed
    // variant of the request as the base — the same exploration the paper's
    // fuzzer performs
    init.restore(server);
    // Arm the journaled checkpoint: instead of deep-restoring all globals
    // before every execution, each run is rolled back copy-on-write, and
    // db/fs are restored only when the run actually touched them.
    server.begin_checkpoint();
    let mut tracer = Tracer::new();
    let (base_request, outcome) = match server.handle_traced(request, &mut tracer) {
        Ok(out) => {
            roll_back_run(server, init, Some((&out, &tracer)));
            (request.clone(), out)
        }
        Err(first_err) => {
            roll_back_run(server, init, None);
            let mut dict = FuzzDictionary::default();
            let alt = fuzz_request(request, 997, &mut dict);
            tracer = Tracer::new();
            match server.handle_traced(&alt, &mut tracer) {
                Ok(out) => {
                    roll_back_run(server, init, Some((&out, &tracer)));
                    (alt, out)
                }
                Err(_) => {
                    server.end_checkpoint();
                    init.restore(server);
                    return Err(first_err);
                }
            }
        }
    };
    let request = &base_request;
    let mut cycles_total = outcome.cycles;
    let mut runs = 1u64;
    let base = TraceRun {
        trace: tracer.into_trace(),
        param_atoms: request_atoms(request),
        response_atoms: response_atoms(&outcome.response.body),
    };

    // fuzzed executions (failures tolerated: a fuzzed input may legally be
    // rejected by the service; those runs simply do not contribute facts)
    let mut fuzz_runs = Vec::new();
    let mut fuzz_requests = Vec::new();
    for i in 1..=fuzz_iters {
        let mut dict = FuzzDictionary::default();
        let fz_req = fuzz_request(request, i, &mut dict);
        let mut tracer = Tracer::new();
        match server.handle_traced(&fz_req, &mut tracer) {
            Ok(out) => {
                roll_back_run(server, init, Some((&out, &tracer)));
                cycles_total += out.cycles;
                runs += 1;
                fuzz_runs.push(TraceRun {
                    trace: tracer.into_trace(),
                    param_atoms: request_atoms(&fz_req),
                    response_atoms: response_atoms(&out.response.body),
                });
                fuzz_requests.push(fz_req);
            }
            Err(_) => {
                roll_back_run(server, init, None);
                continue;
            }
        }
    }
    server.end_checkpoint();
    init.restore(server);

    let program = server.program.clone();
    let facts = AnalysisFacts::build(&program, &base, &fuzz_runs);
    let entry_exit = facts.entry_exit(&program);
    let slice = if entry_exit.is_some() {
        facts.slice(entry_exit.as_ref())
    } else {
        // No trackable parameter payload (e.g. a parameterless GET): the
        // entry point cannot be inferred, so fall back to replicating the
        // whole handler rather than an empty slice.
        program.all_stmts().iter().map(|s| s.id()).collect()
    };
    let extracted = extract_function(&program, request.verb, &request.path, &slice, &base.trace);

    // state units written by the service (union over all runs)
    let mut state_units = BTreeSet::new();
    for run in std::iter::once(&base).chain(fuzz_runs.iter()) {
        for (_, sql) in &run.trace.sql_stmts {
            if crate::facts::is_sql_write(sql) {
                if let Some(t) = crate::trace::table_of(sql) {
                    state_units.insert(StateUnit::DbTable(t));
                }
            }
        }
        for (path, written) in run.trace.files_touched() {
            if written {
                state_units.insert(StateUnit::File(path));
            }
        }
        for g in run.trace.written_globals() {
            state_units.insert(StateUnit::Global(g));
        }
    }

    // effect summary from the same runs (requests aligned with traces)
    let globals: BTreeSet<String> = server.snapshot_globals().keys().cloned().collect();
    let effect_runs: Vec<(&HttpRequest, &crate::trace::ExecutionTrace)> =
        std::iter::once((request, &base.trace))
            .chain(fuzz_requests.iter().zip(fuzz_runs.iter().map(|r| &r.trace)))
            .collect();
    let effects = derive_effects(&server.db, &globals, &effect_runs);

    Ok(ServiceProfile {
        verb: request.verb,
        path: request.path.clone(),
        entry_exit,
        slice,
        extracted,
        state_units: state_units.into_iter().collect(),
        effects,
        sample_response: outcome.response.body.clone(),
        avg_cycles: cycles_total / runs,
        request_bytes: request.size(),
        response_bytes: edgstr_net::HttpResponse::ok(outcome.response.body).size(),
        executed_stmts: base.trace.executed_stmts().len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use edgstr_lang::normalize;
    use serde_json::json;

    const APP: &str = r#"
        db.query("CREATE TABLE hits (id INT PRIMARY KEY, route TEXT)");
        var counter = 0;
        function classify(score) {
            if (score > 50) { return "high"; }
            return "low";
        }
        app.post("/score", function (req, res) {
            var s = req.body.score;
            counter = counter + 1;
            db.query("INSERT INTO hits VALUES (" + counter + ", '/score')");
            var label = classify(s);
            res.send({ label: label, nth: counter });
        });
    "#;

    fn profiled() -> ServiceProfile {
        let program = normalize(&edgstr_lang::parse(APP).unwrap());
        let mut server = ServerProcess::from_program(program);
        server.init().unwrap();
        let init = InitState::capture(&server);
        let req = HttpRequest::post("/score", json!({"score": 87}), vec![]);
        profile_service(&mut server, &init, &req, 3).unwrap()
    }

    #[test]
    fn profile_identifies_state_units() {
        let p = profiled();
        assert!(p
            .state_units
            .contains(&StateUnit::DbTable("hits".to_string())));
        assert!(p
            .state_units
            .contains(&StateUnit::Global("counter".to_string())));
    }

    #[test]
    fn profile_extracts_function_with_support() {
        let p = profiled();
        let ex = p.extracted.expect("extraction succeeds");
        assert_eq!(ex.name, "ftn_score");
        assert_eq!(ex.support.len(), 1, "classify should be support");
        assert!(p.executed_stmts > 3);
        assert!(p.avg_cycles > 0);
    }

    #[test]
    fn profile_restores_server_state() {
        let program = normalize(&edgstr_lang::parse(APP).unwrap());
        let mut server = ServerProcess::from_program(program);
        server.init().unwrap();
        let init = InitState::capture(&server);
        let req = HttpRequest::post("/score", json!({"score": 10}), vec![]);
        profile_service(&mut server, &init, &req, 2).unwrap();
        // after profiling, the counter global is back to 0
        assert_eq!(server.global_json("counter"), Some(json!(0)));
    }

    #[test]
    fn profile_entry_exit_present_for_parameterized_service() {
        let p = profiled();
        let ee = p.entry_exit.expect("entry/exit inferred");
        assert!(p.slice.contains(&ee.exit));
    }
}
