//! Init-state capture and checkpoint/restore isolation (§III-C).
//!
//! EdgStr checkpoints the server's state after `init` so that profiling
//! executions can be replayed from a fixed state:
//! `init, save "init", exec_i, restore "init", exec_{i+1}, restore "init", …`

use crate::server::ServerProcess;
use edgstr_lang::Value;
use edgstr_sql::Snapshot as DbSnapshot;
use edgstr_vfs::FsSnapshot;
use serde_json::Value as Json;
use std::collections::BTreeMap;
use std::fmt;

/// One replicated unit of server state, as presented to the developer in
/// the Consult Developer step (§III-D).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub enum StateUnit {
    /// A database table (wrapped into `CRDT-Table`).
    DbTable(String),
    /// A file (wrapped into `CRDT-Files`).
    File(String),
    /// A global program variable (wrapped into `CRDT-JSON`).
    Global(String),
}

impl fmt::Display for StateUnit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StateUnit::DbTable(t) => write!(f, "database table '{t}'"),
            StateUnit::File(p) => write!(f, "file '{p}'"),
            StateUnit::Global(g) => write!(f, "global variable '{g}'"),
        }
    }
}

/// The checkpointed `init` state of a server process.
#[derive(Debug, Clone)]
pub struct InitState {
    pub db: DbSnapshot,
    pub fs: FsSnapshot,
    pub globals: BTreeMap<String, Value>,
}

impl InitState {
    /// Capture the state of `server` (call after [`ServerProcess::init`]).
    pub fn capture(server: &ServerProcess) -> InitState {
        InitState {
            db: server.db.snapshot(),
            fs: server.fs.snapshot(),
            globals: server.snapshot_globals(),
        }
    }

    /// Restore `server` to this checkpoint.
    pub fn restore(&self, server: &mut ServerProcess) {
        server.db.restore(&self.db);
        server.fs.restore(&self.fs);
        server.restore_globals(&self.globals);
    }

    /// Total bytes of the state — the `S_app` column of Table II: what a
    /// cross-ISA offloading system would synchronize (whole program state).
    pub fn byte_size(&self) -> usize {
        let globals: usize = self.globals.values().map(Value::wire_size).sum();
        self.db.byte_size() + self.fs.byte_size() + globals
    }

    /// Globals as JSON (for CRDT-JSON initialization).
    pub fn globals_json(&self) -> Json {
        let mut m = serde_json::Map::new();
        for (k, v) in &self.globals {
            m.insert(k.clone(), v.to_json());
        }
        Json::Object(m)
    }

    /// Database tables as JSON (`table → pk → row`), for CRDT-Table
    /// initialization.
    pub fn db_json(&self) -> Json {
        self.db.to_json()
    }
}

/// A `Send + Sync` form of [`InitState`] for shipping a replica seed
/// across threads.
///
/// [`Value`] is deliberately thread-owned (its interior is `Rc`-based for
/// the VM hot path), so globals travel here in their JSON view — the same
/// representation CRDT-JSON replication already ships them in — and are
/// rebuilt into values on the receiving thread. Function/native globals
/// are never captured ([`ServerProcess::snapshot_globals`] filters them),
/// so the round-trip is lossless for everything a snapshot can hold.
#[derive(Debug, Clone)]
pub struct InitSeed {
    pub db: DbSnapshot,
    pub fs: FsSnapshot,
    pub globals: Json,
}

impl InitSeed {
    /// Capture the Send-safe view of `state`.
    pub fn from_state(state: &InitState) -> InitSeed {
        InitSeed {
            db: state.db.clone(),
            fs: state.fs.clone(),
            globals: state.globals_json(),
        }
    }

    /// Rebuild a thread-local [`InitState`] (called on the owning thread).
    pub fn to_state(&self) -> InitState {
        let globals = self
            .globals
            .as_object()
            .map(|m| {
                m.iter()
                    .map(|(k, v)| (k.clone(), Value::from_json(v)))
                    .collect()
            })
            .unwrap_or_default();
        InitState {
            db: self.db.clone(),
            fs: self.fs.clone(),
            globals,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use edgstr_net::HttpRequest;
    use serde_json::json;

    const APP: &str = r#"
        db.query("CREATE TABLE kv (k TEXT PRIMARY KEY, v TEXT)");
        db.query("INSERT INTO kv VALUES ('greeting', 'hello')");
        fs.writeFile("/seed.txt", "seed");
        var epoch = 1;
        app.post("/set", function (req, res) {
            db.query("UPDATE kv SET v = '" + req.body.v + "' WHERE k = 'greeting'");
            fs.writeFile("/seed.txt", req.body.v);
            epoch = epoch + 1;
            res.send({ epoch: epoch });
        });
    "#;

    fn server() -> ServerProcess {
        let mut s = ServerProcess::from_source(APP).unwrap();
        s.init().unwrap();
        s
    }

    #[test]
    fn capture_restores_all_three_state_kinds() {
        let mut s = server();
        let init = InitState::capture(&s);
        s.handle(&HttpRequest::post("/set", json!({"v": "bye"}), vec![]))
            .unwrap();
        // state changed
        assert_eq!(s.fs.peek("/seed.txt"), Some(&b"bye"[..]));
        assert_eq!(s.global_json("epoch"), Some(json!(2)));
        init.restore(&mut s);
        assert_eq!(s.fs.peek("/seed.txt"), Some(&b"seed"[..]));
        assert_eq!(s.global_json("epoch"), Some(json!(1)));
        let out = s.db.exec("SELECT v FROM kv WHERE k = 'greeting'").unwrap();
        match out {
            edgstr_sql::SqlResult::Rows { rows, .. } => {
                assert_eq!(rows[0][0], edgstr_sql::SqlValue::Text("hello".into()));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn repeated_executions_from_fixed_state_are_identical() {
        let mut s = server();
        let init = InitState::capture(&s);
        let req = HttpRequest::post("/set", json!({"v": "x"}), vec![]);
        let r1 = s.handle(&req).unwrap().response.body;
        init.restore(&mut s);
        let r2 = s.handle(&req).unwrap().response.body;
        assert_eq!(r1, r2, "state isolation must make executions reproducible");
    }

    #[test]
    fn byte_size_counts_everything() {
        let s = server();
        let init = InitState::capture(&s);
        assert!(init.byte_size() > 0);
        assert!(init.db.byte_size() > 0);
        assert!(init.fs.byte_size() > 0);
    }

    #[test]
    fn json_views() {
        let s = server();
        let init = InitState::capture(&s);
        assert_eq!(init.globals_json()["epoch"], json!(1));
        assert_eq!(init.db_json()["kv"]["greeting"]["v"], json!("hello"));
    }

    #[test]
    fn state_unit_display() {
        assert_eq!(
            StateUnit::DbTable("kv".into()).to_string(),
            "database table 'kv'"
        );
        assert_eq!(StateUnit::File("/a".into()).to_string(), "file '/a'");
        assert_eq!(
            StateUnit::Global("epoch".into()).to_string(),
            "global variable 'epoch'"
        );
    }
}
