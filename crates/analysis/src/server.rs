//! The simulated Node.js server process: a NodeScript program bound to a
//! SQL database, a virtual file system, an HTTP route table, and compute
//! host functions (the TensorFlow analog).
//!
//! [`ServerProcess`] is used in two roles: `edgstr-analysis` drives it to
//! profile services (§III-B), and `edgstr-runtime` uses the same type as
//! the live cloud server and edge replicas.

use edgstr_lang::{
    compile, parse, Host, HostOutcome, Instrument, Interpreter, NoopInstrument, Program,
    RuntimeError, Value, Vm,
};
use edgstr_net::{HttpRequest, HttpResponse, Verb};
use edgstr_sql::{RowEffect, SqlDb, SqlResult, SqlValue};
use edgstr_vfs::VirtualFs;
use serde_json::Value as Json;
use std::collections::BTreeMap;
use std::fmt;
use std::rc::Rc;

/// How a [`ServerProcess`] executes NodeScript.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecMode {
    /// Slot-resolved bytecode on the register-free VM (the default): the
    /// program is compiled once at deploy time and globals live in a
    /// persistent indexed store.
    #[default]
    Compiled,
    /// The original tree-walking interpreter, kept as the reference
    /// implementation for differential testing and `--reference` benches.
    TreeWalking,
}

/// The native objects every server program can touch.
const NATIVE_NAMES: [&str; 9] = [
    "app", "db", "fs", "res", "tensor", "JSON", "Math", "util", "console",
];

/// A registered HTTP route.
#[derive(Debug, Clone)]
pub struct Route {
    pub verb: Verb,
    pub path: String,
    pub handler: Value,
}

/// Error raised while running a server program or handling a request.
#[derive(Debug, Clone, PartialEq)]
pub enum ServerError {
    /// NodeScript parse failure.
    Parse(String),
    /// Runtime failure inside the service (surfaced to the proxy's
    /// failure-forwarding logic).
    Runtime(String),
    /// No route matches the request.
    NoSuchRoute { verb: Verb, path: String },
    /// Handler finished without calling `res.send`.
    NoResponse,
}

impl fmt::Display for ServerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServerError::Parse(m) => write!(f, "parse error: {m}"),
            ServerError::Runtime(m) => write!(f, "runtime error: {m}"),
            ServerError::NoSuchRoute { verb, path } => {
                write!(f, "no route for {verb} {path}")
            }
            ServerError::NoResponse => write!(f, "handler sent no response"),
        }
    }
}

impl std::error::Error for ServerError {}

impl From<RuntimeError> for ServerError {
    fn from(e: RuntimeError) -> Self {
        ServerError::Runtime(e.to_string())
    }
}

/// Outcome of handling one request.
#[derive(Debug, Clone)]
pub struct HandleOutcome {
    pub response: HttpResponse,
    /// Virtual CPU cycles the request consumed.
    pub cycles: u64,
    /// Database row effects produced (for CRDT-Table mirroring).
    pub row_effects: Vec<RowEffect>,
    /// Files written (for CRDT-Files mirroring): `(path, contents)`.
    pub file_writes: Vec<(String, Vec<u8>)>,
    /// Global variables written (for CRDT-JSON mirroring).
    pub global_writes: Vec<String>,
}

/// Cycle cost model for host functions.
mod cost {
    /// Fixed cost of dispatching any host call.
    pub const HOST_BASE: u64 = 2_000;
    /// Per-byte cost of file I/O.
    pub const FILE_PER_BYTE: u64 = 2;
    /// Fixed cost of a SQL statement.
    pub const SQL_BASE: u64 = 60_000;
    /// Per-row cost of SQL scans.
    pub const SQL_PER_ROW: u64 = 3_000;
    /// Fixed cost of loading/binding a model.
    pub const INFER_BASE: u64 = 40_000_000;
    /// Per-input-byte cost of inference (CNN-style compute).
    pub const INFER_PER_BYTE: u64 = 900;
}

struct ServerHost<'a> {
    db: &'a mut SqlDb,
    fs: &'a mut VirtualFs,
    routes: &'a mut Vec<Route>,
    response: &'a mut Option<HttpResponse>,
    status: &'a mut u16,
    row_effects: &'a mut Vec<RowEffect>,
    file_writes: &'a mut Vec<(String, Vec<u8>)>,
    logs: &'a mut Vec<String>,
    tick: &'a mut u64,
    fail_calls: &'a [String],
}

impl ServerHost<'_> {
    fn register(&mut self, verb: Verb, args: &[Value]) -> Result<HostOutcome, String> {
        let path = args
            .first()
            .and_then(|v| v.as_str().map(str::to_string))
            .ok_or("app route registration needs a path string")?;
        let handler = args.get(1).cloned().ok_or("app route needs a handler")?;
        if !matches!(handler, Value::Function(_)) {
            return Err("route handler must be a function".into());
        }
        self.routes.retain(|r| !(r.verb == verb && r.path == path));
        self.routes.push(Route {
            verb,
            path,
            handler,
        });
        Ok(HostOutcome::cheap(Value::Null))
    }
}

impl Host for ServerHost<'_> {
    fn call(&mut self, name: &str, args: &[Value]) -> Result<HostOutcome, String> {
        if self.fail_calls.iter().any(|f| f == name) {
            return Err(format!("injected failure in host call '{name}'"));
        }
        match name {
            "app.get" => self.register(Verb::Get, args),
            "app.post" => self.register(Verb::Post, args),
            "app.put" => self.register(Verb::Put, args),
            "app.delete" => self.register(Verb::Delete, args),
            "app.listen" => Ok(HostOutcome::cheap(Value::Null)),
            "db.query" => {
                let sql = args
                    .first()
                    .and_then(|v| v.as_str())
                    .ok_or("db.query needs a SQL string")?;
                let (result, effects) = self
                    .db
                    .exec_with_effects(sql)
                    .map_err(|e| format!("SQL error: {e}"))?;
                self.row_effects.extend(effects);
                let (value, scanned) = rows_value(&result);
                Ok(HostOutcome::with_cycles(
                    value,
                    cost::SQL_BASE + cost::SQL_PER_ROW * scanned.max(1),
                ))
            }
            "fs.readFile" => {
                let path = args
                    .first()
                    .and_then(|v| v.as_str())
                    .ok_or("fs.readFile needs a path")?;
                let data = self.fs.read(path).map_err(|e| e.to_string())?.to_vec();
                let cycles = cost::HOST_BASE + cost::FILE_PER_BYTE * data.len() as u64;
                Ok(HostOutcome::with_cycles(Value::bytes(data), cycles))
            }
            "fs.writeFile" => {
                let path = args
                    .first()
                    .and_then(|v| v.as_str().map(str::to_string))
                    .ok_or("fs.writeFile needs a path")?;
                let data = match args.get(1) {
                    Some(Value::Bytes(b)) => b.to_vec(),
                    Some(Value::Str(s)) => s.as_bytes().to_vec(),
                    Some(other) => other.to_string().into_bytes(),
                    None => return Err("fs.writeFile needs data".into()),
                };
                let cycles = cost::HOST_BASE + cost::FILE_PER_BYTE * data.len() as u64;
                self.fs.write(path.clone(), data.clone());
                self.file_writes.push((path, data));
                Ok(HostOutcome::with_cycles(Value::Null, cycles))
            }
            "fs.exists" => {
                let path = args
                    .first()
                    .and_then(|v| v.as_str())
                    .ok_or("fs.exists needs a path")?;
                Ok(HostOutcome::cheap(Value::Bool(self.fs.contains(path))))
            }
            "res.send" => {
                let value = args.first().cloned().unwrap_or(Value::Null);
                *self.response = Some(HttpResponse {
                    status: *self.status,
                    body: value.to_json(),
                });
                Ok(HostOutcome::cheap(Value::Null))
            }
            "res.status" => {
                let code = args
                    .first()
                    .and_then(Value::as_num)
                    .ok_or("res.status needs a number")? as u16;
                *self.status = code;
                Ok(HostOutcome::cheap(Value::Null))
            }
            "tensor.infer" => {
                // Deterministic pseudo-inference: derive "detections" from a
                // content hash of the input. Exercises the same code path as
                // the paper's TensorFlow object-detection service while
                // remaining reproducible.
                let model = args.first().and_then(|v| v.as_str()).unwrap_or("default");
                // hash the payload in place — no copy of the (potentially
                // multi-megabyte) input tensor
                let (h, input_len) = match args.get(1) {
                    Some(Value::Bytes(b)) => (edgstr_lang::fnv1a(b), b.len()),
                    Some(other) => {
                        let bytes = other.to_string().into_bytes();
                        (edgstr_lang::fnv1a(&bytes), bytes.len())
                    }
                    None => (edgstr_lang::fnv1a(&[]), 0),
                };
                let n = (h % 4 + 1) as usize;
                let labels = ["person", "car", "dog", "bicycle", "chair", "bottle"];
                let detections: Vec<Json> = (0..n)
                    .map(|i| {
                        let hi = h.rotate_left((i * 13) as u32);
                        serde_json::json!({
                            "label": labels[(hi % labels.len() as u64) as usize],
                            "score": ((hi % 50) as f64 + 50.0) / 100.0,
                            "box": [
                                (hi % 100) as f64, ((hi >> 8) % 100) as f64,
                                ((hi >> 16) % 100 + 100) as f64, ((hi >> 24) % 100 + 100) as f64,
                            ],
                        })
                    })
                    .collect();
                let result = serde_json::json!({ "model": model, "detections": detections });
                let cycles = cost::INFER_BASE + cost::INFER_PER_BYTE * input_len as u64;
                Ok(HostOutcome::with_cycles(Value::from_json(&result), cycles))
            }
            "JSON.stringify" => {
                let v = args.first().cloned().unwrap_or(Value::Null);
                Ok(HostOutcome::cheap(Value::str(v.to_json().to_string())))
            }
            "JSON.parse" => {
                let s = args
                    .first()
                    .and_then(|v| v.as_str())
                    .ok_or("JSON.parse needs a string")?;
                let j: Json =
                    serde_json::from_str(s).map_err(|e| format!("JSON parse error: {e}"))?;
                Ok(HostOutcome::cheap(Value::from_json(&j)))
            }
            "Math.floor" | "Math.round" | "Math.ceil" | "Math.abs" | "Math.sqrt" => {
                let n = args
                    .first()
                    .and_then(Value::as_num)
                    .ok_or_else(|| format!("{name} needs a number"))?;
                let r = match name {
                    "Math.floor" => n.floor(),
                    "Math.round" => n.round(),
                    "Math.ceil" => n.ceil(),
                    "Math.abs" => n.abs(),
                    _ => n.sqrt(),
                };
                Ok(HostOutcome::cheap(Value::Num(r)))
            }
            "Math.min" | "Math.max" => {
                let nums: Vec<f64> = args.iter().filter_map(Value::as_num).collect();
                let r = if name == "Math.min" {
                    nums.iter().cloned().fold(f64::INFINITY, f64::min)
                } else {
                    nums.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
                };
                Ok(HostOutcome::cheap(Value::Num(r)))
            }
            "Math.pow" => {
                let a = args.first().and_then(Value::as_num).unwrap_or(0.0);
                let b = args.get(1).and_then(Value::as_num).unwrap_or(0.0);
                Ok(HostOutcome::cheap(Value::Num(a.powf(b))))
            }
            "util.blob" => {
                // deterministic synthetic binary data (model weights, map
                // tiles, seed corpora) — the stand-in for the large assets
                // real subjects load at init
                let size = args
                    .first()
                    .and_then(Value::as_num)
                    .map(|n| n as usize)
                    .unwrap_or(0)
                    .min(64 * 1024 * 1024);
                let seed = args
                    .get(1)
                    .and_then(Value::as_num)
                    .map(|n| n as u64)
                    .unwrap_or(1);
                let mut out = Vec::with_capacity(size);
                let mut x = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).max(1);
                while out.len() < size {
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    out.extend_from_slice(&x.to_le_bytes());
                }
                out.truncate(size);
                let cycles = cost::HOST_BASE + out.len() as u64 / 8;
                Ok(HostOutcome::with_cycles(Value::bytes(out), cycles))
            }
            "util.hash" => {
                let bytes = match args.first() {
                    Some(Value::Bytes(b)) => b.to_vec(),
                    Some(other) => other.to_string().into_bytes(),
                    None => Vec::new(),
                };
                Ok(HostOutcome::cheap(Value::Num(
                    (edgstr_lang::fnv1a(&bytes) % 1_000_000_007) as f64,
                )))
            }
            "util.tick" => {
                *self.tick += 1;
                Ok(HostOutcome::cheap(Value::Num(*self.tick as f64)))
            }
            "console.log" => {
                let line = args
                    .iter()
                    .map(|v| v.to_string())
                    .collect::<Vec<_>>()
                    .join(" ");
                self.logs.push(line);
                Ok(HostOutcome::cheap(Value::Null))
            }
            other => Err(format!("unknown host function '{other}'")),
        }
    }

    fn native_names(&self) -> Vec<String> {
        NATIVE_NAMES.iter().map(|s| s.to_string()).collect()
    }
}

/// A simulated server process: program + state + routes.
#[derive(Debug)]
pub struct ServerProcess {
    pub program: Program,
    pub db: SqlDb,
    pub fs: VirtualFs,
    mode: ExecMode,
    /// The compiled execution engine (`Some` iff `mode == Compiled`). The
    /// program is lowered exactly once, at construction; globals live in
    /// the VM's indexed store.
    vm: Option<Vm>,
    /// Globals for tree-walking mode (unused in compiled mode).
    globals: BTreeMap<String, Value>,
    /// Deep snapshot backing the checkpoint API in tree-walking mode.
    tree_checkpoint: Option<BTreeMap<String, Value>>,
    routes: Vec<Route>,
    logs: Vec<String>,
    tick: u64,
    fail_calls: Vec<String>,
    init_cycles: u64,
}

impl ServerProcess {
    /// Parse `source` and build an un-initialized process.
    ///
    /// # Errors
    ///
    /// Returns [`ServerError::Parse`] on invalid NodeScript.
    pub fn from_source(source: &str) -> Result<ServerProcess, ServerError> {
        ServerProcess::from_source_with_mode(source, ExecMode::default())
    }

    /// [`ServerProcess::from_source`] with an explicit execution mode.
    ///
    /// # Errors
    ///
    /// Returns [`ServerError::Parse`] on invalid NodeScript.
    pub fn from_source_with_mode(
        source: &str,
        mode: ExecMode,
    ) -> Result<ServerProcess, ServerError> {
        let program = parse(source).map_err(|e| ServerError::Parse(e.to_string()))?;
        Ok(ServerProcess::from_program_with_mode(program, mode))
    }

    /// Build from an already-parsed (possibly transformed) program.
    pub fn from_program(program: Program) -> ServerProcess {
        ServerProcess::from_program_with_mode(program, ExecMode::default())
    }

    /// [`ServerProcess::from_program`] with an explicit execution mode. In
    /// compiled mode, lowering happens here — once per deploy, not per
    /// request.
    pub fn from_program_with_mode(program: Program, mode: ExecMode) -> ServerProcess {
        let vm = match mode {
            ExecMode::Compiled => {
                let natives: Vec<String> = NATIVE_NAMES.iter().map(|s| s.to_string()).collect();
                Some(Vm::new(Rc::new(compile(&program)), &natives))
            }
            ExecMode::TreeWalking => None,
        };
        ServerProcess {
            program,
            db: SqlDb::new(),
            fs: VirtualFs::new(),
            mode,
            vm,
            globals: BTreeMap::new(),
            tree_checkpoint: None,
            routes: Vec::new(),
            logs: Vec::new(),
            tick: 0,
            fail_calls: Vec::new(),
            init_cycles: 0,
        }
    }

    /// The execution mode this process was built with.
    pub fn mode(&self) -> ExecMode {
        self.mode
    }

    /// Run the program's top-level statements (the server `init` phase,
    /// §III-B): creates tables, loads files, registers routes.
    ///
    /// # Errors
    ///
    /// Propagates runtime failures.
    pub fn init(&mut self) -> Result<(), ServerError> {
        self.init_traced(&mut NoopInstrument)
    }

    /// [`ServerProcess::init`] with an instrumentation hook attached.
    ///
    /// # Errors
    ///
    /// Propagates runtime failures.
    pub fn init_traced(&mut self, tracer: &mut dyn Instrument) -> Result<(), ServerError> {
        let mut response = None;
        let mut status = 200u16;
        let mut row_effects = Vec::new();
        let mut file_writes = Vec::new();
        let mut host = ServerHost {
            db: &mut self.db,
            fs: &mut self.fs,
            routes: &mut self.routes,
            response: &mut response,
            status: &mut status,
            row_effects: &mut row_effects,
            file_writes: &mut file_writes,
            logs: &mut self.logs,
            tick: &mut self.tick,
            fail_calls: &[],
        };
        if let Some(vm) = &mut self.vm {
            self.init_cycles = vm.run_top(&mut host, tracer)?;
        } else {
            let mut interp = Interpreter::new(&mut host);
            interp.set_globals(self.globals.clone());
            interp.run_program(&self.program, tracer)?;
            self.init_cycles = interp.cycles();
            self.globals = interp.globals().clone();
        }
        Ok(())
    }

    /// Handle one HTTP request by invoking the matching route handler.
    ///
    /// # Errors
    ///
    /// Returns [`ServerError`] on missing routes, runtime failures
    /// (including injected ones), or handlers that send no response.
    pub fn handle(&mut self, req: &HttpRequest) -> Result<HandleOutcome, ServerError> {
        self.handle_traced(req, &mut NoopInstrument)
    }

    /// [`ServerProcess::handle`] with an instrumentation hook attached.
    ///
    /// # Errors
    ///
    /// As for [`ServerProcess::handle`].
    pub fn handle_traced(
        &mut self,
        req: &HttpRequest,
        tracer: &mut dyn Instrument,
    ) -> Result<HandleOutcome, ServerError> {
        let route = self
            .routes
            .iter()
            .find(|r| r.verb == req.verb && r.path == req.path)
            .cloned()
            .ok_or_else(|| ServerError::NoSuchRoute {
                verb: req.verb,
                path: req.path.clone(),
            })?;
        let req_value = request_value(req);
        let mut response = None;
        let mut status = 200u16;
        let mut row_effects = Vec::new();
        let mut file_writes = Vec::new();
        let fail_calls = self.fail_calls.clone();
        let mut host = ServerHost {
            db: &mut self.db,
            fs: &mut self.fs,
            routes: &mut self.routes,
            response: &mut response,
            status: &mut status,
            row_effects: &mut row_effects,
            file_writes: &mut file_writes,
            logs: &mut self.logs,
            tick: &mut self.tick,
            fail_calls: &fail_calls,
        };
        let handler_args = vec![req_value, Value::Native("res".into())];
        let (result, cycles, global_writes) = if let Some(vm) = &mut self.vm {
            // compiled path: no per-request interpreter setup or globals
            // copy — the handler runs directly against the persistent store
            vm.clear_bind_log();
            let result = vm.call_value(&route.handler, handler_args, &mut host, tracer);
            // globals created during the request persist (JS semantics)
            let global_writes = vm.logged_newly_bound();
            match result {
                Ok((_, cycles)) => (Ok(()), cycles, global_writes),
                Err(e) => (Err(e), 0, global_writes),
            }
        } else {
            let globals_before: Vec<String> = self.globals.keys().cloned().collect();
            let mut interp = Interpreter::new(&mut host);
            interp.set_globals(self.globals.clone());
            let result = interp.call_closure(&route.handler, handler_args, tracer);
            let cycles = interp.cycles();
            let new_globals = interp.globals().clone();
            // globals created during the request persist (JS semantics)
            let global_writes: Vec<String> = new_globals
                .keys()
                .filter(|k| !globals_before.contains(k))
                .cloned()
                .collect();
            self.globals = new_globals;
            (result.map(|_| ()), cycles, global_writes)
        };
        result?;
        let response = response.ok_or(ServerError::NoResponse)?;
        Ok(HandleOutcome {
            response,
            cycles,
            row_effects,
            file_writes,
            global_writes,
        })
    }

    /// The registered routes.
    pub fn routes(&self) -> &[Route] {
        &self.routes
    }

    /// Look up a route by verb and path.
    pub fn route(&self, verb: Verb, path: &str) -> Option<&Route> {
        self.routes
            .iter()
            .find(|r| r.verb == verb && r.path == path)
    }

    /// Deep-copied snapshot of mutable global state (functions and natives
    /// excluded).
    pub fn snapshot_globals(&self) -> BTreeMap<String, Value> {
        if let Some(vm) = &self.vm {
            return vm.snapshot_globals();
        }
        self.globals
            .iter()
            .filter(|(_, v)| !matches!(v, Value::Function(_) | Value::Native(_)))
            .map(|(k, v)| (k.clone(), v.deep_clone()))
            .collect()
    }

    /// Restore globals previously captured by
    /// [`ServerProcess::snapshot_globals`].
    pub fn restore_globals(&mut self, saved: &BTreeMap<String, Value>) {
        if let Some(vm) = &mut self.vm {
            vm.restore_globals(saved);
            return;
        }
        for (k, v) in saved {
            self.globals.insert(k.clone(), v.deep_clone());
        }
    }

    /// Mark the current globals as a rollback point for the journaled
    /// checkpoint API. While armed, the compiled engine records copy-on-
    /// write undo entries for captured state instead of requiring callers
    /// to take deep snapshots up front.
    pub fn begin_checkpoint(&mut self) {
        if let Some(vm) = &mut self.vm {
            vm.begin_checkpoint();
        } else {
            self.tree_checkpoint = Some(self.snapshot_globals());
        }
    }

    /// Roll mutable globals back to the [`ServerProcess::begin_checkpoint`]
    /// point. The checkpoint stays armed, so a sequence of executions can
    /// each be rolled back in turn. No-op when no checkpoint is armed.
    pub fn rollback_checkpoint(&mut self) {
        if let Some(vm) = &mut self.vm {
            vm.rollback_checkpoint();
        } else if let Some(saved) = self.tree_checkpoint.take() {
            self.restore_globals(&saved);
            self.tree_checkpoint = Some(saved);
        }
    }

    /// Disarm the checkpoint, keeping the current state.
    pub fn end_checkpoint(&mut self) {
        if let Some(vm) = &mut self.vm {
            vm.end_checkpoint();
        }
        self.tree_checkpoint = None;
    }

    /// Read one global as JSON (for assertions and CRDT mirroring).
    pub fn global_json(&self, name: &str) -> Option<Json> {
        if let Some(vm) = &self.vm {
            return vm.get_global(name).map(|v| v.to_json());
        }
        self.globals.get(name).map(Value::to_json)
    }

    /// Set a global from JSON (CRDT inbound application).
    pub fn set_global_json(&mut self, name: &str, value: &Json) {
        if let Some(vm) = &mut self.vm {
            vm.set_global(name, Value::from_json(value));
            return;
        }
        self.globals
            .insert(name.to_string(), Value::from_json(value));
    }

    /// Names of mutable (non-function) globals.
    pub fn mutable_global_names(&self) -> Vec<String> {
        let globals;
        let map = if let Some(vm) = &self.vm {
            globals = vm.globals_map();
            &globals
        } else {
            &self.globals
        };
        map.iter()
            .filter(|(_, v)| !matches!(v, Value::Function(_) | Value::Native(_)))
            .map(|(k, _)| k.clone())
            .collect()
    }

    /// Inject failures: any host call whose dotted name is in `calls`
    /// raises a runtime error (exercises the proxy's failure forwarding).
    pub fn inject_failures(&mut self, calls: Vec<String>) {
        self.fail_calls = calls;
    }

    /// Clear injected failures.
    pub fn clear_failures(&mut self) {
        self.fail_calls.clear();
    }

    /// `console.log` output accumulated so far.
    pub fn logs(&self) -> &[String] {
        &self.logs
    }

    /// Cycles consumed by the init phase.
    pub fn init_cycles(&self) -> u64 {
        self.init_cycles
    }
}

/// Build the `req` object handed to route handlers.
pub fn request_value(req: &HttpRequest) -> Value {
    let mut fields: Vec<(String, Value)> = vec![
        ("path".to_string(), Value::str(req.path.clone())),
        ("method".to_string(), Value::str(req.verb.to_string())),
        ("params".to_string(), Value::from_json(&req.params)),
        ("query".to_string(), Value::from_json(&req.params)),
    ];
    let mut body_fields: Vec<(String, Value)> = Vec::new();
    if !req.body.is_empty() {
        // one copy of the payload, shared by both aliases
        let bytes: std::rc::Rc<[u8]> = std::rc::Rc::from(req.body.as_slice());
        body_fields.push(("img".to_string(), Value::Bytes(std::rc::Rc::clone(&bytes))));
        body_fields.push(("data".to_string(), Value::Bytes(bytes)));
    }
    if let Json::Object(m) = &req.params {
        for (k, v) in m {
            body_fields.push((k.clone(), Value::from_json(v)));
        }
    }
    fields.push(("body".to_string(), Value::object(body_fields)));
    Value::object(fields)
}

/// One SQL cell as a script value — the direct equivalent of
/// `Value::from_json(&SqlValue::to_json(..))` without the intermediate
/// JSON allocation.
fn sql_cell_value(v: &SqlValue) -> Value {
    match v {
        SqlValue::Null => Value::Null,
        SqlValue::Int(i) => Value::Num(*i as f64),
        // non-finite reals have no JSON representation and surface as null
        SqlValue::Real(r) if r.is_finite() => Value::Num(*r),
        SqlValue::Real(_) => Value::Null,
        SqlValue::Text(s) => Value::str(s.clone()),
        SqlValue::Blob(_) => Value::from_json(&v.to_json()),
    }
}

/// `SELECT` output as the array-of-row-objects value `db.query` returns,
/// plus the scanned-row count for cycle accounting.
fn rows_value(result: &SqlResult) -> (Value, u64) {
    match result {
        SqlResult::Rows { columns, rows } => {
            let vals: Vec<Value> = rows
                .iter()
                .map(|r| {
                    Value::object(
                        columns
                            .iter()
                            .zip(r.iter())
                            .map(|(c, v)| (c.clone(), sql_cell_value(v))),
                    )
                })
                .collect();
            let scanned = vals.len() as u64;
            (Value::array(vals), scanned)
        }
        _ => (Value::array(Vec::new()), 0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::json;

    const ECHO_APP: &str = r#"
        var hits = 0;
        app.get("/echo", function (req, res) {
            hits = hits + 1;
            res.send({ msg: req.params.msg, hits: hits });
        });
    "#;

    #[test]
    fn init_registers_routes() {
        let mut s = ServerProcess::from_source(ECHO_APP).unwrap();
        s.init().unwrap();
        assert_eq!(s.routes().len(), 1);
        assert!(s.route(Verb::Get, "/echo").is_some());
    }

    #[test]
    fn handle_runs_handler_and_returns_response() {
        let mut s = ServerProcess::from_source(ECHO_APP).unwrap();
        s.init().unwrap();
        let req = HttpRequest::get("/echo", json!({"msg": "hi"}));
        let out = s.handle(&req).unwrap();
        assert_eq!(out.response.status, 200);
        assert_eq!(out.response.body, json!({"msg": "hi", "hits": 1}));
        // state persists across requests
        let out2 = s.handle(&req).unwrap();
        assert_eq!(out2.response.body["hits"], json!(2));
    }

    #[test]
    fn missing_route_errors() {
        let mut s = ServerProcess::from_source(ECHO_APP).unwrap();
        s.init().unwrap();
        let err = s.handle(&HttpRequest::get("/nope", json!({}))).unwrap_err();
        assert!(matches!(err, ServerError::NoSuchRoute { .. }));
    }

    #[test]
    fn db_backed_service_reports_effects() {
        let src = r#"
            db.query("CREATE TABLE notes (id INT PRIMARY KEY, text TEXT)");
            app.post("/notes", function (req, res) {
                db.query("INSERT INTO notes VALUES (" + req.body.id + ", '" + req.body.text + "')");
                var rows = db.query("SELECT * FROM notes");
                res.send(rows);
            });
        "#;
        let mut s = ServerProcess::from_source(src).unwrap();
        s.init().unwrap();
        let out = s
            .handle(&HttpRequest::post(
                "/notes",
                json!({"id": 1, "text": "milk"}),
                vec![],
            ))
            .unwrap();
        assert_eq!(out.row_effects.len(), 1);
        assert_eq!(out.response.body[0]["text"], json!("milk"));
    }

    #[test]
    fn file_backed_service_tracks_writes() {
        let src = r#"
            app.post("/save", function (req, res) {
                fs.writeFile("/uploads/latest.bin", req.body.data);
                res.send({ saved: true });
            });
        "#;
        let mut s = ServerProcess::from_source(src).unwrap();
        s.init().unwrap();
        let out = s
            .handle(&HttpRequest::post("/save", json!({}), vec![1, 2, 3]))
            .unwrap();
        assert_eq!(out.file_writes.len(), 1);
        assert_eq!(s.fs.peek("/uploads/latest.bin"), Some(&[1u8, 2, 3][..]));
    }

    #[test]
    fn tensor_inference_is_deterministic_and_costly() {
        let src = r#"
            app.post("/predict", function (req, res) {
                var out = tensor.infer("objdet", req.body.img);
                res.send(out);
            });
        "#;
        let mut s = ServerProcess::from_source(src).unwrap();
        s.init().unwrap();
        let img = vec![7u8; 50_000];
        let a = s
            .handle(&HttpRequest::post("/predict", json!({}), img.clone()))
            .unwrap();
        let b = s
            .handle(&HttpRequest::post("/predict", json!({}), img))
            .unwrap();
        assert_eq!(a.response.body, b.response.body);
        assert!(a.cycles > 40_000_000, "inference should be expensive");
        assert!(!a.response.body["detections"].as_array().unwrap().is_empty());
    }

    #[test]
    fn globals_snapshot_restore() {
        let mut s = ServerProcess::from_source(ECHO_APP).unwrap();
        s.init().unwrap();
        let snap = s.snapshot_globals();
        s.handle(&HttpRequest::get("/echo", json!({"msg": "x"})))
            .unwrap();
        assert_eq!(s.global_json("hits"), Some(json!(1)));
        s.restore_globals(&snap);
        assert_eq!(s.global_json("hits"), Some(json!(0)));
    }

    #[test]
    fn failure_injection_propagates() {
        let src = r#"
            app.get("/work", function (req, res) {
                var out = tensor.infer("m", req.body.data);
                res.send(out);
            });
        "#;
        let mut s = ServerProcess::from_source(src).unwrap();
        s.init().unwrap();
        s.inject_failures(vec!["tensor.infer".to_string()]);
        let err = s.handle(&HttpRequest::get("/work", json!({}))).unwrap_err();
        assert!(matches!(err, ServerError::Runtime(_)));
        s.clear_failures();
        assert!(s.handle(&HttpRequest::get("/work", json!({}))).is_ok());
    }

    #[test]
    fn res_status_sets_code() {
        let src = r#"
            app.get("/teapot", function (req, res) {
                res.status(418);
                res.send({ short: true });
            });
        "#;
        let mut s = ServerProcess::from_source(src).unwrap();
        s.init().unwrap();
        let out = s.handle(&HttpRequest::get("/teapot", json!({}))).unwrap();
        assert_eq!(out.response.status, 418);
    }

    #[test]
    fn handler_without_send_errors() {
        let src = r#"app.get("/mute", function (req, res) { var x = 1; });"#;
        let mut s = ServerProcess::from_source(src).unwrap();
        s.init().unwrap();
        assert_eq!(
            s.handle(&HttpRequest::get("/mute", json!({}))).unwrap_err(),
            ServerError::NoResponse
        );
    }

    #[test]
    fn compiled_and_tree_modes_agree() {
        let src = r#"
            db.query("CREATE TABLE kv (k TEXT PRIMARY KEY, v TEXT)");
            var hits = 0;
            app.post("/put", function (req, res) {
                hits = hits + 1;
                db.query("INSERT INTO kv VALUES ('" + req.body.k + "', '" + req.body.v + "')");
                var rows = db.query("SELECT * FROM kv");
                res.send({ rows: rows, hits: hits });
            });
        "#;
        let mut compiled = ServerProcess::from_source(src).unwrap();
        let mut tree = ServerProcess::from_source_with_mode(src, ExecMode::TreeWalking).unwrap();
        assert_eq!(compiled.mode(), ExecMode::Compiled);
        assert_eq!(tree.mode(), ExecMode::TreeWalking);
        compiled.init().unwrap();
        tree.init().unwrap();
        assert_eq!(compiled.init_cycles(), tree.init_cycles());
        for i in 0..3 {
            let req = HttpRequest::post(
                "/put",
                json!({"k": format!("k{i}"), "v": format!("v{i}")}),
                vec![],
            );
            let a = compiled.handle(&req).unwrap();
            let b = tree.handle(&req).unwrap();
            assert_eq!(a.response, b.response);
            assert_eq!(a.cycles, b.cycles);
            assert_eq!(a.global_writes, b.global_writes);
            assert_eq!(a.row_effects, b.row_effects);
        }
        assert_eq!(compiled.global_json("hits"), tree.global_json("hits"));
        assert_eq!(compiled.mutable_global_names(), tree.mutable_global_names());
    }

    #[test]
    fn checkpoint_rollback_isolates_requests() {
        let mut s = ServerProcess::from_source(ECHO_APP).unwrap();
        s.init().unwrap();
        s.begin_checkpoint();
        let req = HttpRequest::get("/echo", json!({"msg": "x"}));
        let r1 = s.handle(&req).unwrap().response.body;
        assert_eq!(s.global_json("hits"), Some(json!(1)));
        s.rollback_checkpoint();
        assert_eq!(s.global_json("hits"), Some(json!(0)));
        // checkpoint stays armed: a second execution rolls back too
        let r2 = s.handle(&req).unwrap().response.body;
        assert_eq!(r1, r2);
        s.rollback_checkpoint();
        assert_eq!(s.global_json("hits"), Some(json!(0)));
        s.end_checkpoint();
        s.handle(&req).unwrap();
        assert_eq!(s.global_json("hits"), Some(json!(1)));
    }

    #[test]
    fn console_log_collected() {
        let src = r#"
            app.get("/log", function (req, res) {
                console.log("handling", req.path);
                res.send(1);
            });
        "#;
        let mut s = ServerProcess::from_source(src).unwrap();
        s.init().unwrap();
        s.handle(&HttpRequest::get("/log", json!({}))).unwrap();
        assert_eq!(s.logs(), &["handling /log".to_string()]);
    }
}
