//! HTTP-parameter fuzzing (§III-E).
//!
//! "To differentiate between the primitive type values related to the
//! analyzed service and those used by unrelated functionalities, EdgStr
//! fuzzes the HTTP messages, so the parameter `p1` becomes
//! `p1[1], …, p1[i]` and the modified messages are tracked by means of a
//! fuzzing dictionary."

use edgstr_lang::Atom;
use edgstr_net::HttpRequest;
use serde_json::Value as Json;
use std::collections::BTreeSet;

/// The fuzzing dictionary: which original atom became which fuzzed atom in
/// each iteration.
#[derive(Debug, Clone, Default)]
pub struct FuzzDictionary {
    /// `(iteration, original, fuzzed)` entries.
    pub entries: Vec<(usize, Atom, Atom)>,
}

impl FuzzDictionary {
    /// Record a substitution.
    pub fn record(&mut self, iteration: usize, original: Atom, fuzzed: Atom) {
        self.entries.push((iteration, original, fuzzed));
    }

    /// All fuzzed atoms introduced in `iteration`.
    pub fn fuzzed_atoms(&self, iteration: usize) -> BTreeSet<Atom> {
        self.entries
            .iter()
            .filter(|(i, _, _)| *i == iteration)
            .map(|(_, _, f)| f.clone())
            .collect()
    }

    /// Number of recorded substitutions.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no substitutions were recorded.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// Produce the `i`-th fuzzed variant of a request (`p1[i]` in the paper),
/// recording substitutions in `dict`. Mutations are deterministic so
/// profiling runs are reproducible.
pub fn fuzz_request(req: &HttpRequest, iteration: usize, dict: &mut FuzzDictionary) -> HttpRequest {
    let params = fuzz_json(&req.params, iteration, dict);
    let body = if req.body.is_empty() {
        Vec::new()
    } else {
        let mut b = req.body.clone();
        let mask = (iteration as u8).wrapping_mul(37).wrapping_add(11);
        for byte in b.iter_mut().take(16) {
            *byte ^= mask;
        }
        dict.record(
            iteration,
            Atom::BytesHash(edgstr_lang::fnv1a(&req.body)),
            Atom::BytesHash(edgstr_lang::fnv1a(&b)),
        );
        b
    };
    HttpRequest {
        verb: req.verb,
        path: req.path.clone(),
        params,
        body,
    }
}

/// Fuzz every scalar of a JSON value.
pub fn fuzz_params(params: &Json, iteration: usize, dict: &mut FuzzDictionary) -> Json {
    fuzz_json(params, iteration, dict)
}

fn fuzz_json(v: &Json, iteration: usize, dict: &mut FuzzDictionary) -> Json {
    match v {
        Json::String(s) => {
            let fuzzed = format!("{s}_fz{iteration}");
            dict.record(iteration, Atom::Str(s.clone()), Atom::Str(fuzzed.clone()));
            Json::String(fuzzed)
        }
        Json::Number(n) => {
            let orig = n.as_f64().unwrap_or(0.0);
            // keep integers integral so id-like parameters stay valid keys
            let fuzzed = if n.is_i64() || n.is_u64() {
                Json::from(orig as i64 + 1_000 + iteration as i64)
            } else {
                Json::from(orig + 1_000.5 + iteration as f64)
            };
            let fz = fuzzed.as_f64().unwrap_or(0.0);
            dict.record(
                iteration,
                Atom::Num(orig.to_bits()),
                Atom::Num(fz.to_bits()),
            );
            fuzzed
        }
        Json::Bool(_) | Json::Null => v.clone(),
        Json::Array(items) => Json::Array(
            items
                .iter()
                .map(|i| fuzz_json(i, iteration, dict))
                .collect(),
        ),
        Json::Object(map) => Json::Object(
            map.iter()
                .map(|(k, val)| (k.clone(), fuzz_json(val, iteration, dict)))
                .collect(),
        ),
    }
}

/// The atom fingerprint of a request's parameters and body — the set the
/// entry/exit rules intersect write-values against.
pub fn request_atoms(req: &HttpRequest) -> BTreeSet<Atom> {
    let mut atoms = BTreeSet::new();
    collect_json_atoms(&req.params, &mut atoms);
    if !req.body.is_empty() {
        atoms.insert(Atom::BytesHash(edgstr_lang::fnv1a(&req.body)));
    }
    // strings that identify the route itself are not parameters
    atoms.remove(&Atom::Str(req.path.clone()));
    atoms
}

/// The atom fingerprint of a JSON response `r_i`.
pub fn response_atoms(body: &Json) -> BTreeSet<Atom> {
    let mut atoms = BTreeSet::new();
    collect_json_atoms(body, &mut atoms);
    atoms
}

fn collect_json_atoms(v: &Json, out: &mut BTreeSet<Atom>) {
    match v {
        Json::Null => {}
        Json::Bool(b) => {
            out.insert(Atom::Bool(*b));
        }
        Json::Number(n) => {
            out.insert(Atom::Num(n.as_f64().unwrap_or(0.0).to_bits()));
        }
        Json::String(s) => {
            out.insert(Atom::Str(s.clone()));
        }
        Json::Array(items) => {
            for i in items {
                collect_json_atoms(i, out);
            }
        }
        Json::Object(map) => {
            // binary marker objects fingerprint by their hash
            if let Some(h) = map.get("$hash").and_then(Json::as_u64) {
                out.insert(Atom::BytesHash(h));
                return;
            }
            for val in map.values() {
                collect_json_atoms(val, out);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::json;

    #[test]
    fn fuzzing_mutates_strings_and_numbers() {
        let req = HttpRequest::get("/q", json!({"name": "cat", "page": 3}));
        let mut dict = FuzzDictionary::default();
        let fz = fuzz_request(&req, 1, &mut dict);
        assert_eq!(fz.params["name"], json!("cat_fz1"));
        assert_eq!(fz.params["page"], json!(1004));
        assert_eq!(dict.len(), 2);
    }

    #[test]
    fn fuzzing_is_deterministic() {
        let req = HttpRequest::post("/p", json!({"x": "v"}), vec![1, 2, 3, 4]);
        let mut d1 = FuzzDictionary::default();
        let mut d2 = FuzzDictionary::default();
        let a = fuzz_request(&req, 2, &mut d1);
        let b = fuzz_request(&req, 2, &mut d2);
        assert_eq!(a, b);
    }

    #[test]
    fn different_iterations_differ() {
        let req = HttpRequest::get("/q", json!({"s": "x"}));
        let mut dict = FuzzDictionary::default();
        let a = fuzz_request(&req, 1, &mut dict);
        let b = fuzz_request(&req, 2, &mut dict);
        assert_ne!(a.params, b.params);
        assert_eq!(dict.fuzzed_atoms(1).len(), 1);
        assert_eq!(dict.fuzzed_atoms(2).len(), 1);
    }

    #[test]
    fn body_bytes_fuzzed_and_recorded() {
        let req = HttpRequest::post("/p", json!({}), vec![9u8; 32]);
        let mut dict = FuzzDictionary::default();
        let fz = fuzz_request(&req, 1, &mut dict);
        assert_ne!(fz.body, req.body);
        assert_eq!(fz.body.len(), req.body.len());
        assert!(!dict.is_empty());
    }

    #[test]
    fn request_atoms_exclude_route_path() {
        let req = HttpRequest::get("/status", json!({"q": "/status"}));
        let atoms = request_atoms(&req);
        // the path string appears as a param value too, but the route name
        // itself is excluded once
        assert!(atoms.is_empty() || atoms.len() <= 1);
    }

    #[test]
    fn response_atoms_fingerprint_binary_markers() {
        let body = json!({"out": {"$bytes": 100, "$hash": 42}});
        let atoms = response_atoms(&body);
        assert!(atoms.contains(&Atom::BytesHash(42)));
    }

    #[test]
    fn nested_structures_fuzzed_recursively() {
        let req = HttpRequest::get("/q", json!({"filters": [{"tag": "red"}]}));
        let mut dict = FuzzDictionary::default();
        let fz = fuzz_request(&req, 1, &mut dict);
        assert_eq!(fz.params["filters"][0]["tag"], json!("red_fz1"));
    }
}
