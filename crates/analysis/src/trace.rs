//! Structured execution traces built from instrumentation events.

use edgstr_lang::{Atom, Instrument, StmtId, TraceEvent, Value};
use std::collections::BTreeSet;

/// A recorded service execution: the ordered event stream plus derived
/// views the fact generator consumes.
#[derive(Debug, Default, Clone, PartialEq)]
pub struct ExecutionTrace {
    /// Statements in dynamic execution order (with repetition).
    pub stmt_order: Vec<StmtId>,
    /// `(stmt, var, atoms-of-value)` for every read.
    pub reads: Vec<(StmtId, String, BTreeSet<Atom>)>,
    /// `(stmt, var, atoms-of-value)` for every write.
    pub writes: Vec<(StmtId, String, BTreeSet<Atom>)>,
    /// Reads and writes interleaved in event order (the RW-LOG); `true`
    /// marks a write. Dependence analysis replays this stream to find each
    /// read's last writer.
    pub rw_events: Vec<(StmtId, String, bool)>,
    /// `(stmt, function, atoms-of-args)` for every invocation.
    pub invokes: Vec<(StmtId, String, BTreeSet<Atom>)>,
    /// Statements that issued SQL, with the command text.
    pub sql_stmts: Vec<(StmtId, String)>,
    /// Statements that touched files, with the path and whether written.
    pub file_stmts: Vec<(StmtId, String, bool)>,
    /// Global variables written, with the writing statement.
    pub global_writes: Vec<(StmtId, String)>,
    /// `(call_site, decl)` pairs: user functions entered (the ACTUAL fact).
    pub actuals: Vec<(StmtId, StmtId)>,
}

impl ExecutionTrace {
    /// Statements executed (deduplicated, in first-execution order).
    pub fn executed_stmts(&self) -> Vec<StmtId> {
        let mut seen = BTreeSet::new();
        let mut out = Vec::new();
        for s in &self.stmt_order {
            if seen.insert(*s) {
                out.push(*s);
            }
        }
        out
    }

    /// Names of global variables written during the execution.
    pub fn written_globals(&self) -> Vec<String> {
        let mut out: Vec<String> = self.global_writes.iter().map(|(_, v)| v.clone()).collect();
        out.sort();
        out.dedup();
        out
    }

    /// Table names referenced by SQL statements (crude extraction from the
    /// command text, matching how EdgStr identifies database state units).
    pub fn sql_tables(&self) -> Vec<String> {
        let mut out = Vec::new();
        for (_, sql) in &self.sql_stmts {
            if let Some(t) = table_of(sql) {
                if !out.contains(&t) {
                    out.push(t);
                }
            }
        }
        out.sort();
        out
    }

    /// File paths touched, with write flags, deduplicated.
    pub fn files_touched(&self) -> Vec<(String, bool)> {
        let mut out: Vec<(String, bool)> = Vec::new();
        for (_, path, written) in &self.file_stmts {
            match out.iter_mut().find(|(p, _)| p == path) {
                Some((_, w)) => *w = *w || *written,
                None => out.push((path.clone(), *written)),
            }
        }
        out.sort();
        out
    }
}

/// Extract the first table name from a SQL command.
pub fn table_of(sql: &str) -> Option<String> {
    let lower = sql.to_ascii_lowercase();
    let words: Vec<&str> = lower.split_whitespace().collect();
    let originals: Vec<&str> = sql.split_whitespace().collect();
    for (i, w) in words.iter().enumerate() {
        if matches!(*w, "into" | "from" | "update" | "table") {
            if *w == "update" && i != 0 {
                continue;
            }
            let mut j = i + 1;
            while let Some(next) = originals.get(j) {
                let lower_next = next.to_ascii_lowercase();
                if matches!(lower_next.as_str(), "if" | "not" | "exists") {
                    j += 1;
                    continue;
                }
                let name: String = next
                    .chars()
                    .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
                    .collect();
                if !name.is_empty() {
                    return Some(name);
                }
                break;
            }
        }
    }
    None
}

/// The [`Instrument`] implementation that records an [`ExecutionTrace`].
#[derive(Debug, Default)]
pub struct Tracer {
    /// The trace being built.
    pub trace: ExecutionTrace,
    /// Stack of function declarations currently being executed.
    call_stack: Vec<StmtId>,
    /// Scratch buffer reused across events to avoid a fresh allocation for
    /// every read/write value decomposition.
    scratch: Vec<Atom>,
}

impl Tracer {
    /// Fresh tracer.
    pub fn new() -> Self {
        Tracer::default()
    }

    /// Consume the tracer, yielding the trace.
    pub fn into_trace(self) -> ExecutionTrace {
        self.trace
    }

    fn atoms_of(&mut self, v: &Value) -> BTreeSet<Atom> {
        self.scratch.clear();
        v.atoms(&mut self.scratch);
        self.scratch.drain(..).collect()
    }
}

impl Instrument for Tracer {
    fn on_event(&mut self, event: &TraceEvent) {
        match event {
            TraceEvent::StmtEnter { stmt } => self.trace.stmt_order.push(*stmt),
            TraceEvent::Read { stmt, var, value } => {
                let atoms = self.atoms_of(value);
                self.trace.reads.push((*stmt, var.clone(), atoms));
                self.trace.rw_events.push((*stmt, var.clone(), false));
            }
            TraceEvent::Write { stmt, var, value } => {
                let atoms = self.atoms_of(value);
                self.trace.writes.push((*stmt, var.clone(), atoms));
                self.trace.rw_events.push((*stmt, var.clone(), true));
            }
            TraceEvent::Invoke {
                stmt,
                func,
                args,
                ret,
            } => {
                let mut atoms = BTreeSet::new();
                for a in args {
                    atoms.extend(self.atoms_of(a));
                }
                self.trace.invokes.push((*stmt, func.clone(), atoms));
                // SQL detection: any invocation whose argument is a SQL
                // command (the paper's modified INVOKEFUNCTION callback)
                if let Some(sql) = args.first().and_then(Value::as_str) {
                    if looks_like_sql(sql) {
                        self.trace.sql_stmts.push((*stmt, sql.to_string()));
                    }
                }
                // file detection: invocations whose argument is a file path
                if func.starts_with("fs.") {
                    if let Some(path) = args.first().and_then(Value::as_str) {
                        let written = func == "fs.writeFile";
                        self.trace
                            .file_stmts
                            .push((*stmt, path.to_string(), written));
                    }
                }
                // record res.send argument atoms as a write of the
                // distinguished variable "__response" so marshal detection
                // can treat it like any other RW-LOG entry
                if func == "res.send" {
                    let mut ratoms = BTreeSet::new();
                    for a in args {
                        ratoms.extend(self.atoms_of(a));
                    }
                    ratoms.extend(self.atoms_of(ret));
                    self.trace
                        .writes
                        .push((*stmt, "__response".to_string(), ratoms));
                    self.trace
                        .rw_events
                        .push((*stmt, "__response".to_string(), true));
                }
            }
            TraceEvent::GlobalWrite { stmt, var } => {
                self.trace.global_writes.push((*stmt, var.clone()));
            }
            TraceEvent::FunctionEnter { decl, call_site } => {
                self.trace.actuals.push((*call_site, *decl));
                self.call_stack.push(*decl);
            }
        }
    }
}

/// Heuristic: does a string look like a SQL command?
pub fn looks_like_sql(s: &str) -> bool {
    let t = s.trim_start().to_ascii_lowercase();
    [
        "select", "insert", "update", "delete", "create", "drop", "begin", "start", "commit",
        "rollback",
    ]
    .iter()
    .any(|kw| t.starts_with(kw))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::ServerProcess;
    use edgstr_net::HttpRequest;
    use serde_json::json;

    #[test]
    fn table_of_extracts_names() {
        assert_eq!(
            table_of("SELECT * FROM books WHERE id = 1"),
            Some("books".into())
        );
        assert_eq!(
            table_of("INSERT INTO notes VALUES (1)"),
            Some("notes".into())
        );
        assert_eq!(table_of("UPDATE users SET a = 1"), Some("users".into()));
        assert_eq!(
            table_of("CREATE TABLE IF NOT EXISTS t (id INT)"),
            Some("t".into())
        );
        assert_eq!(table_of("ROLLBACK"), None);
    }

    #[test]
    fn looks_like_sql_heuristic() {
        assert!(looks_like_sql("SELECT 1"));
        assert!(looks_like_sql("  insert into t values (1)"));
        assert!(!looks_like_sql("/images/cat.png"));
        assert!(!looks_like_sql("hello world"));
    }

    #[test]
    fn trace_captures_sql_files_and_globals() {
        let src = r#"
            db.query("CREATE TABLE t (id INT PRIMARY KEY)");
            var counter = 0;
            app.post("/add", function (req, res) {
                counter = counter + 1;
                db.query("INSERT INTO t VALUES (" + counter + ")");
                fs.writeFile("/log.txt", "added");
                res.send({ n: counter });
            });
        "#;
        let mut s = ServerProcess::from_source(src).unwrap();
        s.init().unwrap();
        let mut tracer = Tracer::new();
        s.handle_traced(&HttpRequest::post("/add", json!({}), vec![]), &mut tracer)
            .unwrap();
        let t = tracer.into_trace();
        assert_eq!(t.sql_tables(), vec!["t".to_string()]);
        assert_eq!(t.files_touched(), vec![("/log.txt".to_string(), true)]);
        assert!(t.written_globals().contains(&"counter".to_string()));
        assert!(!t.stmt_order.is_empty());
        // the res.send write is recorded against the response variable
        assert!(t.writes.iter().any(|(_, v, _)| v == "__response"));
    }

    #[test]
    fn executed_stmts_dedup_preserves_order() {
        let t = ExecutionTrace {
            stmt_order: vec![StmtId(3), StmtId(1), StmtId(3), StmtId(2)],
            ..Default::default()
        };
        assert_eq!(t.executed_stmts(), vec![StmtId(3), StmtId(1), StmtId(2)]);
    }
}
