//! Encoding dynamic traces as datalog facts and running the paper's
//! entry/exit and dependence rules (§III-E).
//!
//! Relations:
//!
//! - `rw_param(S)` / `rw_param_fz(S, I)` — statement `S` wrote a value
//!   containing parameter atoms (the `RW-LOG` / `RW-LOG-FUZZED` facts);
//! - `resp_write(S)` / `resp_write_fz(S, I)` — `S` marshaled a response;
//! - `dep(S1, S2)` — `S1` depends on `S2` (flow, control, or `ACTUAL`
//!   call-site-to-declaration edges);
//! - `stmt_unmar(S)` / `stmt_mar(S)` — the derived `STMT-UNMAR` /
//!   `STMT-MAR` rules: a statement qualifies when it handles the payload
//!   in the base run *and in every fuzzed run* (expressed with stratified
//!   negation over `fuzz_run`);
//! - `dep_tc(S1, S2)` — transitive `STMT-DEP`.

use crate::trace::ExecutionTrace;
use edgstr_datalog::{Const, Database, Rule, RuleAtom, Term};
use edgstr_lang::{Atom, Program, Stmt, StmtId};
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// One profiled execution: the trace plus the payload fingerprints of its
/// request and response.
#[derive(Debug, Clone)]
pub struct TraceRun {
    pub trace: ExecutionTrace,
    pub param_atoms: BTreeSet<Atom>,
    pub response_atoms: BTreeSet<Atom>,
}

/// Entry/exit points of a service, as inferred by the datalog rules.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EntryExit {
    /// The unmarshaling statement (reads the parameter off the wire).
    pub entry: StmtId,
    /// The marshaling statement (the `res.send`).
    pub exit: StmtId,
    /// Variable holding the unmarshaled parameter (`v_unmar`).
    pub unmar_var: Option<String>,
    /// Variable holding the marshaled result (`v_mar`).
    pub mar_var: Option<String>,
}

/// The populated fact database plus derived analyses for one service.
#[derive(Debug)]
pub struct AnalysisFacts {
    /// The datalog database after rule evaluation.
    pub db: Database,
    base_order: Vec<StmtId>,
}

fn sid(s: StmtId) -> Const {
    Const::Int(i64::from(s.0))
}

fn stmt_of(c: &Const) -> StmtId {
    StmtId(c.as_int().unwrap_or(0) as u32)
}

impl AnalysisFacts {
    /// Build facts from the base run and fuzzed runs, then evaluate the
    /// rules to fixpoint.
    ///
    /// # Panics
    ///
    /// Panics only on internal rule errors (the rule set is statically
    /// stratifiable).
    pub fn build(program: &Program, base: &TraceRun, fuzz: &[TraceRun]) -> AnalysisFacts {
        let mut db = Database::new();

        // --- RW-LOG facts -------------------------------------------------
        for (s, var, atoms) in &base.trace.writes {
            if var != "__response" && !atoms.is_disjoint(&base.param_atoms) {
                db.add_fact("rw_param", vec![sid(*s)]);
            }
            if var == "__response" {
                db.add_fact("resp_write", vec![sid(*s)]);
            }
        }
        for (i, run) in fuzz.iter().enumerate() {
            let i = i as i64 + 1;
            db.add_fact("fuzz_run", vec![Const::Int(i)]);
            for (s, var, atoms) in &run.trace.writes {
                if var != "__response" && !atoms.is_disjoint(&run.param_atoms) {
                    db.add_fact("rw_param_fz", vec![sid(*s), Const::Int(i)]);
                }
                if var == "__response" {
                    db.add_fact("resp_write_fz", vec![sid(*s), Const::Int(i)]);
                }
            }
        }

        // --- flow dependence from RW replay (base + fuzz, unioned) --------
        let mut runs: Vec<&ExecutionTrace> = vec![&base.trace];
        runs.extend(fuzz.iter().map(|r| &r.trace));
        for trace in &runs {
            let mut last_writer: HashMap<&str, StmtId> = HashMap::new();
            for (s, var, is_write) in &trace.rw_events {
                if *is_write {
                    last_writer.insert(var.as_str(), *s);
                } else if let Some(w) = last_writer.get(var.as_str()) {
                    if w != s {
                        db.add_fact("dep", vec![sid(*s), sid(*w)]);
                    }
                }
            }
        }

        // --- control dependence from the AST -------------------------------
        for stmt in program.all_stmts() {
            match stmt {
                Stmt::If {
                    id,
                    then_block,
                    else_block,
                    ..
                } => {
                    for child in then_block.iter().chain(else_block.iter()) {
                        db.add_fact("control_dep", vec![sid(child.id()), sid(*id)]);
                    }
                }
                Stmt::While { id, body, .. } => {
                    for child in body {
                        db.add_fact("control_dep", vec![sid(child.id()), sid(*id)]);
                    }
                }
                Stmt::For {
                    id,
                    init,
                    update,
                    body,
                    ..
                } => {
                    db.add_fact("control_dep", vec![sid(init.id()), sid(*id)]);
                    db.add_fact("control_dep", vec![sid(update.id()), sid(*id)]);
                    for child in body {
                        db.add_fact("control_dep", vec![sid(child.id()), sid(*id)]);
                    }
                }
                _ => {}
            }
        }

        // --- ACTUAL facts: call sites to user-function declarations --------
        let decls = function_decls(program);
        for trace in &runs {
            for (call_site, func, _) in &trace.invokes {
                if let Some(decl) = decls.get(func.as_str()) {
                    db.add_fact("actual", vec![sid(*call_site), sid(*decl)]);
                }
            }
        }

        // --- side-effect statements (must be kept in slices) ---------------
        for trace in &runs {
            for (s, sql) in &trace.sql_stmts {
                if is_sql_write(sql) {
                    db.add_fact("effect", vec![sid(*s)]);
                }
            }
            for (s, _, written) in &trace.file_stmts {
                if *written {
                    db.add_fact("effect", vec![sid(*s)]);
                }
            }
            for (s, _) in &trace.global_writes {
                db.add_fact("effect", vec![sid(*s)]);
            }
        }

        db.evaluate(&rules())
            .expect("static rule set is well-formed");
        AnalysisFacts {
            db,
            base_order: base.trace.executed_stmts(),
        }
    }

    /// The inferred entry/exit points: first `STMT-UNMAR` statement in
    /// execution order; the `STMT-MAR` statement.
    pub fn entry_exit(&self, program: &Program) -> Option<EntryExit> {
        let unmar: BTreeSet<StmtId> = self
            .db
            .all("stmt_unmar")
            .into_iter()
            .map(|t| stmt_of(&t[0]))
            .collect();
        let mar: BTreeSet<StmtId> = self
            .db
            .all("stmt_mar")
            .into_iter()
            .map(|t| stmt_of(&t[0]))
            .collect();
        let entry = self
            .base_order
            .iter()
            .copied()
            .find(|s| unmar.contains(s))?;
        let exit = self.base_order.iter().copied().find(|s| mar.contains(s))?;
        let unmar_var = program.find(entry).and_then(|s| s.written_var());
        let mar_var = program.find(exit).and_then(|s| {
            let mut vars = Vec::new();
            s.read_vars(&mut vars);
            vars.into_iter().find(|v| v != "res")
        });
        Some(EntryExit {
            entry,
            exit,
            unmar_var,
            mar_var,
        })
    }

    /// The dependence slice: every statement the exit point transitively
    /// depends on, plus all side-effecting statements and their
    /// dependencies, plus the entry point.
    pub fn slice(&self, entry_exit: Option<&EntryExit>) -> BTreeSet<StmtId> {
        let mut seeds: BTreeSet<StmtId> = self
            .db
            .all("effect")
            .into_iter()
            .map(|t| stmt_of(&t[0]))
            .collect();
        if let Some(ee) = entry_exit {
            seeds.insert(ee.exit);
            seeds.insert(ee.entry);
        }
        let mut out = seeds.clone();
        for seed in &seeds {
            for tuple in self
                .db
                .query("dep_tc", &[Term::int(i64::from(seed.0)), Term::var("D")])
            {
                out.insert(stmt_of(&tuple[1]));
            }
        }
        out
    }

    /// Statements executed in the base run, in first-execution order.
    pub fn base_order(&self) -> &[StmtId] {
        &self.base_order
    }
}

/// Map function names to their declaration statements (including nested
/// declarations).
pub fn function_decls(program: &Program) -> BTreeMap<String, StmtId> {
    let mut out = BTreeMap::new();
    for stmt in program.all_stmts() {
        if let Stmt::Function { id, name, .. } = stmt {
            out.insert(name.clone(), *id);
        }
    }
    out
}

/// Whether a SQL command mutates table contents or schema.
pub fn is_sql_write(sql: &str) -> bool {
    let t = sql.trim_start().to_ascii_lowercase();
    ["insert", "update", "delete", "create", "drop"]
        .iter()
        .any(|kw| t.starts_with(kw))
}

/// The rule set (STMT-UNMAR, STMT-MAR, transitive STMT-DEP).
fn rules() -> Vec<Rule> {
    let v = Term::var;
    vec![
        // dep also flows through control dependence and ACTUAL edges
        Rule::new(
            RuleAtom::pos("dep", vec![v("S"), v("C")]),
            vec![RuleAtom::pos("control_dep", vec![v("S"), v("C")])],
        ),
        Rule::new(
            RuleAtom::pos("dep", vec![v("CS"), v("D")]),
            vec![RuleAtom::pos("actual", vec![v("CS"), v("D")])],
        ),
        // STMT-UNMAR: wrote the payload in the base run and in every fuzz run
        Rule::new(
            RuleAtom::pos("not_unmar", vec![v("S")]),
            vec![
                RuleAtom::pos("rw_param", vec![v("S")]),
                RuleAtom::pos("fuzz_run", vec![v("I")]),
                RuleAtom::neg("rw_param_fz", vec![v("S"), v("I")]),
            ],
        ),
        Rule::new(
            RuleAtom::pos("stmt_unmar", vec![v("S")]),
            vec![
                RuleAtom::pos("rw_param", vec![v("S")]),
                RuleAtom::neg("not_unmar", vec![v("S")]),
            ],
        ),
        // STMT-MAR: marshaled the response in the base run and every fuzz run
        Rule::new(
            RuleAtom::pos("not_mar", vec![v("S")]),
            vec![
                RuleAtom::pos("resp_write", vec![v("S")]),
                RuleAtom::pos("fuzz_run", vec![v("I")]),
                RuleAtom::neg("resp_write_fz", vec![v("S"), v("I")]),
            ],
        ),
        Rule::new(
            RuleAtom::pos("stmt_mar", vec![v("S")]),
            vec![
                RuleAtom::pos("resp_write", vec![v("S")]),
                RuleAtom::neg("not_mar", vec![v("S")]),
            ],
        ),
        // transitive STMT-DEP
        Rule::new(
            RuleAtom::pos("dep_tc", vec![v("A"), v("B")]),
            vec![RuleAtom::pos("dep", vec![v("A"), v("B")])],
        ),
        Rule::new(
            RuleAtom::pos("dep_tc", vec![v("A"), v("C")]),
            vec![
                RuleAtom::pos("dep_tc", vec![v("A"), v("B")]),
                RuleAtom::pos("dep", vec![v("B"), v("C")]),
            ],
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fuzz::{fuzz_request, request_atoms, response_atoms, FuzzDictionary};
    use crate::server::ServerProcess;
    use crate::state::InitState;
    use crate::trace::Tracer;
    use edgstr_lang::normalize;
    use edgstr_net::HttpRequest;
    use serde_json::json;

    /// Run one request with tracing, returning the run record.
    fn traced_run(server: &mut ServerProcess, req: &HttpRequest) -> TraceRun {
        let mut tracer = Tracer::new();
        let out = server.handle_traced(req, &mut tracer).unwrap();
        TraceRun {
            trace: tracer.into_trace(),
            param_atoms: request_atoms(req),
            response_atoms: response_atoms(&out.response.body),
        }
    }

    fn analyze(src: &str, req: HttpRequest) -> (AnalysisFacts, Program, EntryExit) {
        let program = normalize(&edgstr_lang::parse(src).unwrap());
        let mut server = ServerProcess::from_program(program.clone());
        server.init().unwrap();
        let init = InitState::capture(&server);
        let base = traced_run(&mut server, &req);
        let mut fuzz = Vec::new();
        for i in 1..=3 {
            init.restore(&mut server);
            let mut dict = FuzzDictionary::default();
            let fz_req = fuzz_request(&req, i, &mut dict);
            fuzz.push(traced_run(&mut server, &fz_req));
        }
        let facts = AnalysisFacts::build(&program, &base, &fuzz);
        let ee = facts.entry_exit(&program).expect("entry/exit inferred");
        (facts, program, ee)
    }

    const PREDICT_APP: &str = r#"
        var unrelated = "constant string";
        app.post("/predict", function (req, res) {
            var b = req.body.img;
            var tv1 = new Uint8Array(b);
            var out = tensor.infer("objdet", tv1);
            res.send(out);
        });
    "#;

    #[test]
    fn infers_entry_exit_for_predict() {
        let req = HttpRequest::post("/predict", json!({}), vec![42u8; 128]);
        let (_, program, ee) = analyze(PREDICT_APP, req);
        // entry statement writes a payload-carrying variable
        let entry_stmt = program.find(ee.entry).unwrap();
        let wv = entry_stmt.written_var().unwrap();
        assert!(
            wv == "b" || wv == "tv1",
            "entry should unmarshal the image, wrote '{wv}'"
        );
        // exit is the res.send statement; its data variable is `out`
        assert_eq!(ee.mar_var.as_deref(), Some("out"));
    }

    #[test]
    fn entry_is_first_payload_write_in_order() {
        let req = HttpRequest::post("/predict", json!({}), vec![7u8; 64]);
        let (facts, _, ee) = analyze(PREDICT_APP, req);
        let order = facts.base_order();
        let epos = order.iter().position(|s| *s == ee.entry).unwrap();
        let xpos = order.iter().position(|s| *s == ee.exit).unwrap();
        assert!(epos < xpos, "entry must precede exit");
    }

    #[test]
    fn slice_excludes_unrelated_statements() {
        let src = r#"
            var noise = 0;
            app.get("/sum", function (req, res) {
                var n = req.params.n;
                var acc = 0;
                for (var i = 0; i <= n; i = i + 1) { acc = acc + i; }
                var junk = "never used in the response";
                res.send({ sum: acc });
            });
        "#;
        let req = HttpRequest::get("/sum", json!({"n": 10}));
        let (facts, program, ee) = analyze(src, req);
        let slice = facts.slice(Some(&ee));
        // the junk statement must not be in the slice
        let junk_stmt = program
            .all_stmts()
            .into_iter()
            .find(|s| s.written_var().as_deref() == Some("junk"))
            .unwrap();
        assert!(!slice.contains(&junk_stmt.id()), "junk sliced in");
        // the accumulator chain must be in the slice
        let acc_stmt = program
            .all_stmts()
            .into_iter()
            .find(|s| s.written_var().as_deref() == Some("acc"))
            .unwrap();
        assert!(slice.contains(&acc_stmt.id()), "acc missing from slice");
    }

    #[test]
    fn slice_keeps_side_effects_even_off_response_path() {
        let src = r#"
            db.query("CREATE TABLE audit (id INT)");
            app.get("/work", function (req, res) {
                var x = req.params.x;
                db.query("INSERT INTO audit VALUES (" + x + ")");
                res.send({ ok: true });
            });
        "#;
        let req = HttpRequest::get("/work", json!({"x": 5}));
        let (facts, program, ee) = analyze(src, req);
        let slice = facts.slice(Some(&ee));
        // the INSERT statement's enclosing stmt must be kept although the
        // response does not depend on it
        let has_insert = program
            .all_stmts()
            .into_iter()
            .any(|s| slice.contains(&s.id()) && format!("{s:?}").contains("INSERT INTO audit"));
        assert!(has_insert, "side-effecting INSERT sliced away");
    }

    #[test]
    fn actual_edges_pull_in_called_functions() {
        let src = r#"
            function helper(v) { return v * 2; }
            app.get("/double", function (req, res) {
                var n = req.params.n;
                var r = helper(n);
                res.send({ r: r });
            });
        "#;
        let req = HttpRequest::get("/double", json!({"n": 21}));
        let (facts, program, ee) = analyze(src, req);
        let slice = facts.slice(Some(&ee));
        let decl = function_decls(&program)["helper"];
        assert!(slice.contains(&decl), "helper declaration not in slice");
    }

    #[test]
    fn control_dependence_keeps_branch_conditions() {
        let src = r#"
            app.get("/clamp", function (req, res) {
                var n = req.params.n;
                var r = 0;
                if (n > 10) { r = 10; } else { r = n; }
                res.send({ r: r });
            });
        "#;
        let req = HttpRequest::get("/clamp", json!({"n": 42}));
        let (facts, program, ee) = analyze(src, req);
        let slice = facts.slice(Some(&ee));
        let if_stmt = program
            .all_stmts()
            .into_iter()
            .find(|s| matches!(s, Stmt::If { .. }))
            .unwrap();
        assert!(slice.contains(&if_stmt.id()), "if statement not in slice");
    }

    #[test]
    fn is_sql_write_classifier() {
        assert!(is_sql_write("INSERT INTO t VALUES (1)"));
        assert!(is_sql_write("  update t set a = 1"));
        assert!(!is_sql_write("SELECT * FROM t"));
        assert!(!is_sql_write("ROLLBACK"));
    }
}
