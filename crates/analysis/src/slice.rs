//! The Extract Function refactoring (§III-E).
//!
//! Given the dependence slice of a service, lift the relevant statements
//! of its route handler into a standalone, individually invocable function
//! (`ftn_<service>`), together with the supporting user-function
//! declarations it calls.

use crate::facts::function_decls;
use crate::trace::ExecutionTrace;
use edgstr_lang::{Expr, Program, Stmt, StmtId};
use edgstr_net::Verb;
use std::collections::BTreeSet;

/// The output of Extract Function for one service.
#[derive(Debug, Clone)]
pub struct ExtractedService {
    /// Generated function name, e.g. `ftn_predict`.
    pub name: String,
    pub verb: Verb,
    pub path: String,
    /// The standalone function declaration (params `req`, `res`).
    pub function: Stmt,
    /// Supporting top-level function declarations the handler calls.
    pub support: Vec<Stmt>,
    /// The statement ids retained.
    pub slice: BTreeSet<StmtId>,
    /// Statements of the original handler that were dropped.
    pub dropped: usize,
}

/// Compute the statements to keep: the slice, closed over control
/// structure (a control statement is kept when any statement in its body
/// is kept).
pub fn slice_statements(handler_body: &[Stmt], slice: &BTreeSet<StmtId>) -> Vec<Stmt> {
    filter_block(handler_body, slice)
}

fn filter_block(stmts: &[Stmt], slice: &BTreeSet<StmtId>) -> Vec<Stmt> {
    let mut out = Vec::new();
    for s in stmts {
        if let Some(kept) = filter_stmt(s, slice) {
            out.push(kept);
        }
    }
    out
}

fn contains_any(s: &Stmt, slice: &BTreeSet<StmtId>) -> bool {
    let mut found = false;
    s.visit(&mut |st| {
        if slice.contains(&st.id()) {
            found = true;
        }
    });
    found
}

fn filter_stmt(s: &Stmt, slice: &BTreeSet<StmtId>) -> Option<Stmt> {
    match s {
        Stmt::If {
            id,
            line,
            cond,
            then_block,
            else_block,
        } => {
            if !contains_any(s, slice) {
                return None;
            }
            Some(Stmt::If {
                id: *id,
                line: *line,
                cond: cond.clone(),
                then_block: filter_block(then_block, slice),
                else_block: filter_block(else_block, slice),
            })
        }
        Stmt::While {
            id,
            line,
            cond,
            body,
        } => {
            if !contains_any(s, slice) {
                return None;
            }
            Some(Stmt::While {
                id: *id,
                line: *line,
                cond: cond.clone(),
                body: filter_block(body, slice),
            })
        }
        Stmt::For {
            id,
            line,
            init,
            cond,
            update,
            body,
        } => {
            if !contains_any(s, slice) {
                return None;
            }
            Some(Stmt::For {
                id: *id,
                line: *line,
                init: init.clone(),
                cond: cond.clone(),
                update: update.clone(),
                body: filter_block(body, slice),
            })
        }
        // function declarations and returns are kept whole when selected
        other => {
            if slice.contains(&other.id()) || contains_any(other, slice) {
                Some(other.clone())
            } else {
                None
            }
        }
    }
}

/// Locate a route registration `app.<verb>(path, handler)` in the program
/// and return the handler's params and body.
pub fn find_route_handler<'p>(
    program: &'p Program,
    verb: Verb,
    path: &str,
) -> Option<(&'p [String], &'p [Stmt])> {
    let method = match verb {
        Verb::Get => "get",
        Verb::Post => "post",
        Verb::Put => "put",
        Verb::Delete => "delete",
    };
    for stmt in program.all_stmts() {
        if let Stmt::Expr {
            expr: Expr::Call { callee, args },
            ..
        } = stmt
        {
            if let Expr::Member(base, m) = &**callee {
                if matches!(&**base, Expr::Var(v) if v == "app") && m == method {
                    if let (Some(Expr::Str(p)), Some(Expr::Function { params, body })) =
                        (args.first(), args.get(1))
                    {
                        if p == path {
                            return Some((params, body));
                        }
                    }
                }
            }
        }
    }
    None
}

/// Apply Extract Function: build `ftn_<service>` from the sliced handler
/// body, plus supporting user-function declarations invoked by the trace.
pub fn extract_function(
    program: &Program,
    verb: Verb,
    path: &str,
    slice: &BTreeSet<StmtId>,
    base_trace: &ExecutionTrace,
) -> Option<ExtractedService> {
    let (params, body) = find_route_handler(program, verb, path)?;
    let total: usize = body.iter().map(count_stmts).sum();
    let kept_body = slice_statements(body, slice);
    let kept: usize = kept_body.iter().map(count_stmts).sum();
    let name = format!("ftn_{}", sanitize(path));
    let function = Stmt::Function {
        id: StmtId(u32::MAX),
        line: 0,
        name: name.clone(),
        params: if params.is_empty() {
            vec!["req".to_string(), "res".to_string()]
        } else {
            params.to_vec()
        },
        body: kept_body,
    };
    // supporting declarations: every user function the trace actually
    // invoked (the ACTUAL closure)
    let decls = function_decls(program);
    let mut support_names: Vec<String> = base_trace
        .invokes
        .iter()
        .filter(|(_, f, _)| decls.contains_key(f.as_str()))
        .map(|(_, f, _)| f.clone())
        .collect();
    support_names.sort();
    support_names.dedup();
    let support: Vec<Stmt> = program
        .all_stmts()
        .into_iter()
        .filter(|s| matches!(s, Stmt::Function { name, .. } if support_names.contains(name)))
        .cloned()
        .collect();
    Some(ExtractedService {
        name,
        verb,
        path: path.to_string(),
        function,
        support,
        slice: slice.clone(),
        dropped: total.saturating_sub(kept),
    })
}

fn count_stmts(s: &Stmt) -> usize {
    let mut n = 0;
    s.visit(&mut |_| n += 1);
    n
}

/// Turn a route path into an identifier fragment.
pub fn sanitize(path: &str) -> String {
    let cleaned: String = path
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect();
    cleaned.trim_matches('_').to_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use edgstr_lang::{normalize, parse, print_stmts};

    #[test]
    fn sanitize_paths() {
        assert_eq!(sanitize("/predict"), "predict");
        assert_eq!(sanitize("/api/v1/books"), "api_v1_books");
        assert_eq!(sanitize("/"), "");
    }

    #[test]
    fn find_handler_locates_route() {
        let p = parse(
            r#"
            app.get("/a", function (req, res) { res.send(1); });
            app.post("/b", function (req, res) { res.send(2); });
            "#,
        )
        .unwrap();
        assert!(find_route_handler(&p, Verb::Get, "/a").is_some());
        assert!(find_route_handler(&p, Verb::Post, "/b").is_some());
        assert!(find_route_handler(&p, Verb::Get, "/b").is_none());
        assert!(find_route_handler(&p, Verb::Delete, "/c").is_none());
    }

    #[test]
    fn filter_keeps_control_wrappers() {
        let p = normalize(
            &parse(
                r#"
                app.get("/x", function (req, res) {
                    var keep = 1;
                    if (keep > 0) { var inner = 2; }
                    var drop = 3;
                    res.send(keep);
                });
                "#,
            )
            .unwrap(),
        );
        let (_, body) = find_route_handler(&p, Verb::Get, "/x").unwrap();
        // slice: keep `inner` only
        let inner_id = body
            .iter()
            .flat_map(|s| {
                let mut v = Vec::new();
                s.visit(&mut |st| v.push(st.id()));
                v
            })
            .collect::<Vec<_>>();
        // find the statement writing `inner`
        let mut slice = BTreeSet::new();
        for s in body {
            s.visit(&mut |st| {
                if st.written_var().as_deref() == Some("inner") {
                    slice.insert(st.id());
                }
            });
        }
        assert!(!slice.is_empty());
        let kept = slice_statements(body, &slice);
        let src = print_stmts(&kept, 0);
        assert!(src.contains("if"), "control wrapper dropped: {src}");
        assert!(src.contains("inner"));
        assert!(!src.contains("drop"), "unrelated stmt kept: {src}");
        let _ = inner_id;
    }

    #[test]
    fn extracted_function_is_printable_and_parsable() {
        let p = normalize(
            &parse(
                r#"
                function scale(v) { return v * 3; }
                app.get("/triple", function (req, res) {
                    var n = req.params.n;
                    var r = scale(n);
                    res.send({ r: r });
                });
                "#,
            )
            .unwrap(),
        );
        // slice = everything in the handler (plus scale's decl)
        let (_, body) = find_route_handler(&p, Verb::Get, "/triple").unwrap();
        let mut slice = BTreeSet::new();
        for s in body {
            s.visit(&mut |st| {
                slice.insert(st.id());
            });
        }
        let mut trace = ExecutionTrace::default();
        trace
            .invokes
            .push((StmtId(0), "scale".to_string(), Default::default()));
        let ex = extract_function(&p, Verb::Get, "/triple", &slice, &trace).unwrap();
        assert_eq!(ex.name, "ftn_triple");
        assert_eq!(ex.support.len(), 1);
        let src = print_stmts(std::slice::from_ref(&ex.function), 0);
        edgstr_lang::parse(&src).expect("extracted function must reparse");
        assert!(src.contains("function ftn_triple(req, res)"));
    }
}
