//! # edgstr-analysis — EdgStr's dynamic analysis pipeline
//!
//! Implements §III-A through §III-E of the paper:
//!
//! - [`ServerProcess`] — the simulated Node.js server process (program +
//!   SQL database + virtual file system + HTTP routes + compute host);
//! - [`trace`] — Jalangi-style trace recording over whole service
//!   executions;
//! - [`state`] — init-state capture and checkpoint/restore isolation
//!   (`init, save "init", exec_i, restore "init", …`);
//! - [`fuzz`] — HTTP-parameter fuzzing with a fuzzing dictionary, used to
//!   pinpoint marshal/unmarshal statements;
//! - [`facts`] — encoding traces as datalog facts (`RW-LOG`,
//!   `RW-LOG-FUZZED`, `ACTUAL`, control dependence) and the `STMT-UNMAR` /
//!   `STMT-MAR` / transitive `STMT-DEP` rules;
//! - `slice` — dependence slicing and the Extract Function refactoring;
//! - [`profile`] — the per-service profiling driver (Algorithm 1).

pub mod effects;
pub mod facts;
pub mod fuzz;
pub mod profile;
pub mod server;
pub mod slice;
pub mod state;
pub mod trace;

pub use effects::{derive_effects, json_pk_string, request_field, EffectSummary, ReadUnit};
pub use facts::{AnalysisFacts, EntryExit};
pub use fuzz::{fuzz_params, FuzzDictionary};
pub use profile::{profile_service, ServiceProfile};
pub use server::{ExecMode, HandleOutcome, Route, ServerError, ServerProcess};
pub use slice::{extract_function, slice_statements, ExtractedService};
pub use state::{InitSeed, InitState, StateUnit};
pub use trace::ExecutionTrace;
