//! Per-service effect summaries: the state units a service *reads* and
//! *writes*, derived from the same profiled traces that drive slicing.
//!
//! The read set is the invalidation signal for the edge response cache
//! (DESIGN.md §9): a cached response is valid iff the version counter of
//! every read unit still matches the value recorded when the entry was
//! filled. Like slicing, the derivation is dynamic — it generalizes from
//! the base run plus fuzzed re-executions, so a read unit observed under
//! no run is invisible. The cache layer compensates by only filling
//! entries from executions that were demonstrably effect-free and by
//! keying entries on the full canonicalized request.

use crate::state::StateUnit;
use crate::trace::ExecutionTrace;
use edgstr_net::HttpRequest;
use edgstr_sql::{parse_sql, CmpOp, SqlDb, Statement, WhereExpr};
use serde_json::Value as Json;
use std::collections::{BTreeMap, BTreeSet};

/// A state unit a service was observed to read.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub enum ReadUnit {
    /// Whole-table read (any row may influence the response).
    Table(String),
    /// Row-keyed read: every observed access selected exactly the row
    /// whose primary key equals the request parameter `param`
    /// (fuzz-validated across all profiled runs).
    TableKeyed { table: String, param: String },
    /// File content read.
    File(String),
    /// Top-level global variable read.
    Global(String),
}

/// Everything the cache layer needs to know about one service's effects.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EffectSummary {
    /// Units read (union over profiled runs, row-keyed where validated).
    pub reads: Vec<ReadUnit>,
    /// Units written (union over profiled runs) — matches the CRDT
    /// wrapping candidates of §III-D.
    pub writes: Vec<StateUnit>,
    /// No profiled run performed any write.
    pub pure: bool,
    /// Responses are reproducible from the read set alone: no hidden
    /// nondeterminism (`util.tick`) and no param-dependent read paths the
    /// unit vocabulary cannot express.
    pub cacheable: bool,
}

/// Resolve a top-level request field: `params.key`, falling back to the
/// body when it is a JSON object. The serve-time cache key covers both
/// (canonical params + body digest), so either source is stable.
#[must_use]
pub fn request_field(req: &HttpRequest, key: &str) -> Option<Json> {
    if let Json::Object(m) = &req.params {
        if let Some(v) = m.get(key) {
            return Some(v.clone());
        }
    }
    if let Ok(Json::Object(m)) = serde_json::from_slice::<Json>(&req.body) {
        if let Some(v) = m.get(key) {
            return Some(v.clone());
        }
    }
    None
}

/// The canonical pk string a scalar request field would produce when
/// interpolated into SQL — must agree with [`edgstr_sql::SqlValue::pk_string`].
/// The cache layer uses the same function to resolve a `TableKeyed` read
/// unit to a concrete row key at serve time.
#[must_use]
pub fn json_pk_string(v: &Json) -> Option<String> {
    match v {
        Json::String(s) => Some(s.trim_matches('\'').to_string()),
        Json::Number(n) => n.as_i64().map(|i| i.to_string()),
        _ => None,
    }
}

/// Observations about one table's reads, accumulated across runs.
#[derive(Default)]
struct TableReads {
    /// Some access could not be pinned to a single pk-equality.
    whole: bool,
    /// Per run: the set of pk literals selected (run index aligned with
    /// the `runs` slice passed to [`derive_effects`]).
    literals: BTreeMap<usize, BTreeSet<String>>,
}

/// Derive the [`EffectSummary`] for one service from its profiled runs.
///
/// `runs` pairs each successful execution's request with its trace (base
/// run first, then fuzzed runs). `db` supplies table schemas so pk-equality
/// WHERE clauses can be recognized; `globals` is the program's top-level
/// variable vocabulary used to separate global reads from locals.
#[must_use]
pub fn derive_effects(
    db: &SqlDb,
    globals: &BTreeSet<String>,
    runs: &[(&HttpRequest, &ExecutionTrace)],
) -> EffectSummary {
    let mut cacheable = true;
    let mut tables: BTreeMap<String, TableReads> = BTreeMap::new();
    let mut file_reads_per_run: Vec<BTreeSet<String>> = Vec::new();
    let mut global_reads: BTreeSet<String> = BTreeSet::new();
    let mut writes: BTreeSet<StateUnit> = BTreeSet::new();

    for (i, (_, trace)) in runs.iter().enumerate() {
        // Hidden server-local state (the `util.tick` counter) is neither
        // versioned nor replicated: responses depending on it cannot be
        // reproduced from the read set.
        if trace.invokes.iter().any(|(_, f, _)| f == "util.tick") {
            cacheable = false;
        }

        for (_, sql) in &trace.sql_stmts {
            match parse_sql(sql) {
                Ok(stmt) if stmt.is_write() => {
                    if let Some(t) = crate::trace::table_of(sql) {
                        writes.insert(StateUnit::DbTable(t));
                    }
                }
                Ok(Statement::Select {
                    table, where_expr, ..
                }) => {
                    let obs = tables.entry(table.clone()).or_default();
                    match pk_eq_literal(db, &table, where_expr.as_ref()) {
                        Some(lit) => {
                            obs.literals.entry(i).or_default().insert(lit);
                        }
                        None => obs.whole = true,
                    }
                }
                Ok(_) => {} // BEGIN/COMMIT/ROLLBACK: no data read
                Err(_) => {
                    // Unparseable command: fall back to the crude table
                    // extraction; with no table name we cannot name the
                    // read unit at all.
                    if crate::facts::is_sql_write(sql) {
                        if let Some(t) = crate::trace::table_of(sql) {
                            writes.insert(StateUnit::DbTable(t));
                        }
                    } else if let Some(t) = crate::trace::table_of(sql) {
                        tables.entry(t).or_default().whole = true;
                    } else {
                        cacheable = false;
                    }
                }
            }
        }

        let mut fr = BTreeSet::new();
        for (_, path, written) in &trace.file_stmts {
            if *written {
                writes.insert(StateUnit::File(path.clone()));
            } else {
                fr.insert(path.clone());
            }
        }
        file_reads_per_run.push(fr);

        for g in trace.written_globals() {
            writes.insert(StateUnit::Global(g));
        }
        for (_, var, _) in &trace.reads {
            if globals.contains(var) {
                global_reads.insert(var.clone());
            }
        }
    }

    // File read paths that vary across fuzzed runs are param-derived; the
    // unit vocabulary has no keyed projection for files, so such services
    // stay uncacheable rather than under-approximating the read set.
    if let Some(first) = file_reads_per_run.first() {
        if file_reads_per_run.iter().any(|fr| fr != first) {
            cacheable = false;
        }
    }

    let mut reads: BTreeSet<ReadUnit> = BTreeSet::new();
    for (table, obs) in tables {
        match keyed_param(&obs, runs) {
            Some(param) => {
                reads.insert(ReadUnit::TableKeyed { table, param });
            }
            None => {
                reads.insert(ReadUnit::Table(table));
            }
        }
    }
    for fr in &file_reads_per_run {
        for p in fr {
            reads.insert(ReadUnit::File(p.clone()));
        }
    }
    for g in global_reads {
        reads.insert(ReadUnit::Global(g));
    }

    let pure = writes.is_empty();
    EffectSummary {
        reads: reads.into_iter().collect(),
        writes: writes.into_iter().collect(),
        pure,
        cacheable,
    }
}

/// If `where_expr` is exactly `pk_column = literal` for `table`'s primary
/// key, return the literal's canonical pk string.
fn pk_eq_literal(db: &SqlDb, table: &str, where_expr: Option<&WhereExpr>) -> Option<String> {
    let pk_col = db
        .table(table)?
        .columns
        .iter()
        .find(|c| c.primary_key)?
        .name
        .clone();
    match where_expr? {
        WhereExpr::Cmp {
            column,
            op: CmpOp::Eq,
            value,
        } if *column == pk_col => Some(value.pk_string()),
        _ => None,
    }
}

/// Find a request field that explains every pk literal this table was
/// selected by, in every run. Requires at least two distinct literals
/// across runs — the fuzzer perturbs each scalar per run, so a literal
/// that tracks the field under fuzzing is derived from it, while a
/// constant literal may be hard-coded and must stay a whole-table read.
fn keyed_param(obs: &TableReads, runs: &[(&HttpRequest, &ExecutionTrace)]) -> Option<String> {
    if obs.whole || obs.literals.is_empty() {
        return None;
    }
    let distinct: BTreeSet<&String> = obs.literals.values().flatten().collect();
    if distinct.len() < 2 {
        return None;
    }
    // candidate fields: top-level scalar keys of the first observed run
    let (&first_run, _) = obs.literals.iter().next().unwrap();
    let candidates: Vec<String> = match (&runs[first_run].0.params, parse_body(runs[first_run].0)) {
        (Json::Object(m), body) => {
            let mut keys: Vec<String> = m.keys().cloned().collect();
            if let Some(Json::Object(b)) = body {
                keys.extend(b.keys().cloned());
            }
            keys
        }
        (_, Some(Json::Object(b))) => b.keys().cloned().collect(),
        _ => return None,
    };
    candidates.into_iter().find(|p| {
        obs.literals.iter().all(|(&run, lits)| {
            let field = request_field(runs[run].0, p)
                .as_ref()
                .and_then(json_pk_string);
            match field {
                Some(f) => lits.iter().all(|l| *l == f),
                None => false,
            }
        })
    })
}

fn parse_body(req: &HttpRequest) -> Option<Json> {
    serde_json::from_slice(&req.body).ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::ServerProcess;
    use crate::state::InitState;
    use crate::trace::Tracer;
    use serde_json::json;

    const APP: &str = r#"
        db.query("CREATE TABLE books (id INT PRIMARY KEY, title TEXT)");
        db.query("INSERT INTO books VALUES (1, 'dune')");
        db.query("INSERT INTO books VALUES (1001, 'tlou')");
        var visits = 0;
        app.get("/book", function (req, res) {
            var rows = db.query("SELECT * FROM books WHERE id = " + req.params.id);
            res.send({ book: rows });
        });
        app.get("/all", function (req, res) {
            var rows = db.query("SELECT * FROM books");
            res.send({ books: rows, seen: visits });
        });
        app.post("/visit", function (req, res) {
            visits = visits + 1;
            db.query("INSERT INTO books VALUES (" + req.body.id + ", 'new')");
            res.send({ n: visits });
        });
    "#;

    fn traced_runs(
        server: &mut ServerProcess,
        init: &InitState,
        reqs: &[HttpRequest],
    ) -> Vec<(HttpRequest, ExecutionTrace)> {
        let mut out = Vec::new();
        for r in reqs {
            init.restore(server);
            let mut tracer = Tracer::new();
            server.handle_traced(r, &mut tracer).unwrap();
            out.push((r.clone(), tracer.into_trace()));
        }
        init.restore(server);
        out
    }

    fn summarize(reqs: &[HttpRequest]) -> EffectSummary {
        let program = edgstr_lang::normalize(&edgstr_lang::parse(APP).unwrap());
        let mut server = ServerProcess::from_program(program);
        server.init().unwrap();
        let init = InitState::capture(&server);
        let runs = traced_runs(&mut server, &init, reqs);
        let globals: BTreeSet<String> = server.snapshot_globals().keys().cloned().collect();
        let refs: Vec<(&HttpRequest, &ExecutionTrace)> = runs.iter().map(|(r, t)| (r, t)).collect();
        derive_effects(&server.db, &globals, &refs)
    }

    #[test]
    fn keyed_read_tracks_fuzzed_param() {
        let s = summarize(&[
            HttpRequest::get("/book", json!({"id": 1})),
            HttpRequest::get("/book", json!({"id": 1001})),
        ]);
        assert!(s.pure && s.cacheable);
        assert_eq!(
            s.reads,
            vec![ReadUnit::TableKeyed {
                table: "books".into(),
                param: "id".into()
            }]
        );
    }

    #[test]
    fn constant_literal_stays_whole_table() {
        let s = summarize(&[
            HttpRequest::get("/book", json!({"id": 1})),
            HttpRequest::get("/book", json!({"id": 1})),
        ]);
        assert_eq!(s.reads, vec![ReadUnit::Table("books".into())]);
    }

    #[test]
    fn whole_table_and_global_read() {
        let s = summarize(&[HttpRequest::get("/all", json!({}))]);
        assert!(s.pure && s.cacheable);
        assert!(s.reads.contains(&ReadUnit::Table("books".into())));
        assert!(s.reads.contains(&ReadUnit::Global("visits".into())));
    }

    #[test]
    fn writes_make_service_impure() {
        let s = summarize(&[HttpRequest::post(
            "/visit",
            json!({}),
            b"{\"id\": 7}".to_vec(),
        )]);
        assert!(!s.pure);
        assert!(s.writes.contains(&StateUnit::DbTable("books".into())));
        assert!(s.writes.contains(&StateUnit::Global("visits".into())));
    }
}
