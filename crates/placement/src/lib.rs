//! # edgstr-placement — the autonomous tier-placement controller
//!
//! EdgStr's paper leaves the core replicate-or-not decision per service to
//! a developer consultation (§III-B). This crate closes that loop: a
//! control-plane component that chooses a per-service placement —
//! [`Placement::EdgeReplicate`], [`Placement::EdgeCacheOnly`], or
//! [`Placement::CloudPin`] — from *static* signals (effect-summary
//! read/write units, purity, cacheability, state footprint) plus a sliding
//! window of *live* telemetry (read ratio, cache hit rate, sync bytes
//! attributable to the service, observed/estimated serve costs), and
//! re-decides online as the workload drifts.
//!
//! The controller is deliberately pure and deterministic: decisions are a
//! function of the registered signals, the accumulated window, and the
//! policy — never of wall-clock time or an unseeded RNG — so a recorded
//! decision schedule can be replayed bit-identically (the digest-parity
//! gate of experiment E18). Hysteresis comes from three mechanisms:
//!
//! 1. a **dead zone** between the promote and demote read-ratio thresholds
//!    where the current placement is kept,
//! 2. a **confirmation streak**: a new target must win `confirm_windows`
//!    consecutive decision windows before a transition is emitted, and
//! 3. a **cooldown**: at most one transition per service per `cooldown`.
//!
//! Together these provably bound decision flips under an alternating
//! read/write square-wave (see the property tests).

use edgstr_analysis::EffectSummary;
use edgstr_net::Verb;
use edgstr_sim::{SimDuration, SimTime};
use std::collections::BTreeMap;

/// A service is addressed the same way the runtime routes it.
pub type ServiceKey = (Verb, String);

/// Where one service's requests are served.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Placement {
    /// Always forward to the cloud master over the WAN.
    CloudPin,
    /// Forward to the cloud, but consult (and fill) the edge response
    /// cache first — the stateless-at-the-edge placement.
    EdgeCacheOnly,
    /// Serve locally on the edge replica from CRDT-replicated state.
    EdgeReplicate,
}

impl Placement {
    /// Ordering used to classify transitions: a rank increase is a
    /// promotion (toward the edge), a decrease a demotion.
    pub fn rank(self) -> u8 {
        match self {
            Placement::CloudPin => 0,
            Placement::EdgeCacheOnly => 1,
            Placement::EdgeReplicate => 2,
        }
    }

    /// Stable label for telemetry and reports.
    pub fn as_str(self) -> &'static str {
        match self {
            Placement::CloudPin => "cloud_pin",
            Placement::EdgeCacheOnly => "edge_cache_only",
            Placement::EdgeReplicate => "edge_replicate",
        }
    }
}

/// Static, workload-independent signals about one service, derived from
/// the transformation report and the profiled effect summary.
#[derive(Debug, Clone, Default)]
pub struct StaticSignals {
    /// The transform emitted this service on the replica (all its state is
    /// CRDT-bindable). Without this, `EdgeReplicate` is unreachable.
    pub replicable: bool,
    /// No writes in the profiled effect summary.
    pub pure: bool,
    /// The effect summary is sound for response caching.
    pub cacheable: bool,
    /// Distinct read units in the profile.
    pub read_units: usize,
    /// Distinct write units in the profile.
    pub write_units: usize,
    /// State footprint of the service's write set at deploy time, bytes.
    pub state_bytes: u64,
}

impl StaticSignals {
    /// Derive signals from a profiled effect summary.
    pub fn from_summary(summary: &EffectSummary, replicable: bool, state_bytes: u64) -> Self {
        StaticSignals {
            replicable,
            pure: summary.pure,
            cacheable: summary.cacheable,
            read_units: summary.reads.len(),
            write_units: summary.writes.len(),
            state_bytes,
        }
    }
}

/// One completed request, as the runtime reports it to the controller.
///
/// Costs come in matched pairs so every placement has an opinion about the
/// road not taken: a locally-served request carries its *actual* local
/// cost and an *estimated* forward cost (WAN round-trip + unloaded cloud
/// compute); a forwarded request carries its *actual* forward cost and an
/// *estimated* local cost. `local_demand_us` is always the **unloaded**
/// edge compute estimate — it feeds the utilization signal, which must
/// reflect offered demand rather than queueing feedback (otherwise a
/// demotion that empties the edge queue would immediately argue for
/// promotion, and the controller would flap).
#[derive(Debug, Clone, Copy, Default)]
pub struct Observation {
    /// The profiled summary has writes (effectful request).
    pub write: bool,
    /// Served from an edge response cache.
    pub cache_hit: bool,
    /// Actual (local serve) or estimated (forwarded) edge cost, µs.
    pub local_us: u64,
    /// Actual (forwarded) or estimated (local serve) cloud round-trip, µs.
    pub forward_us: u64,
    /// Unloaded edge compute time for this request, µs.
    pub local_demand_us: u64,
}

/// Telemetry accumulated for one service since the last decision window
/// closed.
#[derive(Debug, Clone, Default)]
struct WindowSample {
    requests: u64,
    writes: u64,
    cache_hits: u64,
    local_us: u64,
    forward_us: u64,
    local_demand_us: u64,
    sync_bytes: u64,
}

/// A closed decision window, summarized — the controller's input and the
/// runtime's gauge source.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct WindowSummary {
    /// Requests observed in the window.
    pub requests: u64,
    /// Effectful requests observed.
    pub writes: u64,
    /// Reads / requests (1.0 when the window is empty of requests).
    pub read_ratio: f64,
    /// Cache hits / reads.
    pub hit_rate: f64,
    /// Mean edge-side cost per request, µs (actual or estimated).
    pub mean_local_us: f64,
    /// Mean cloud round-trip per request, µs (actual or estimated).
    pub mean_forward_us: f64,
    /// Sync traffic attributed to this service's write units, bytes.
    pub sync_bytes: u64,
    /// Offered edge compute demand / (window length × edge cores).
    pub utilization: f64,
}

impl WindowSummary {
    fn from_sample(s: &WindowSample, window: SimDuration, cores: f64) -> WindowSummary {
        let reads = s.requests.saturating_sub(s.writes);
        let cap_us = window.0 as f64 * cores.max(1.0);
        WindowSummary {
            requests: s.requests,
            writes: s.writes,
            read_ratio: if s.requests == 0 {
                1.0
            } else {
                reads as f64 / s.requests as f64
            },
            hit_rate: if reads == 0 {
                0.0
            } else {
                s.cache_hits as f64 / reads as f64
            },
            mean_local_us: if s.requests == 0 {
                0.0
            } else {
                s.local_us as f64 / s.requests as f64
            },
            mean_forward_us: if s.requests == 0 {
                0.0
            } else {
                s.forward_us as f64 / s.requests as f64
            },
            sync_bytes: s.sync_bytes,
            utilization: if cap_us <= 0.0 {
                0.0
            } else {
                s.local_demand_us as f64 / cap_us
            },
        }
    }

    /// Sync bytes per effectful request (`None` without writes).
    pub fn sync_bytes_per_write(&self) -> Option<f64> {
        (self.writes > 0).then(|| self.sync_bytes as f64 / self.writes as f64)
    }
}

/// Thresholds and hysteresis knobs for the placement decision.
#[derive(Debug, Clone)]
pub struct PlacementPolicy {
    /// Windows with fewer requests than this carry no opinion: the streak
    /// is left unchanged rather than reset, so sparse traffic neither
    /// triggers nor cancels a pending transition.
    pub min_requests: u64,
    /// Read ratio at or above which a service is read-heavy.
    pub promote_read_ratio: f64,
    /// Read ratio at or below which a service is write-heavy.
    pub demote_read_ratio: f64,
    /// Cache hit rate making `EdgeCacheOnly` viable for a cacheable
    /// service that cannot (or should not) replicate.
    pub cache_hit_floor: f64,
    /// Local serving is acceptable while
    /// `mean_local <= mean_forward * compute_margin`.
    pub compute_margin: f64,
    /// Offered edge utilization above which the service is shed to the
    /// cloud regardless of per-request costs.
    pub max_utilization: f64,
    /// Re-entry band: promotion back to the edge additionally requires
    /// `utilization <= max_utilization * reentry_fraction`, so a service
    /// hovering at the capacity cliff does not oscillate.
    pub reentry_fraction: f64,
    /// Sync bytes per write above which replication is considered too
    /// chatty to keep at the edge.
    pub sync_bytes_per_write_ceiling: f64,
    /// Consecutive windows a new target must win before a transition.
    pub confirm_windows: u32,
    /// Minimum virtual time between transitions of one service.
    pub cooldown: SimDuration,
    /// Reserved decision-stream seed. The current decision function is
    /// seed-free; the field pins the controller's identity so determinism
    /// is testable as "same seed + same windows → same decisions".
    pub seed: u64,
}

impl Default for PlacementPolicy {
    fn default() -> Self {
        PlacementPolicy {
            min_requests: 8,
            promote_read_ratio: 0.75,
            demote_read_ratio: 0.40,
            cache_hit_floor: 0.5,
            compute_margin: 1.0,
            max_utilization: 0.7,
            reentry_fraction: 0.8,
            sync_bytes_per_write_ceiling: 64.0 * 1024.0,
            confirm_windows: 2,
            cooldown: SimDuration::from_secs(3),
            seed: 0xED65,
        }
    }
}

/// Why a decision chose its target — carried on the decision and into the
/// telemetry event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecisionReason {
    /// Read ratio rose above the promote threshold.
    ReadHeavy,
    /// Read ratio fell below the demote threshold.
    WriteHeavy,
    /// Offered edge demand exceeded the utilization ceiling.
    EdgeOverload,
    /// Forwarding is cheaper than local compute for this service.
    ForwardCheaper,
    /// The cache absorbs enough reads to serve from the edge cache alone.
    CacheAbsorbs,
    /// Replication sync traffic per write exceeded the ceiling.
    SyncTooChatty,
    /// The service cannot replicate; only cache/pin placements apply.
    NotReplicable,
}

impl DecisionReason {
    /// Stable label for telemetry and reports.
    pub fn as_str(self) -> &'static str {
        match self {
            DecisionReason::ReadHeavy => "read_heavy",
            DecisionReason::WriteHeavy => "write_heavy",
            DecisionReason::EdgeOverload => "edge_overload",
            DecisionReason::ForwardCheaper => "forward_cheaper",
            DecisionReason::CacheAbsorbs => "cache_absorbs",
            DecisionReason::SyncTooChatty => "sync_too_chatty",
            DecisionReason::NotReplicable => "not_replicable",
        }
    }
}

/// One emitted placement change.
#[derive(Debug, Clone)]
pub struct Decision {
    pub service: ServiceKey,
    pub from: Placement,
    pub to: Placement,
    pub at: SimTime,
    pub reason: DecisionReason,
    /// The window that confirmed the transition.
    pub window: WindowSummary,
}

/// The desired placement for one window, given the static signals, the
/// window summary, and the current placement. Pure: this is the function
/// the determinism property tests pin down.
pub fn desired_placement(
    signals: &StaticSignals,
    w: &WindowSummary,
    policy: &PlacementPolicy,
    current: Placement,
) -> (Placement, DecisionReason) {
    if w.requests < policy.min_requests {
        return (current, DecisionReason::ReadHeavy);
    }
    let cache_viable = signals.cacheable && w.hit_rate >= policy.cache_hit_floor;
    if !signals.replicable {
        return if cache_viable && w.read_ratio >= policy.promote_read_ratio {
            (Placement::EdgeCacheOnly, DecisionReason::CacheAbsorbs)
        } else {
            (Placement::CloudPin, DecisionReason::NotReplicable)
        };
    }
    // offered demand above the edge's capacity ceiling: shed to the cloud
    // before any per-request cost comparison
    if w.utilization > policy.max_utilization {
        return (Placement::CloudPin, DecisionReason::EdgeOverload);
    }
    let local_ok = w.mean_local_us <= w.mean_forward_us * policy.compute_margin;
    let reentry_ok = w.utilization <= policy.max_utilization * policy.reentry_fraction;
    if w.read_ratio >= policy.promote_read_ratio {
        if local_ok && reentry_ok {
            (Placement::EdgeReplicate, DecisionReason::ReadHeavy)
        } else if cache_viable {
            (Placement::EdgeCacheOnly, DecisionReason::CacheAbsorbs)
        } else {
            (Placement::CloudPin, DecisionReason::ForwardCheaper)
        }
    } else if w.read_ratio <= policy.demote_read_ratio {
        let chatty = w
            .sync_bytes_per_write()
            .is_some_and(|b| b > policy.sync_bytes_per_write_ceiling);
        if chatty {
            (Placement::CloudPin, DecisionReason::SyncTooChatty)
        } else if local_ok && reentry_ok {
            (Placement::EdgeReplicate, DecisionReason::WriteHeavy)
        } else {
            (Placement::CloudPin, DecisionReason::ForwardCheaper)
        }
    } else {
        // dead zone: keep the current placement
        (current, DecisionReason::ReadHeavy)
    }
}

#[derive(Debug)]
struct ServiceState {
    signals: StaticSignals,
    current: Placement,
    window: WindowSample,
    /// Last closed window, kept for gauges.
    last_summary: WindowSummary,
    streak_target: Option<Placement>,
    streak: u32,
    last_transition: Option<SimTime>,
}

/// The per-deployment placement controller: registered services, their
/// accumulating windows, and the hysteresis state machine.
#[derive(Debug)]
pub struct PlacementController {
    policy: PlacementPolicy,
    /// Effective edge core count used for the utilization signal.
    edge_cores: f64,
    services: BTreeMap<ServiceKey, ServiceState>,
    last_tick: Option<SimTime>,
}

impl PlacementController {
    pub fn new(policy: PlacementPolicy, edge_cores: f64) -> PlacementController {
        PlacementController {
            policy,
            edge_cores,
            services: BTreeMap::new(),
            last_tick: None,
        }
    }

    pub fn policy(&self) -> &PlacementPolicy {
        &self.policy
    }

    /// Register one service with its static signals and starting
    /// placement. Re-registration resets the service's window state.
    pub fn register(&mut self, key: ServiceKey, signals: StaticSignals, initial: Placement) {
        self.services.insert(
            key,
            ServiceState {
                signals,
                current: initial,
                window: WindowSample::default(),
                last_summary: WindowSummary::default(),
                streak_target: None,
                streak: 0,
                last_transition: None,
            },
        );
    }

    /// The controller's view of a service's placement (decision-time view;
    /// the runtime's effective placement may lag while a transition
    /// barrier drains).
    pub fn placement(&self, key: &ServiceKey) -> Option<Placement> {
        self.services.get(key).map(|s| s.current)
    }

    /// Feed one completed request into the service's open window.
    pub fn observe(&mut self, key: &ServiceKey, obs: Observation) {
        if let Some(s) = self.services.get_mut(key) {
            s.window.requests += 1;
            s.window.writes += u64::from(obs.write);
            s.window.cache_hits += u64::from(obs.cache_hit);
            s.window.local_us += obs.local_us;
            s.window.forward_us += obs.forward_us;
            s.window.local_demand_us += obs.local_demand_us;
        }
    }

    /// Attribute sync traffic to the service's open window.
    pub fn observe_sync_bytes(&mut self, key: &ServiceKey, bytes: u64) {
        if let Some(s) = self.services.get_mut(key) {
            s.window.sync_bytes += bytes;
        }
    }

    /// Registered services with their current placement and last closed
    /// window — the runtime's gauge source.
    pub fn snapshot(&self) -> Vec<(ServiceKey, Placement, WindowSummary)> {
        self.services
            .iter()
            .map(|(k, s)| (k.clone(), s.current, s.last_summary.clone()))
            .collect()
    }

    /// Close every service's window at `now` and emit confirmed
    /// transitions. Deterministic: services are visited in key order and
    /// the decision function is pure.
    pub fn tick(&mut self, now: SimTime) -> Vec<Decision> {
        let window = self
            .last_tick
            .map_or(SimDuration::from_secs(1), |prev| now.since(prev));
        self.last_tick = Some(now);
        let mut decisions = Vec::new();
        for (key, s) in self.services.iter_mut() {
            let summary = WindowSummary::from_sample(&s.window, window, self.edge_cores);
            let thin = s.window.requests < self.policy.min_requests;
            s.window = WindowSample::default();
            if thin {
                // no evidence: keep the streak frozen
                s.last_summary = summary;
                continue;
            }
            let (target, reason) = desired_placement(&s.signals, &summary, &self.policy, s.current);
            if target == s.current {
                s.streak_target = None;
                s.streak = 0;
            } else if s.streak_target == Some(target) {
                s.streak += 1;
            } else {
                s.streak_target = Some(target);
                s.streak = 1;
            }
            let cooled = s
                .last_transition
                .is_none_or(|t| now.since(t) >= self.policy.cooldown);
            if s.streak >= self.policy.confirm_windows && cooled {
                decisions.push(Decision {
                    service: key.clone(),
                    from: s.current,
                    to: target,
                    at: now,
                    reason,
                    window: summary.clone(),
                });
                s.current = target;
                s.streak_target = None;
                s.streak = 0;
                s.last_transition = Some(now);
            }
            s.last_summary = summary;
        }
        decisions
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(path: &str) -> ServiceKey {
        (Verb::Get, path.to_string())
    }

    fn replicable() -> StaticSignals {
        StaticSignals {
            replicable: true,
            pure: true,
            cacheable: true,
            read_units: 1,
            write_units: 1,
            state_bytes: 1024,
        }
    }

    fn read_window(n: u64) -> Observation {
        let _ = n;
        Observation {
            write: false,
            cache_hit: false,
            local_us: 200,
            forward_us: 50_000,
            local_demand_us: 200,
        }
    }

    fn write_heavy_window() -> Observation {
        Observation {
            write: true,
            cache_hit: false,
            local_us: 30_000,
            forward_us: 9_000,
            local_demand_us: 28_000,
        }
    }

    fn feed(c: &mut PlacementController, k: &ServiceKey, obs: Observation, n: u64) {
        for _ in 0..n {
            c.observe(k, obs);
        }
    }

    #[test]
    fn read_heavy_replicable_service_promotes_after_confirmation() {
        let mut c = PlacementController::new(PlacementPolicy::default(), 4.0);
        let k = key("/dash");
        c.register(k.clone(), replicable(), Placement::CloudPin);
        feed(&mut c, &k, read_window(0), 50);
        assert!(
            c.tick(SimTime(1_000_000)).is_empty(),
            "one window is not enough"
        );
        feed(&mut c, &k, read_window(1), 50);
        let d = c.tick(SimTime(5_000_000));
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].to, Placement::EdgeReplicate);
        assert_eq!(d[0].reason, DecisionReason::ReadHeavy);
        assert_eq!(c.placement(&k), Some(Placement::EdgeReplicate));
    }

    #[test]
    fn write_heavy_costly_service_demotes_to_cloud() {
        let mut c = PlacementController::new(PlacementPolicy::default(), 4.0);
        let k = key("/ingest");
        c.register(k.clone(), replicable(), Placement::EdgeReplicate);
        for t in 1..=2u64 {
            feed(&mut c, &k, write_heavy_window(), 40);
            let d = c.tick(SimTime(t * 4_000_000));
            if t == 2 {
                assert_eq!(d.len(), 1);
                assert_eq!(d[0].to, Placement::CloudPin);
                assert_eq!(d[0].reason, DecisionReason::ForwardCheaper);
            } else {
                assert!(d.is_empty());
            }
        }
    }

    #[test]
    fn overload_sheds_to_cloud_and_reentry_band_prevents_flapping() {
        let policy = PlacementPolicy {
            cooldown: SimDuration::from_secs(0),
            ..PlacementPolicy::default()
        };
        let mut c = PlacementController::new(policy, 4.0);
        let k = key("/ingest");
        c.register(k.clone(), replicable(), Placement::EdgeReplicate);
        // 300 writes/s at 28 ms unloaded each: offered utilization ~2.1
        let overload = Observation {
            write: true,
            cache_hit: false,
            local_us: 90_000,
            forward_us: 60_000,
            local_demand_us: 28_000,
        };
        for t in 1..=2u64 {
            feed(&mut c, &k, overload, 300);
            let d = c.tick(SimTime(t * 1_000_000));
            if t == 2 {
                assert_eq!(d[0].to, Placement::CloudPin);
                assert_eq!(d[0].reason, DecisionReason::EdgeOverload);
            }
        }
        // after shedding, forwarded observations keep the *unloaded* local
        // demand estimate: utilization stays above the ceiling, so the
        // controller must not promote back
        let forwarded = Observation {
            write: true,
            cache_hit: false,
            local_us: 28_000,
            forward_us: 62_000,
            local_demand_us: 28_000,
        };
        for t in 3..=8u64 {
            feed(&mut c, &k, forwarded, 300);
            assert!(
                c.tick(SimTime(t * 1_000_000)).is_empty(),
                "overloaded service must stay shed at tick {t}"
            );
        }
    }

    #[test]
    fn non_replicable_cacheable_read_service_goes_cache_only() {
        let mut c = PlacementController::new(PlacementPolicy::default(), 4.0);
        let k = key("/lookup");
        let signals = StaticSignals {
            replicable: false,
            ..replicable()
        };
        c.register(k.clone(), signals, Placement::CloudPin);
        let hit = Observation {
            write: false,
            cache_hit: true,
            local_us: 300,
            forward_us: 50_000,
            local_demand_us: 300,
        };
        for t in 1..=2u64 {
            feed(&mut c, &k, hit, 30);
            let d = c.tick(SimTime(t * 4_000_000));
            if t == 2 {
                assert_eq!(d[0].to, Placement::EdgeCacheOnly);
                assert_eq!(d[0].reason, DecisionReason::CacheAbsorbs);
            }
        }
        assert_eq!(c.placement(&k), Some(Placement::EdgeCacheOnly));
    }

    #[test]
    fn sync_chatty_writes_pin_to_cloud() {
        let policy = PlacementPolicy {
            sync_bytes_per_write_ceiling: 100.0,
            ..PlacementPolicy::default()
        };
        let mut c = PlacementController::new(policy, 4.0);
        let k = key("/blob");
        c.register(k.clone(), replicable(), Placement::EdgeReplicate);
        let w = Observation {
            write: true,
            cache_hit: false,
            local_us: 500,
            forward_us: 50_000,
            local_demand_us: 500,
        };
        for t in 1..=2u64 {
            feed(&mut c, &k, w, 20);
            c.observe_sync_bytes(&k, 400_000);
            let d = c.tick(SimTime(t * 4_000_000));
            if t == 2 {
                assert_eq!(d[0].to, Placement::CloudPin);
                assert_eq!(d[0].reason, DecisionReason::SyncTooChatty);
            }
        }
    }

    #[test]
    fn thin_windows_freeze_the_streak() {
        let mut c = PlacementController::new(PlacementPolicy::default(), 4.0);
        let k = key("/dash");
        c.register(k.clone(), replicable(), Placement::CloudPin);
        feed(&mut c, &k, read_window(0), 50);
        assert!(c.tick(SimTime(1_000_000)).is_empty());
        // a thin window neither advances nor cancels the pending streak
        feed(&mut c, &k, read_window(0), 2);
        assert!(c.tick(SimTime(2_000_000)).is_empty());
        feed(&mut c, &k, read_window(0), 50);
        let d = c.tick(SimTime(5_000_000));
        assert_eq!(d.len(), 1, "streak must survive the thin window");
    }

    #[test]
    fn cooldown_delays_confirmed_transition() {
        let policy = PlacementPolicy {
            cooldown: SimDuration::from_secs(10),
            ..PlacementPolicy::default()
        };
        let mut c = PlacementController::new(policy, 4.0);
        let k = key("/dash");
        c.register(k.clone(), replicable(), Placement::CloudPin);
        // first transition at t=2s
        for t in 1..=2u64 {
            feed(&mut c, &k, read_window(0), 50);
            c.tick(SimTime(t * 1_000_000));
        }
        assert_eq!(c.placement(&k), Some(Placement::EdgeReplicate));
        // now alternate toward write-heavy; confirmed at t=4s but cooled
        // down until t=12s
        let w = write_heavy_window();
        for t in 3..=11u64 {
            feed(&mut c, &k, w, 40);
            assert!(
                c.tick(SimTime(t * 1_000_000)).is_empty(),
                "cooldown must hold at t={t}s"
            );
        }
        feed(&mut c, &k, w, 40);
        let d = c.tick(SimTime(12_000_000));
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].to, Placement::CloudPin);
    }

    #[test]
    fn window_summary_ratios() {
        let s = WindowSample {
            requests: 10,
            writes: 2,
            cache_hits: 4,
            local_us: 1000,
            forward_us: 5000,
            local_demand_us: 800,
            sync_bytes: 640,
        };
        let w = WindowSummary::from_sample(&s, SimDuration::from_secs(1), 4.0);
        assert!((w.read_ratio - 0.8).abs() < 1e-9);
        assert!((w.hit_rate - 0.5).abs() < 1e-9);
        assert!((w.mean_local_us - 100.0).abs() < 1e-9);
        assert!((w.mean_forward_us - 500.0).abs() < 1e-9);
        assert_eq!(w.sync_bytes_per_write(), Some(320.0));
        assert!((w.utilization - 800.0 / 4_000_000.0).abs() < 1e-12);
    }
}
