//! Property tests for the tier-placement controller:
//!
//! 1. **Determinism** — two controllers built from the same seed/policy,
//!    fed identical telemetry windows, emit identical decision sequences.
//!    This is the contract the runtime's scripted-replay digest parity
//!    (E18) rests on.
//! 2. **Hysteresis flip bound** — under an alternating read/write
//!    square-wave, confirmation streaks and the cooldown provably bound
//!    the number of transitions: a wave whose half-period is shorter than
//!    `confirm_windows` windows never confirms a transition at all, and
//!    any wave flips at most `1 + elapsed / cooldown` times.

use edgstr_net::Verb;
use edgstr_placement::{
    Observation, Placement, PlacementController, PlacementPolicy, ServiceKey, StaticSignals,
};
use edgstr_sim::{SimDuration, SimTime};
use proptest::prelude::*;

fn service() -> ServiceKey {
    (Verb::Get, "/svc".to_string())
}

fn signals() -> StaticSignals {
    StaticSignals {
        replicable: true,
        pure: false,
        cacheable: true,
        read_units: 1,
        write_units: 1,
        state_bytes: 2048,
    }
}

/// One synthetic decision window: `reads`/`writes` observations with
/// plausible matched costs (local cheap for reads, expensive for writes).
#[derive(Debug, Clone)]
struct SynthWindow {
    reads: u64,
    writes: u64,
    hits: u64,
    sync_bytes: u64,
}

fn feed_window(c: &mut PlacementController, key: &ServiceKey, w: &SynthWindow) {
    for i in 0..w.reads {
        c.observe(
            key,
            Observation {
                write: false,
                cache_hit: i < w.hits,
                local_us: 300,
                forward_us: 50_000,
                local_demand_us: 300,
            },
        );
    }
    for _ in 0..w.writes {
        c.observe(
            key,
            Observation {
                write: true,
                cache_hit: false,
                local_us: 30_000,
                forward_us: 9_000,
                local_demand_us: 28_000,
            },
        );
    }
    c.observe_sync_bytes(key, w.sync_bytes);
}

fn window_strategy() -> impl Strategy<Value = SynthWindow> {
    (0u64..60, 0u64..60, 0u64..4096).prop_map(|(reads, writes, sync_bytes)| SynthWindow {
        hits: reads / 3,
        reads,
        writes,
        sync_bytes,
    })
}

proptest! {
    /// Identical windows into identically-seeded controllers yield
    /// identical decision sequences.
    #[test]
    fn identical_windows_yield_identical_decisions(
        windows in prop::collection::vec(window_strategy(), 1..40),
        seed in any::<u64>(),
    ) {
        let policy = PlacementPolicy { seed, ..PlacementPolicy::default() };
        let key = service();
        let mut a = PlacementController::new(policy.clone(), 4.0);
        let mut b = PlacementController::new(policy, 4.0);
        a.register(key.clone(), signals(), Placement::CloudPin);
        b.register(key.clone(), signals(), Placement::CloudPin);
        for (i, w) in windows.iter().enumerate() {
            let now = SimTime((i as u64 + 1) * 1_000_000);
            feed_window(&mut a, &key, w);
            feed_window(&mut b, &key, w);
            let da = a.tick(now);
            let db = b.tick(now);
            prop_assert_eq!(da.len(), db.len());
            for (x, y) in da.iter().zip(db.iter()) {
                prop_assert_eq!(&x.service, &y.service);
                prop_assert_eq!(x.from, y.from);
                prop_assert_eq!(x.to, y.to);
                prop_assert_eq!(x.at, y.at);
                prop_assert_eq!(x.reason, y.reason);
                prop_assert_eq!(&x.window, &y.window);
            }
        }
        prop_assert_eq!(a.placement(&key), b.placement(&key));
    }

    /// An alternating read/write square-wave can never flip the placement
    /// more than `1 + elapsed/cooldown` times, and a wave alternating
    /// every window (half-period 1) with `confirm_windows >= 2` never
    /// confirms any transition.
    #[test]
    fn square_wave_flips_are_bounded(
        half_period in 1usize..6,
        confirm in 2u32..4,
        cooldown_s in 0u64..8,
        windows in 8usize..80,
    ) {
        let policy = PlacementPolicy {
            confirm_windows: confirm,
            cooldown: SimDuration::from_secs(cooldown_s),
            ..PlacementPolicy::default()
        };
        let key = service();
        let mut c = PlacementController::new(policy, 4.0);
        c.register(key.clone(), signals(), Placement::EdgeReplicate);
        let read_phase = SynthWindow { reads: 40, writes: 0, hits: 10, sync_bytes: 100 };
        let write_phase = SynthWindow { reads: 0, writes: 40, hits: 0, sync_bytes: 100 };
        let mut flips = 0u64;
        for i in 0..windows {
            let w = if (i / half_period) % 2 == 0 { &read_phase } else { &write_phase };
            feed_window(&mut c, &key, w);
            flips += c.tick(SimTime((i as u64 + 1) * 1_000_000)) .len() as u64;
        }
        if half_period < confirm as usize {
            prop_assert_eq!(flips, 0, "half-period below the confirmation streak must never flip");
        }
        let elapsed_s = windows as u64; // one window per virtual second
        let cooldown_bound = elapsed_s
            .checked_div(cooldown_s)
            .map_or(u64::MAX, |periods| 1 + periods);
        // each flip also consumes at least `confirm` windows of streak
        let streak_bound = windows as u64 / confirm as u64;
        prop_assert!(
            flips <= cooldown_bound.min(streak_bound.max(1)),
            "flips {} exceed hysteresis bound (cooldown {}, streak {})",
            flips, cooldown_bound, streak_bound
        );
    }
}
