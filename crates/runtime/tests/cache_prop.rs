//! Property tests for read-set-versioned cache invalidation soundness:
//! under generated interleavings of local reads, local/remote writes, and
//! chaotic sync deliveries (drops, reorderings, duplications — the E11
//! adversary), a cache hit never returns a response that differs from
//! fresh execution against the replica's current state.
//!
//! The cache is *allowed* to miss spuriously (extra invalidation is
//! harmless); what must never happen is a stale hit.

use edgstr_analysis::{EffectSummary, InitState, ReadUnit, ServerProcess, StateUnit};
use edgstr_core::CrdtBindings;
use edgstr_crdt::ActorId;
use edgstr_net::HttpRequest;
use edgstr_runtime::{
    resolve_reads, CacheKey, CrdtSet, ResponseCache, SetSyncMessage, SyncEndpoint,
};
use edgstr_telemetry::Telemetry;
use proptest::prelude::*;
use proptest::test_runner::TestCaseFailure;
use serde_json::json;

/// Small kv app exercising all three read-unit shapes: a row-keyed table
/// read (`/get`), a whole-table read (`/count`), and a global read
/// (`/hits`). `/put` upserts a row, touches a file, and mutates a global.
const APP: &str = r#"
    db.query("CREATE TABLE kv (k TEXT PRIMARY KEY, v INT)");
    db.query("INSERT INTO kv VALUES ('seed', 1)");
    var hits = 0;
    app.post("/put", function (req, res) {
        hits = hits + 1;
        db.query("DELETE FROM kv WHERE k = '" + req.body.k + "'");
        db.query("INSERT INTO kv VALUES ('" + req.body.k + "', " + req.body.v + ")");
        fs.writeFile("/latest.txt", req.body.k);
        res.send({ ok: hits });
    });
    app.get("/get", function (req, res) {
        var rows = db.query("SELECT v FROM kv WHERE k = '" + req.params.k + "'");
        res.send(rows);
    });
    app.get("/count", function (req, res) {
        var rows = db.query("SELECT COUNT(*) FROM kv");
        res.send(rows);
    });
    app.get("/hits", function (req, res) {
        res.send({ hits: hits });
    });
"#;

fn bindings() -> CrdtBindings {
    CrdtBindings::from_units([
        StateUnit::DbTable("kv".into()),
        StateUnit::File("/latest.txt".into()),
        StateUnit::Global("hits".into()),
    ])
}

fn init_state() -> InitState {
    let mut s = ServerProcess::from_source(APP).unwrap();
    s.init().unwrap();
    s.fs.write("/latest.txt", b"seed".to_vec());
    InitState::capture(&s)
}

fn make_node(actor: u64, init: &InitState) -> (ServerProcess, CrdtSet) {
    let mut s = ServerProcess::from_source(APP).unwrap();
    s.init().unwrap();
    init.restore(&mut s);
    let set = CrdtSet::initialize(ActorId(actor), &bindings(), init);
    (s, set)
}

/// What static analysis would derive for each read service — written by
/// hand here so the property isolates the *cache* layer, not the profiler.
fn summary_for(path: &str) -> EffectSummary {
    let reads = match path {
        "/get" => vec![ReadUnit::TableKeyed {
            table: "kv".into(),
            param: "k".into(),
        }],
        "/count" => vec![ReadUnit::Table("kv".into())],
        "/hits" => vec![ReadUnit::Global("hits".into())],
        other => panic!("no summary for {other}"),
    };
    EffectSummary {
        reads,
        writes: vec![],
        pure: true,
        cacheable: true,
    }
}

/// One step of a generated interleaving.
#[derive(Debug, Clone, Copy)]
enum Op {
    /// Upsert row `k{k}` at the edge.
    WriteEdge { k: u8, v: i8 },
    /// Upsert row `k{k}` at the cloud (only visible to the edge via sync).
    WriteCloud { k: u8, v: i8 },
    /// Row-keyed read at the edge, checked against the cache.
    ReadRow { k: u8 },
    /// Whole-table read at the edge, checked against the cache.
    ReadCount,
    /// Global read at the edge, checked against the cache.
    ReadHits,
    /// Perturb the edge→cloud sync queue.
    NetUp(NetEvent),
    /// Perturb the cloud→edge sync queue (the one that can stale the
    /// edge's cache).
    NetDown(NetEvent),
}

/// The E11 adversary's per-step action on the oldest in-flight message.
#[derive(Debug, Clone, Copy)]
enum NetEvent {
    Deliver,
    Drop,
    Duplicate,
    ReorderNewestFirst,
}

fn net_event() -> impl Strategy<Value = NetEvent> {
    prop_oneof![
        Just(NetEvent::Deliver),
        Just(NetEvent::Drop),
        Just(NetEvent::Duplicate),
        Just(NetEvent::ReorderNewestFirst),
    ]
}

fn op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u8..5, -9i8..9).prop_map(|(k, v)| Op::WriteEdge { k, v }),
        (0u8..5, -9i8..9).prop_map(|(k, v)| Op::WriteCloud { k, v }),
        (0u8..6).prop_map(|k| Op::ReadRow { k }),
        Just(Op::ReadCount),
        Just(Op::ReadHits),
        net_event().prop_map(Op::NetUp),
        net_event().prop_map(Op::NetDown),
    ]
}

/// Generate-and-perturb: enqueue a fresh delta from `src_set` via
/// `src_ep`, then let the adversary act on the queue, delivering into the
/// destination node when it chooses to.
fn perturb(
    queue: &mut Vec<SetSyncMessage>,
    event: NetEvent,
    dst_ep: &mut SyncEndpoint,
    dst_set: &mut CrdtSet,
    dst_srv: &mut ServerProcess,
) {
    match event {
        NetEvent::Deliver => {
            if !queue.is_empty() {
                let m = queue.remove(0);
                dst_ep.receive_owned(dst_set, dst_srv, m);
            }
        }
        NetEvent::Drop => {
            if !queue.is_empty() {
                queue.remove(0);
            }
        }
        NetEvent::Duplicate => {
            if !queue.is_empty() {
                let m = queue.remove(0);
                dst_ep.receive(dst_set, dst_srv, &m);
                dst_ep.receive(dst_set, dst_srv, &m);
            }
        }
        NetEvent::ReorderNewestFirst => {
            if let Some(m) = queue.pop() {
                dst_ep.receive_owned(dst_set, dst_srv, m);
            }
        }
    }
}

fn row_key(k: u8) -> String {
    if k == 5 {
        "seed".to_string()
    } else {
        format!("k{k}")
    }
}

/// The property's core move: look up the cache *before* executing, run the
/// service fresh, and require any hit to be bit-identical to the fresh
/// response; on a miss, fill with the read set's current version stamps.
fn checked_read(
    req: &HttpRequest,
    edge: &mut ServerProcess,
    edge_set: &CrdtSet,
    cache: &mut ResponseCache,
) -> Result<(), TestCaseFailure> {
    let key = CacheKey::for_request(req);
    let cached = cache.lookup(&key, &edge_set.versions);
    let fresh = edge.handle(req).unwrap().response;
    match cached {
        Some(hit) => prop_assert_eq!(
            &hit,
            &fresh,
            "stale cache hit for {} {:?}: cached {:?} != fresh {:?}",
            req.path,
            req.params,
            hit,
            fresh
        ),
        None => {
            let summary = summary_for(&req.path);
            let units = resolve_reads(&summary, req);
            cache.fill(key, &fresh, edge_set.versions.snapshot(&units));
        }
    }
    Ok(())
}

/// Regression (crash/rejoin soundness): a rejoined edge must never serve a
/// response cached by its pre-crash incarnation. The restarted replica's
/// version counters start over, so a surviving entry stamped by the old
/// epoch could revalidate against an unrelated post-restart state —
/// `crash_edge`/`restart_edge` must drop the cache with the process.
#[test]
fn rejoined_edge_never_serves_pre_crash_cached_responses() {
    use edgstr_core::{capture_and_transform, EdgStrConfig};
    use edgstr_runtime::{CachePolicy, ThreeTierOptions, ThreeTierSystem, Workload};
    use edgstr_sim::DeviceSpec;

    const NOTES_APP: &str = r#"
        db.query("CREATE TABLE notes (id INT PRIMARY KEY, text TEXT)");
        var written = 0;
        app.post("/note", function (req, res) {
            written = written + 1;
            db.query("INSERT INTO notes VALUES (" + req.body.id + ", '" + req.body.text + "')");
            res.send({ n: written });
        });
        app.get("/count", function (req, res) {
            var rows = db.query("SELECT COUNT(*) FROM notes");
            res.send(rows[0]);
        });
    "#;
    let capture = vec![
        HttpRequest::post("/note", json!({"id": 900, "text": "warm"}), vec![]),
        HttpRequest::get("/count", json!({})),
    ];
    let (report, _) = capture_and_transform(NOTES_APP, &capture, &EdgStrConfig::default()).unwrap();
    let note =
        |i: usize| HttpRequest::post("/note", json!({"id": i, "text": format!("t{i}")}), vec![]);
    let count = HttpRequest::get("/count", json!({}));
    // phase A caches /count after three writes (version stamp 3); phase B
    // adds three more writes, driving the rejoined replica's fresh
    // counters back to exactly the stale entry's stamp before reading —
    // the interleaving a surviving pre-crash entry would serve stale
    let phase_a = vec![note(1), note(2), note(3), count.clone(), count.clone()];
    let phase_b = vec![note(4), note(5), note(6), count];

    let run_phases = |cache: CachePolicy, crash_between: bool| {
        let mut sys = ThreeTierSystem::deploy(
            NOTES_APP,
            &report,
            &[DeviceSpec::rpi4()],
            ThreeTierOptions {
                cache,
                ..Default::default()
            },
        )
        .unwrap();
        let a = sys.run(&Workload::constant_rate(&phase_a, 10.0, phase_a.len()));
        if crash_between {
            sys.crash_edge(0);
            sys.restart_edge(0).unwrap();
        }
        let b =
            sys.run(&Workload::constant_rate(&phase_b, 10.0, phase_b.len()).shifted(a.makespan));
        (a, b)
    };

    let (ref_a, ref_b) = run_phases(CachePolicy::Off, false);
    let (hot_a, hot_b) = run_phases(CachePolicy::All, true);
    assert_eq!(hot_a.completed, phase_a.len());
    assert_eq!(hot_b.completed, phase_b.len());
    assert_eq!(
        ref_a.response_digest, hot_a.response_digest,
        "pre-crash cached phase must match uncached execution"
    );
    assert_eq!(
        ref_b.response_digest, hot_b.response_digest,
        "a rejoined edge served a pre-crash cached response"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Arbitrary interleavings of edge writes, cloud writes, cached edge
    /// reads, and adversarial sync schedules never produce a stale hit —
    /// across row-keyed, whole-table, and global read units.
    #[test]
    fn cache_hits_always_match_fresh_execution(
        ops in prop::collection::vec(op(), 1..40),
    ) {
        let init = init_state();
        let (mut cloud, mut cloud_set) = make_node(1, &init);
        let (mut edge, mut edge_set) = make_node(2, &init);
        let mut e2c = SyncEndpoint::new();
        let mut c2e = SyncEndpoint::new();
        let mut up: Vec<SetSyncMessage> = Vec::new();
        let mut down: Vec<SetSyncMessage> = Vec::new();
        let mut cache = ResponseCache::new(1 << 20, &Telemetry::disabled());

        for o in &ops {
            match *o {
                Op::WriteEdge { k, v } => {
                    let req = HttpRequest::post(
                        "/put",
                        json!({"k": row_key(k), "v": v}),
                        vec![],
                    );
                    let out = edge.handle(&req).unwrap();
                    edge_set.absorb_outcome(&out, &edge);
                }
                Op::WriteCloud { k, v } => {
                    let req = HttpRequest::post(
                        "/put",
                        json!({"k": row_key(k), "v": v}),
                        vec![],
                    );
                    let out = cloud.handle(&req).unwrap();
                    cloud_set.absorb_outcome(&out, &cloud);
                }
                Op::ReadRow { k } => {
                    let req = HttpRequest::get("/get", json!({"k": row_key(k)}));
                    checked_read(&req, &mut edge, &edge_set, &mut cache)?;
                }
                Op::ReadCount => {
                    let req = HttpRequest::get("/count", json!({}));
                    checked_read(&req, &mut edge, &edge_set, &mut cache)?;
                }
                Op::ReadHits => {
                    let req = HttpRequest::get("/hits", json!({}));
                    checked_read(&req, &mut edge, &edge_set, &mut cache)?;
                }
                Op::NetUp(ev) => {
                    up.push(e2c.generate(&edge_set));
                    perturb(&mut up, ev, &mut c2e, &mut cloud_set, &mut cloud);
                }
                Op::NetDown(ev) => {
                    down.push(c2e.generate(&cloud_set));
                    perturb(&mut down, ev, &mut e2c, &mut edge_set, &mut edge);
                }
            }
        }

        // the link heals: stragglers flush (possibly reordered), then two
        // reliable rounds converge the replicas — cached reads must stay
        // sound throughout and agree across tiers at the end
        for m in down.drain(..).rev() {
            e2c.receive_owned(&mut edge_set, &mut edge, m);
        }
        for m in up.drain(..).rev() {
            c2e.receive_owned(&mut cloud_set, &mut cloud, m);
        }
        for _ in 0..2 {
            let u = e2c.generate(&edge_set);
            c2e.receive_owned(&mut cloud_set, &mut cloud, u);
            let d = c2e.generate(&cloud_set);
            e2c.receive_owned(&mut edge_set, &mut edge, d);
        }
        for req in [
            HttpRequest::get("/count", json!({})),
            HttpRequest::get("/hits", json!({})),
            HttpRequest::get("/get", json!({"k": "seed"})),
        ] {
            checked_read(&req, &mut edge, &edge_set, &mut cache)?;
            // converged: the edge's (possibly cached) view equals the cloud's
            let at_cloud = cloud.handle(&req).unwrap().response;
            let at_edge = edge.handle(&req).unwrap().response;
            prop_assert_eq!(at_edge, at_cloud);
        }
    }

    /// Remote-delivery-only variant: the cloud is the sole writer and the
    /// edge only reads. Every version bump the edge sees comes from
    /// `apply_remote` under an adversarial schedule, so this pins the
    /// tracked-apply → invalidation path specifically.
    #[test]
    fn chaotic_deliveries_invalidate_before_reads_go_stale(
        writes in prop::collection::vec((0u8..4, -9i8..9), 1..12),
        schedule in prop::collection::vec(net_event(), 1..24),
    ) {
        let init = init_state();
        let (mut cloud, mut cloud_set) = make_node(1, &init);
        let (mut edge, mut edge_set) = make_node(2, &init);
        let mut e2c = SyncEndpoint::new();
        let mut c2e = SyncEndpoint::new();
        let mut down: Vec<SetSyncMessage> = Vec::new();
        let mut cache = ResponseCache::new(1 << 20, &Telemetry::disabled());
        let mut w = writes.iter();

        for ev in &schedule {
            // interleave: one cloud write (if any remain), one queued delta,
            // one adversary action, then cached reads of every unit shape
            if let Some(&(k, v)) = w.next() {
                let req = HttpRequest::post(
                    "/put",
                    json!({"k": row_key(k), "v": v}),
                    vec![],
                );
                let out = cloud.handle(&req).unwrap();
                cloud_set.absorb_outcome(&out, &cloud);
            }
            down.push(c2e.generate(&cloud_set));
            perturb(&mut down, *ev, &mut e2c, &mut edge_set, &mut edge);
            for req in [
                HttpRequest::get("/get", json!({"k": "k0"})),
                HttpRequest::get("/count", json!({})),
                HttpRequest::get("/hits", json!({})),
            ] {
                checked_read(&req, &mut edge, &edge_set, &mut cache)?;
            }
        }
        // at least some traffic should have been servable from cache
        prop_assert!(cache.stats().hits + cache.stats().misses > 0);
    }
}
