//! Property test for mid-run tier-placement transitions under failure:
//! a demote-then-promote round trip composed with a lossy WAN fault plan
//! never loses a write the client saw acknowledged.
//!
//! The transition machinery snapshots every live edge's acked prefix at
//! each completed flip ([`edgstr_runtime::PlacementStats::acked_snapshots`]);
//! after the cluster converges, the master clock must dominate every
//! snapshot, and the master table must hold one row per acknowledged
//! insert — whatever the loss rate, seed, or flip timing.

use edgstr_core::{capture_and_transform, EdgStrConfig};
use edgstr_net::{FaultPlan, HttpRequest, LossModel, Verb};
use edgstr_runtime::{
    Placement, PlacementMode, PlacementScript, ScriptedDecision, ThreeTierOptions, ThreeTierSystem,
    Workload,
};
use edgstr_sim::{DeviceSpec, SimTime};
use proptest::prelude::*;
use serde_json::json;

const APP: &str = r#"
    db.query("CREATE TABLE notes (id INT PRIMARY KEY, text TEXT)");
    var written = 0;
    app.post("/note", function (req, res) {
        written = written + 1;
        db.query("INSERT INTO notes VALUES (" + req.body.id + ", '" + req.body.text + "')");
        res.send({ n: written });
    });
    app.get("/count", function (req, res) {
        var rows = db.query("SELECT COUNT(*) FROM notes");
        res.send(rows[0]);
    });
"#;

fn report() -> edgstr_core::TransformationReport {
    let reqs = vec![
        HttpRequest::post("/note", json!({"id": 900, "text": "warm"}), vec![]),
        HttpRequest::get("/count", json!({})),
    ];
    capture_and_transform(APP, &reqs, &EdgStrConfig::default())
        .unwrap()
        .0
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn placement_round_trip_never_loses_acked_writes(
        loss_pct in 0u64..35,
        seed in any::<u64>(),
        demote_s in 1u64..3,
        promote_gap_s in 1u64..3,
    ) {
        let loss = loss_pct as f64 / 100.0;
        let report = report();
        let mut faults = FaultPlan::new(seed);
        faults.set_default_loss(LossModel::uniform(loss));
        let key = (Verb::Post, "/note".to_string());
        let script = PlacementScript {
            pinned: None,
            decisions: vec![
                ScriptedDecision {
                    at: SimTime(demote_s * 1_000_000),
                    service: key.clone(),
                    to: Placement::CloudPin,
                },
                ScriptedDecision {
                    at: SimTime((demote_s + promote_gap_s) * 1_000_000),
                    service: key.clone(),
                    to: Placement::EdgeReplicate,
                },
            ],
        };
        let mut sys = ThreeTierSystem::deploy(
            APP,
            &report,
            &[DeviceSpec::rpi4(), DeviceSpec::rpi3()],
            ThreeTierOptions {
                faults: Some(faults),
                placement: PlacementMode::Scripted(script),
                ..Default::default()
            },
        )
        .unwrap();
        let reqs: Vec<HttpRequest> = (0..60)
            .map(|i| HttpRequest::post("/note", json!({"id": i, "text": format!("t{i}")}), vec![]))
            .collect();
        let wl = Workload::constant_rate(&reqs, 10.0, 60);
        let stats = sys.run(&wl);
        // under loss some cloud-pinned forwards may exhaust their retries;
        // only acknowledged completions are owed durability
        prop_assert_eq!(stats.completed + stats.failed, 60);
        prop_assert!(
            sys.sync_until_converged(stats.makespan, 400).is_some(),
            "lossy cluster must still converge"
        );
        let master = sys.cloud_crdts.clock();
        for snap in &sys.placement_stats().acked_snapshots {
            prop_assert!(
                master.dominates(snap),
                "acked write lost across a placement flip (loss {loss:.2}, seed {seed})"
            );
        }
        // one row per acknowledged insert, plus the capture warm-up row
        prop_assert_eq!(
            sys.cloud_crdts.tables["notes"].len(),
            stats.completed + 1,
            "master must hold exactly one row per acknowledged insert"
        );
    }
}
