//! Wall-clock parallel serving: a multi-threaded edge executor with
//! per-replica state ownership.
//!
//! The virtual-time drivers ([`crate::ThreeTierSystem`]) execute every
//! request on one host thread and *simulate* concurrency; throughput is a
//! simulated number. This module is the real-time sibling: it runs under
//! [`Clock::Wall`] and puts each edge replica's entire serving state — VM,
//! CRDT set, response cache — on exactly one worker thread, so the serve
//! hot path takes **no locks and touches no shared mutable state**.
//!
//! ## Ownership model
//!
//! The deployment has a fixed replica count `R` (independent of the thread
//! count). Request `i` routes to replica `i % R`, and replica `r` is owned
//! by worker `r % T` for `T` worker threads. Ownership is *static* by
//! design: the VM and its SQL statement cache are deliberately
//! thread-owned (`Rc` interiors — see the Send audit in
//! `edgstr-lang/src/vm.rs`), so replicas cannot migrate between threads
//! mid-run, and request-granular stealing across replicas would reorder a
//! replica's request stream and break determinism. With uniform routing
//! the per-worker queues are balanced by construction, which is what a
//! stealing pool would converge to anyway.
//!
//! Static ownership is also what makes the executor *deterministic up to
//! scheduling*: a replica serves its request subsequence in order, and
//! remote deltas are only folded in at the final convergence flush, so
//! every response is a pure function of the replica's own stream —
//! independent of `T`. The differential suite asserts that per-request
//! response digests on N threads are bit-identical to the single-threaded
//! reference, and that all replicas and the cloud converge to the same
//! replicated state (CRDT merge is commutative, so delta arrival order at
//! the cloud doesn't matter).
//!
//! ## Delta plumbing
//!
//! Workers batch CRDT deltas ([`SetSyncMessage`]) through a bounded
//! [`std::sync::mpsc::sync_channel`] to a dedicated cloud thread that owns
//! the cloud master replica; after the timed window closes, workers flush
//! their remaining deltas, the cloud folds everything, and per-replica
//! convergence deltas flow back over per-worker bounded channels. The
//! in-process channels are reliable, so endpoints run in
//! [`AdvanceMode::Optimistic`] (the loss-tolerant ack protocol exists for
//! the simulated WAN, which this executor does not traverse).

use crate::cache::{
    bump_static_global_writes, resolve_reads, CacheKey, CachePolicy, CacheStats, ResponseCache,
    UnitKey,
};
use crate::crdtset::{CrdtSet, SetSyncMessage, SyncEndpoint};
use edgstr_analysis::{EffectSummary, InitSeed, InitState, ServerProcess, StateUnit};
use edgstr_core::{CrdtBindings, TransformationReport};
use edgstr_crdt::{ActorId, AdvanceMode};
use edgstr_lang::Program;
use edgstr_net::{HttpRequest, HttpResponse, Verb};
use edgstr_sim::{Clock, SimDuration};
use edgstr_telemetry::{RegistrySnapshot, Telemetry};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender};
use std::sync::{Arc, Barrier};

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01B3;

fn fnv1a(mut h: u64, bytes: &[u8]) -> u64 {
    for b in bytes {
        h ^= u64::from(*b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// FNV-1a digest of one response (status + canonical body) — the same
/// shape the virtual-time drivers and the multi-variant check use.
fn response_digest(resp: &HttpResponse) -> u64 {
    let h = fnv1a(FNV_OFFSET, &resp.status.to_le_bytes());
    fnv1a(h, resp.body.to_string().as_bytes())
}

/// Digest of a failed request in the per-request digest stream.
pub const FAILED_DIGEST: u64 = 0;

/// Everything a worker thread needs to build its replicas locally: plain
/// data, `Send + Sync`, shared via one `Arc`. Workers construct the
/// non-`Send` runtime state (VM, statement caches) *from* this seed on
/// their own thread — per-thread construction is the pool model the Send
/// audit settled on.
#[derive(Debug, Clone)]
pub struct ReplicaSeed {
    pub program: Program,
    pub bindings: CrdtBindings,
    /// Send-safe init snapshot ([`edgstr_lang::Value`]s are thread-owned — see
    /// [`InitSeed`]); each worker rebuilds a thread-local [`InitState`].
    pub init: InitSeed,
    /// Services the replica executes locally; everything else fails
    /// deterministically (the parallel executor has no WAN to forward
    /// over — cloud-pinned services belong to the virtual-time drivers).
    pub replicated: BTreeSet<(Verb, String)>,
    /// Per-service effect summaries: the cache's read/write sets.
    pub effects: BTreeMap<(Verb, String), EffectSummary>,
}

impl ReplicaSeed {
    /// Extract the seed from a transformation report.
    pub fn from_report(report: &TransformationReport) -> ReplicaSeed {
        ReplicaSeed {
            program: report.replica.program.clone(),
            bindings: report.replica.bindings.clone(),
            init: InitSeed::from_state(&report.replica.init),
            replicated: report.replica.replicated.iter().cloned().collect(),
            effects: report
                .services
                .iter()
                .filter_map(|s| {
                    s.profile
                        .as_ref()
                        .map(|p| ((s.verb, s.path.clone()), p.effects.clone()))
                })
                .collect(),
        }
    }
}

/// Tuning knobs for the parallel executor.
#[derive(Debug, Clone)]
pub struct ParallelOptions {
    /// Fixed replica count `R`; request `i` routes to replica `i % R`.
    /// Independent of the worker count so responses don't change when the
    /// thread count does.
    pub replicas: usize,
    /// Worker threads `T` (clamped to `R`); replica `r` is owned by
    /// worker `r % T`.
    pub workers: usize,
    /// Requests a replica serves between delta flushes to the cloud.
    pub sync_batch: usize,
    /// Bound of the job and delta channels (backpressure, not loss).
    pub channel_capacity: usize,
    pub cache: CachePolicy,
    pub cache_budget_bytes: usize,
    /// Give each worker a private recording telemetry shard, folded into
    /// [`ParallelRunStats::telemetry`] at the end of the run.
    pub telemetry_shards: bool,
}

impl Default for ParallelOptions {
    fn default() -> Self {
        ParallelOptions {
            replicas: 8,
            workers: 1,
            sync_batch: 16,
            channel_capacity: 256,
            cache: CachePolicy::Off,
            cache_budget_bytes: 256 * 1024,
            telemetry_shards: false,
        }
    }
}

/// Measurements from one parallel run.
#[derive(Debug, Clone, Default)]
pub struct ParallelRunStats {
    pub completed: usize,
    pub failed: usize,
    /// Real elapsed time of the serving window (dispatch of the first
    /// request to the last worker draining its queue), measured by
    /// [`Clock::wall`]. Excludes replica construction and the untimed
    /// convergence flush.
    pub elapsed: SimDuration,
    /// Digest of each request's response in schedule order
    /// ([`FAILED_DIGEST`] for failed requests) — the differential unit.
    pub per_request_digests: Vec<u64>,
    /// FNV-1a chain over `per_request_digests`, one word per run.
    pub response_digest: u64,
    /// Digest of the replicated state (bound tables/files/globals) after
    /// the convergence flush; identical on every replica and the cloud
    /// when `converged`.
    pub state_digest: u64,
    /// All replicas and the cloud reached the same replicated state.
    pub converged: bool,
    /// Cache statistics folded over every replica.
    pub cache: CacheStats,
    /// Worker telemetry shards folded together (empty unless
    /// [`ParallelOptions::telemetry_shards`] and the `enabled` feature).
    pub telemetry: RegistrySnapshot,
    /// CRDT delta messages shipped worker→cloud.
    pub delta_messages: usize,
    pub workers: usize,
    pub replicas: usize,
}

impl ParallelRunStats {
    /// Completed requests per second of real elapsed time.
    pub fn throughput_rps(&self) -> f64 {
        let s = self.elapsed.as_secs_f64();
        if s > 0.0 {
            self.completed as f64 / s
        } else {
            0.0
        }
    }
}

/// Cache participation of one request (the parallel twin of the
/// virtual-time driver's plan: key, concrete read units, fill gates).
struct CachePlan {
    key: CacheKey,
    reads: Vec<UnitKey>,
    globals_clean: bool,
}

fn cache_plan(seed: &ReplicaSeed, policy: CachePolicy, request: &HttpRequest) -> Option<CachePlan> {
    if policy == CachePolicy::Off {
        return None;
    }
    let summary = seed.effects.get(&(request.verb, request.path.clone()))?;
    if !summary.cacheable {
        return None;
    }
    if policy == CachePolicy::ReadOnlyServices && !summary.pure {
        return None;
    }
    Some(CachePlan {
        key: CacheKey::for_request(request),
        reads: resolve_reads(summary, request),
        globals_clean: !summary
            .writes
            .iter()
            .any(|w| matches!(w, StateUnit::Global(_))),
    })
}

/// One worker-owned edge replica: all of this lives on a single thread.
struct OwnedReplica {
    server: ServerProcess,
    crdts: CrdtSet,
    to_cloud: SyncEndpoint,
    cache: ResponseCache,
    served_since_flush: usize,
}

impl OwnedReplica {
    fn build(seed: &ReplicaSeed, actor: u64, budget: usize, telemetry: &Telemetry) -> OwnedReplica {
        let init: InitState = seed.init.to_state();
        let mut server = ServerProcess::from_program(seed.program.clone());
        server.init().expect("replica program init");
        init.restore(&mut server);
        OwnedReplica {
            server,
            crdts: CrdtSet::initialize(ActorId(actor), &seed.bindings, &init),
            to_cloud: SyncEndpoint {
                mode: AdvanceMode::Optimistic,
                ..SyncEndpoint::new()
            },
            cache: ResponseCache::new(budget, telemetry),
            served_since_flush: 0,
        }
    }

    /// Serve one request on the owning thread: cache lookup, execute,
    /// absorb effects into the CRDT set, effect-free fill. Returns the
    /// response digest, or `None` for a failed (non-replicated or
    /// erroring) request. Mirrors the local-serve path of
    /// [`crate::ThreeTierSystem::run`] minus the simulated network/device.
    fn serve(
        &mut self,
        seed: &ReplicaSeed,
        policy: CachePolicy,
        request: &HttpRequest,
    ) -> Option<u64> {
        let key = (request.verb, request.path.clone());
        if !seed.replicated.contains(&key) {
            return None;
        }
        let plan = cache_plan(seed, policy, request);
        if let Some(p) = &plan {
            if let Some(response) = self.cache.lookup(&p.key, &self.crdts.versions) {
                return Some(response_digest(&response));
            }
        }
        match self.server.handle(request) {
            Ok(out) => {
                self.crdts.absorb_outcome(&out, &self.server);
                if policy != CachePolicy::Off {
                    bump_static_global_writes(&mut self.crdts.versions, seed.effects.get(&key));
                }
                if let Some(p) = &plan {
                    // only a demonstrably effect-free execution may fill
                    let effect_free = out.row_effects.is_empty()
                        && out.file_writes.is_empty()
                        && out.global_writes.is_empty()
                        && p.globals_clean;
                    if effect_free {
                        let stamp = self.crdts.versions.snapshot(&p.reads);
                        self.cache.fill(p.key.clone(), &out.response, stamp);
                    }
                }
                Some(response_digest(&out.response))
            }
            Err(_) => None,
        }
    }
}

/// Digest of the *replicated* state units (bound tables, files, globals)
/// materialized in `server`. Non-replicated state is deliberately excluded
/// — it is local to whichever replica happened to write it.
fn replicated_state_digest(bindings: &CrdtBindings, server: &ServerProcess) -> u64 {
    let db = server.db.snapshot().to_json();
    let mut h = FNV_OFFSET;
    for t in &bindings.tables {
        h = fnv1a(h, t.as_bytes());
        let rows = db.get(t).map(|v| v.to_string()).unwrap_or_default();
        h = fnv1a(h, rows.as_bytes());
    }
    for f in &bindings.files {
        h = fnv1a(h, f.as_bytes());
        h = fnv1a(h, server.fs.peek(f).unwrap_or(&[]));
    }
    for g in &bindings.globals {
        h = fnv1a(h, g.as_bytes());
        let v = server
            .global_json(g)
            .map(|v| v.to_string())
            .unwrap_or_default();
        h = fnv1a(h, v.as_bytes());
    }
    h
}

/// A delta shipped from a worker to the cloud thread.
struct Delta {
    replica: usize,
    msg: SetSyncMessage,
}

/// What one worker reports back when it finishes.
struct WorkerOutcome {
    completed: usize,
    failed: usize,
    /// `(schedule index, response digest)` for every request this worker
    /// served or failed.
    digests: Vec<(u32, u64)>,
    /// `(replica index, replicated-state digest)` after convergence.
    state_digests: Vec<(usize, u64)>,
    cache: CacheStats,
    telemetry: RegistrySnapshot,
    deltas_sent: usize,
}

/// The wall-clock parallel deployment: a cloud master thread plus `T`
/// worker threads owning `R` edge replicas between them.
pub struct ParallelSystem {
    cloud_source: String,
    seed: Arc<ReplicaSeed>,
    options: ParallelOptions,
}

impl ParallelSystem {
    pub fn new(
        cloud_source: &str,
        report: &TransformationReport,
        options: ParallelOptions,
    ) -> ParallelSystem {
        ParallelSystem {
            cloud_source: cloud_source.to_string(),
            seed: Arc::new(ReplicaSeed::from_report(report)),
            options,
        }
    }

    pub fn options(&self) -> &ParallelOptions {
        &self.options
    }

    /// Execute `requests`, returning measurements. Request `i` is served
    /// by replica `i % R` in per-replica arrival order; see the module
    /// docs for why the responses are independent of the worker count.
    pub fn run(&self, requests: &[HttpRequest]) -> ParallelRunStats {
        let r_count = self.options.replicas.max(1);
        let t_count = self.options.workers.max(1).min(r_count);
        let batch = self.options.sync_batch.max(1);
        let cap = self.options.channel_capacity.max(1);
        let seed = &self.seed;
        let options = &self.options;
        let cloud_source = self.cloud_source.as_str();

        // start: all workers built their replicas, the timed window opens.
        // drained: every worker emptied its queue, the window closes.
        let start = Barrier::new(t_count + 1);
        let drained = Barrier::new(t_count + 1);

        let mut stats = ParallelRunStats {
            workers: t_count,
            replicas: r_count,
            per_request_digests: vec![FAILED_DIGEST; requests.len()],
            ..ParallelRunStats::default()
        };

        let (outcomes, cloud_digest, delta_messages, elapsed) = std::thread::scope(|s| {
            // job channels: main → worker, bounded for backpressure
            let mut job_txs: Vec<SyncSender<(u32, HttpRequest)>> = Vec::with_capacity(t_count);
            let mut job_rxs: Vec<Receiver<(u32, HttpRequest)>> = Vec::with_capacity(t_count);
            for _ in 0..t_count {
                let (tx, rx) = sync_channel(cap);
                job_txs.push(tx);
                job_rxs.push(rx);
            }
            // delta channel: workers → cloud, shared
            let (delta_tx, delta_rx) = sync_channel::<Delta>(cap);
            // convergence channels: cloud → worker
            let mut back_txs: Vec<SyncSender<(usize, SetSyncMessage)>> =
                Vec::with_capacity(t_count);
            let mut back_rxs: Vec<Receiver<(usize, SetSyncMessage)>> = Vec::with_capacity(t_count);
            for _ in 0..t_count {
                let (tx, rx) = sync_channel(cap);
                back_txs.push(tx);
                back_rxs.push(rx);
            }

            // The cloud master thread: owns the cloud replica, folds every
            // incoming delta (CRDT merge is commutative, so arrival order
            // across workers doesn't matter), then emits per-replica
            // convergence deltas once all workers have flushed.
            let cloud = s.spawn({
                let seed = Arc::clone(seed);
                move || {
                    let init: InitState = seed.init.to_state();
                    let mut server =
                        ServerProcess::from_source(cloud_source).expect("cloud source parses");
                    server.init().expect("cloud init");
                    init.restore(&mut server);
                    let mut crdts = CrdtSet::initialize(ActorId(1), &seed.bindings, &init);
                    let mut endpoints: Vec<SyncEndpoint> = (0..r_count)
                        .map(|_| SyncEndpoint {
                            mode: AdvanceMode::Optimistic,
                            ..SyncEndpoint::new()
                        })
                        .collect();
                    let mut received = 0usize;
                    while let Ok(delta) = delta_rx.recv() {
                        endpoints[delta.replica].receive_owned(&mut crdts, &mut server, delta.msg);
                        received += 1;
                    }
                    // every worker dropped its sender: all deltas are in.
                    for (r, endpoint) in endpoints.iter_mut().enumerate() {
                        let msg = endpoint.generate(&crdts);
                        back_txs[r % t_count]
                            .send((r, msg))
                            .expect("worker awaits convergence delta");
                    }
                    drop(back_txs);
                    (received, replicated_state_digest(&seed.bindings, &server))
                }
            });

            let workers: Vec<_> = job_rxs
                .into_iter()
                .zip(back_rxs)
                .enumerate()
                .map(|(w, (jobs, back))| {
                    let seed = Arc::clone(seed);
                    let delta_tx = delta_tx.clone();
                    let start = &start;
                    let drained = &drained;
                    let policy = options.cache;
                    let budget = options.cache_budget_bytes;
                    let shards = options.telemetry_shards;
                    s.spawn(move || {
                        let telemetry = if shards {
                            Telemetry::recording()
                        } else {
                            Telemetry::disabled()
                        };
                        let counters = telemetry.registry().map(|reg| {
                            (
                                reg.counter(
                                    "edgstr_parallel_requests_total",
                                    &[("result", "completed")],
                                ),
                                reg.counter(
                                    "edgstr_parallel_requests_total",
                                    &[("result", "failed")],
                                ),
                            )
                        });
                        // Build this worker's replicas on this thread: the
                        // VM and its caches never cross a thread boundary.
                        let owned: Vec<usize> = (0..r_count).filter(|r| r % t_count == w).collect();
                        let mut replicas: BTreeMap<usize, OwnedReplica> = owned
                            .iter()
                            .map(|&r| {
                                (
                                    r,
                                    OwnedReplica::build(&seed, 2 + r as u64, budget, &telemetry),
                                )
                            })
                            .collect();
                        let mut outcome = WorkerOutcome {
                            completed: 0,
                            failed: 0,
                            digests: Vec::new(),
                            state_digests: Vec::new(),
                            cache: CacheStats::default(),
                            telemetry: RegistrySnapshot::default(),
                            deltas_sent: 0,
                        };
                        start.wait();
                        // --- timed serving window ---
                        while let Ok((index, request)) = jobs.recv() {
                            let r = index as usize % r_count;
                            let replica = replicas.get_mut(&r).expect("statically owned replica");
                            match replica.serve(&seed, policy, &request) {
                                Some(digest) => {
                                    outcome.completed += 1;
                                    outcome.digests.push((index, digest));
                                    if let Some((done, _)) = &counters {
                                        done.inc();
                                    }
                                }
                                None => {
                                    outcome.failed += 1;
                                    outcome.digests.push((index, FAILED_DIGEST));
                                    if let Some((_, failed)) = &counters {
                                        failed.inc();
                                    }
                                }
                            }
                            replica.served_since_flush += 1;
                            if replica.served_since_flush >= batch {
                                replica.served_since_flush = 0;
                                let msg = replica.to_cloud.generate(&replica.crdts);
                                if !msg.changes.is_empty() {
                                    delta_tx
                                        .send(Delta { replica: r, msg })
                                        .expect("cloud alive");
                                    outcome.deltas_sent += 1;
                                }
                            }
                        }
                        drained.wait();
                        // --- untimed convergence flush ---
                        for (&r, replica) in replicas.iter_mut() {
                            let msg = replica.to_cloud.generate(&replica.crdts);
                            if !msg.changes.is_empty() {
                                delta_tx
                                    .send(Delta { replica: r, msg })
                                    .expect("cloud alive");
                                outcome.deltas_sent += 1;
                            }
                        }
                        drop(delta_tx); // cloud's recv loop ends when all workers flush
                        while let Ok((r, msg)) = back.recv() {
                            let replica = replicas.get_mut(&r).expect("statically owned replica");
                            replica.to_cloud.receive_owned(
                                &mut replica.crdts,
                                &mut replica.server,
                                msg,
                            );
                        }
                        for (&r, replica) in replicas.iter() {
                            outcome.state_digests.push((
                                r,
                                replicated_state_digest(&seed.bindings, &replica.server),
                            ));
                            outcome.cache.absorb(replica.cache.stats());
                        }
                        if let Some(reg) = telemetry.registry() {
                            outcome.telemetry = reg.snapshot();
                        }
                        outcome
                    })
                })
                .collect();
            drop(delta_tx);

            start.wait();
            let clock = Clock::wall();
            for (i, request) in requests.iter().enumerate() {
                let w = (i % r_count) % t_count;
                job_txs[w]
                    .send((i as u32, request.clone()))
                    .expect("worker alive");
            }
            drop(job_txs); // workers drain and hit the `drained` barrier
            drained.wait();
            let elapsed = clock.elapsed();

            let outcomes: Vec<WorkerOutcome> = workers
                .into_iter()
                .map(|h| h.join().expect("worker thread"))
                .collect();
            let (received, cloud_digest) = cloud.join().expect("cloud thread");
            (outcomes, cloud_digest, received, elapsed)
        });

        stats.elapsed = elapsed;
        stats.delta_messages = delta_messages;
        let mut all_states: Vec<(usize, u64)> = Vec::with_capacity(r_count);
        for outcome in outcomes {
            stats.completed += outcome.completed;
            stats.failed += outcome.failed;
            for (index, digest) in outcome.digests {
                stats.per_request_digests[index as usize] = digest;
            }
            all_states.extend(outcome.state_digests);
            stats.cache.absorb(&outcome.cache);
            stats.telemetry.merge(&outcome.telemetry);
        }
        stats.state_digest = cloud_digest;
        stats.converged = all_states.iter().all(|(_, d)| *d == cloud_digest);
        let mut chain = FNV_OFFSET;
        for d in &stats.per_request_digests {
            chain = fnv1a(chain, &d.to_le_bytes());
        }
        stats.response_digest = chain;
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use edgstr_core::{capture_and_transform, EdgStrConfig};
    use serde_json::json;

    /// Compile-time Send audit: everything that crosses a thread boundary
    /// in the executor must be `Send`. The VM side (`ServerProcess`,
    /// `Vm`, `Value`) is deliberately *not* here — it is thread-owned and
    /// built per-thread from [`ReplicaSeed`].
    #[test]
    fn parallel_plumbing_is_send() {
        fn assert_send<T: Send>() {}
        assert_send::<ReplicaSeed>();
        assert_send::<Arc<ReplicaSeed>>();
        assert_send::<SetSyncMessage>();
        assert_send::<ResponseCache>();
        assert_send::<CacheStats>();
        assert_send::<RegistrySnapshot>();
        assert_send::<ParallelRunStats>();
        assert_send::<HttpRequest>();
        assert_send::<HttpResponse>();
        assert_send::<Program>();
        assert_send::<CrdtBindings>();
        assert_send::<InitSeed>();
        assert_send::<EffectSummary>();
        assert_send::<CrdtSet>();
    }

    const APP: &str = r#"
        db.query("CREATE TABLE notes (id INT PRIMARY KEY, text TEXT)");
        var written = 0;
        app.post("/note", function (req, res) {
            written = written + 1;
            db.query("INSERT INTO notes VALUES (" + req.body.id + ", '" + req.body.text + "')");
            res.send({ n: written });
        });
        app.get("/count", function (req, res) {
            var rows = db.query("SELECT COUNT(*) FROM notes");
            res.send(rows[0]);
        });
    "#;

    fn transformed() -> TransformationReport {
        let reqs = vec![
            HttpRequest::post("/note", json!({"id": 900, "text": "warm"}), vec![]),
            HttpRequest::get("/count", json!({})),
        ];
        capture_and_transform(APP, &reqs, &EdgStrConfig::default())
            .unwrap()
            .0
    }

    fn workload(n: usize) -> Vec<HttpRequest> {
        (0..n)
            .map(|i| {
                if i % 3 == 0 {
                    HttpRequest::post("/note", json!({"id": i, "text": format!("t{i}")}), vec![])
                } else {
                    HttpRequest::get("/count", json!({}))
                }
            })
            .collect()
    }

    #[test]
    fn thread_count_does_not_change_responses_or_state() {
        let report = transformed();
        let requests = workload(60);
        let opts = |workers| ParallelOptions {
            replicas: 4,
            workers,
            sync_batch: 4,
            cache: CachePolicy::All,
            ..ParallelOptions::default()
        };
        let reference = ParallelSystem::new(APP, &report, opts(1)).run(&requests);
        assert_eq!(reference.completed, 60);
        assert_eq!(reference.failed, 0);
        assert!(reference.converged, "replicas and cloud converge");
        for workers in [2, 4] {
            let run = ParallelSystem::new(APP, &report, opts(workers)).run(&requests);
            assert_eq!(run.workers, workers);
            assert_eq!(
                run.per_request_digests, reference.per_request_digests,
                "{workers}-thread responses must be digest-identical to the reference"
            );
            assert_eq!(run.response_digest, reference.response_digest);
            assert_eq!(run.state_digest, reference.state_digest);
            assert!(run.converged);
        }
    }

    #[test]
    fn worker_count_clamps_to_replicas_and_routes_all_requests() {
        let report = transformed();
        let requests = workload(10);
        let run = ParallelSystem::new(
            APP,
            &report,
            ParallelOptions {
                replicas: 2,
                workers: 8,
                ..ParallelOptions::default()
            },
        )
        .run(&requests);
        assert_eq!(run.workers, 2, "workers clamp to the replica count");
        assert_eq!(run.completed + run.failed, 10);
        assert_eq!(run.per_request_digests.len(), 10);
        assert!(run.throughput_rps() > 0.0);
    }

    #[test]
    fn telemetry_shards_fold_to_request_totals() {
        let report = transformed();
        let requests = workload(24);
        let run = ParallelSystem::new(
            APP,
            &report,
            ParallelOptions {
                replicas: 4,
                workers: 2,
                telemetry_shards: true,
                cache: CachePolicy::All,
                ..ParallelOptions::default()
            },
        )
        .run(&requests);
        if run.telemetry.is_empty() {
            return; // telemetry compiled out (--no-default-features)
        }
        let completed = run
            .telemetry
            .counter_value("edgstr_parallel_requests_total", &[("result", "completed")]);
        let failed = run
            .telemetry
            .counter_value("edgstr_parallel_requests_total", &[("result", "failed")]);
        assert_eq!(completed as usize, run.completed);
        assert_eq!(failed as usize, run.failed);
        // cache events recorded per worker shard fold to the CacheStats sums
        let hits = run
            .telemetry
            .counter_value("edgstr_cache_events_total", &[("op", "hit")]);
        assert_eq!(hits, run.cache.hits);
    }

    #[test]
    fn non_replicated_requests_fail_deterministically() {
        let report = transformed();
        let requests = vec![HttpRequest::get("/nope", json!({}))];
        let run = ParallelSystem::new(APP, &report, ParallelOptions::default()).run(&requests);
        assert_eq!(run.completed, 0);
        assert_eq!(run.failed, 1);
        assert_eq!(run.per_request_digests, vec![FAILED_DIGEST]);
    }
}
