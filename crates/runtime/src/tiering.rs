//! Per-service tier placement wired into the three-tier runtime.
//!
//! The decision logic lives in `edgstr-placement`; this module holds the
//! runtime-facing plumbing: the placement *mode* configured on
//! [`crate::ThreeTierOptions`], the scripted-replay schedule format, the
//! safe mid-run transition machinery (clock-domination barriers), and the
//! accumulated stats the E18 bench audits.
//!
//! ## Transition safety
//!
//! Placement flips never take effect at the decision instant. A
//! **promotion** to [`Placement::EdgeReplicate`] provisions from the
//! continuously-replicated CRDT state and *warms from the sync stream*:
//! it completes only once every live edge's clock dominates the cloud
//! clock snapshotted at decision time, so the first locally-served
//! request observes at least everything the cloud had decided on. A
//! **demotion** out of `EdgeReplicate` drains: the service keeps serving
//! locally until the cloud clock dominates every live edge's
//! decision-time clock — every unsynced delta has been folded to the
//! cloud — and only then falls back to forward-with-cache. (In-flight
//! requests complete atomically in the virtual-time driver, so request
//! draining is implied.) Because barrier completion is a pure function of
//! the deterministic sync schedule, a recorded decision schedule replayed
//! via [`PlacementMode::Scripted`] flips at identical virtual times and
//! reproduces bit-identical response digests.

use crate::crdtset::SetClock;
use edgstr_net::Verb;
use edgstr_placement::{Placement, PlacementPolicy};
use edgstr_sim::SimTime;

/// How the deployment assigns per-service placements.
#[derive(Debug, Clone, Default)]
pub enum PlacementMode {
    /// The pre-controller semantics: services the transformation report
    /// replicates serve at the edge, everything else forwards. The
    /// default, and byte-for-byte identical to the pre-placement runtime.
    #[default]
    ReportStatic,
    /// Every service pinned to one placement (ablation cells). A pin to
    /// `EdgeReplicate` is clamped per service to the best placement it
    /// supports: cache-only when the report did not replicate it but its
    /// profile is cacheable, cloud otherwise.
    Pinned(Placement),
    /// The autonomous controller: decisions from static effect signals
    /// plus sliding telemetry windows, re-deciding at every sync tick.
    Adaptive(PlacementPolicy),
    /// Replay a recorded decision schedule (digest-parity reference runs).
    Scripted(PlacementScript),
}

/// A pinned-or-replayed placement schedule.
#[derive(Debug, Clone, Default)]
pub struct PlacementScript {
    /// Initial placement override for every service (`None` starts from
    /// the report-static assignment, as the adaptive controller does).
    pub pinned: Option<Placement>,
    /// Time-ordered decisions to replay.
    pub decisions: Vec<ScriptedDecision>,
}

/// One recorded (or replayed) placement decision.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScriptedDecision {
    pub at: SimTime,
    pub service: (Verb, String),
    pub to: Placement,
}

/// Why a transition has not taken effect yet.
#[derive(Debug, Clone)]
pub enum TransitionBarrier {
    /// No state hand-off needed: applies at the next barrier check.
    Immediate,
    /// Promotion warm-up: every live edge clock must dominate this cloud
    /// snapshot before local serving starts.
    EdgesDominate(SetClock),
    /// Demotion drain: the cloud clock must dominate each of these edge
    /// snapshots (all unsynced deltas folded) before forwarding starts.
    CloudDominates(Vec<SetClock>),
}

/// A decided transition waiting on its barrier.
#[derive(Debug, Clone)]
pub struct PendingTransition {
    pub service: (Verb, String),
    pub from: Placement,
    pub to: Placement,
    pub decided_at: SimTime,
    pub reason: String,
    pub barrier: TransitionBarrier,
}

/// A completed transition.
#[derive(Debug, Clone)]
pub struct TransitionRecord {
    pub service: (Verb, String),
    pub from: Placement,
    pub to: Placement,
    pub decided_at: SimTime,
    pub completed_at: SimTime,
    pub reason: String,
}

/// Accumulated placement activity across a system's lifetime.
#[derive(Debug, Clone, Default)]
pub struct PlacementStats {
    /// Every effective decision, in decision order — replayable verbatim
    /// as [`PlacementScript::decisions`].
    pub decided: Vec<ScriptedDecision>,
    /// Completed transitions with their barrier-crossing times.
    pub transitions: Vec<TransitionRecord>,
    /// Rank-increasing transitions (toward the edge).
    pub promotes: u32,
    /// Rank-decreasing transitions (toward the cloud).
    pub demotes: u32,
    /// Ack clocks snapshotted at every completed transition (each live
    /// edge's acked prefix). The zero-acked-write-loss audit: the final
    /// converged master clock must dominate every snapshot.
    pub acked_snapshots: Vec<SetClock>,
}
