//! End-to-end system drivers: the original two-tier (client ↔ cloud)
//! deployment and the EdgStr-generated three-tier (client ↔ edge ↔ cloud)
//! deployment, executed over virtual time.
//!
//! These drivers power every performance experiment: throughput vs WAN
//! speed (Fig. 7), latency (Table II), mobile energy (Fig. 8), cluster
//! scaling and elasticity (Fig. 9), and synchronization traffic (Fig. 10a).

use crate::balancer::{Autoscaler, BalanceStrategy, LoadBalancer};
use crate::crdtset::{CrdtSet, SyncEndpoint};
use edgstr_analysis::{ServerError, ServerProcess};
use edgstr_core::TransformationReport;
use edgstr_crdt::ActorId;
use edgstr_net::{HttpRequest, LinkChannel, LinkSpec, Verb};
use edgstr_sim::{Device, DeviceSpec, LatencyStats, PowerState, SimDuration, SimTime};
use std::collections::BTreeSet;

/// Radio/idle power draw of the mobile client, used to integrate the
/// per-request energy the Trepn profiler measures in the paper (Fig. 8).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MobilePower {
    /// Transmitting (upload) watts.
    pub tx_w: f64,
    /// Receiving (download) watts.
    pub rx_w: f64,
    /// Low-power waiting watts ("the mobile device typically switches into
    /// a low-power mode in the idle state", §IV-C.3).
    pub wait_w: f64,
}

impl Default for MobilePower {
    fn default() -> Self {
        MobilePower {
            tx_w: 2.6,
            rx_w: 2.1,
            wait_w: 0.85,
        }
    }
}

impl MobilePower {
    /// Energy for one request given its transfer and wait durations.
    pub fn request_energy_j(
        &self,
        up: SimDuration,
        down: SimDuration,
        wait: SimDuration,
    ) -> f64 {
        self.tx_w * up.as_secs_f64()
            + self.rx_w * down.as_secs_f64()
            + self.wait_w * wait.as_secs_f64()
    }
}

/// A request scheduled at a virtual arrival time.
#[derive(Debug, Clone)]
pub struct TimedRequest {
    pub at: SimTime,
    pub request: HttpRequest,
}

/// A sequence of timed requests.
#[derive(Debug, Clone, Default)]
pub struct Workload {
    pub requests: Vec<TimedRequest>,
}

impl Workload {
    /// `count` requests at a constant rate, cycling over `templates`.
    pub fn constant_rate(templates: &[HttpRequest], rps: f64, count: usize) -> Workload {
        let gap = SimDuration::from_secs_f64(1.0 / rps.max(0.001));
        let mut t = SimTime::ZERO;
        let mut requests = Vec::with_capacity(count);
        for i in 0..count {
            requests.push(TimedRequest {
                at: t,
                request: templates[i % templates.len()].clone(),
            });
            t += gap;
        }
        Workload { requests }
    }

    /// Piecewise-constant rates: each phase is `(rps, duration_seconds)`.
    /// Models the fluctuating client volumes of the elasticity experiment
    /// (Fig. 9-right).
    pub fn phases(templates: &[HttpRequest], phases: &[(f64, f64)]) -> Workload {
        let mut requests = Vec::new();
        let mut t = 0.0f64;
        let mut i = 0usize;
        for &(rps, secs) in phases {
            let gap = 1.0 / rps.max(0.001);
            let end = t + secs;
            while t < end {
                requests.push(TimedRequest {
                    at: SimTime::from_secs_f64(t),
                    request: templates[i % templates.len()].clone(),
                });
                i += 1;
                t += gap;
            }
        }
        Workload { requests }
    }

    /// Shift every arrival by `offset` (to continue a previous run's
    /// virtual timeline).
    pub fn shifted(mut self, offset: SimTime) -> Workload {
        for r in &mut self.requests {
            r.at = SimTime(r.at.0 + offset.0);
        }
        self
    }

    /// Number of requests.
    pub fn len(&self) -> usize {
        self.requests.len()
    }

    /// Whether the workload is empty.
    pub fn is_empty(&self) -> bool {
        self.requests.is_empty()
    }
}

/// Measurements from one run.
#[derive(Debug, Default)]
pub struct RunStats {
    pub latency: LatencyStats,
    pub completed: usize,
    pub failed: usize,
    /// Requests the edge forwarded to the cloud (failure forwarding or
    /// non-replicated services).
    pub forwarded: usize,
    /// Virtual time of the last completion.
    pub makespan: SimTime,
    /// Client request/response bytes crossing the WAN.
    pub wan_request_bytes: usize,
    /// CRDT synchronization bytes crossing the WAN.
    pub wan_sync_bytes: usize,
    /// Bytes crossing the edge LAN.
    pub lan_bytes: usize,
    pub client_energy_j: f64,
    pub cloud_energy_j: f64,
    pub edge_energy_j: f64,
    /// `(time, active_replicas)` samples from the autoscaler.
    pub replica_samples: Vec<(SimTime, usize)>,
}

impl RunStats {
    /// Completed requests per second of makespan.
    pub fn throughput_rps(&self) -> f64 {
        let s = self.makespan.as_secs_f64();
        if s <= 0.0 {
            0.0
        } else {
            self.completed as f64 / s
        }
    }

    /// Mean energy per request on the client, in joules.
    pub fn client_energy_per_request(&self) -> f64 {
        if self.completed == 0 {
            0.0
        } else {
            self.client_energy_j / self.completed as f64
        }
    }
}

// ---------------------------------------------------------------------------
// Two-tier (original client-cloud) driver
// ---------------------------------------------------------------------------

/// The original two-tier deployment: clients call the cloud over the WAN.
#[derive(Debug)]
pub struct TwoTierSystem {
    pub server: ServerProcess,
    pub device: Device,
    pub wan: LinkSpec,
    pub mobile: MobilePower,
    wan_up: LinkChannel,
    wan_down: LinkChannel,
}

impl TwoTierSystem {
    /// Build from server source; runs the init phase.
    ///
    /// # Errors
    ///
    /// Propagates parse/init failures.
    pub fn new(source: &str, device: DeviceSpec, wan: LinkSpec) -> Result<Self, ServerError> {
        let mut server = ServerProcess::from_source(source)?;
        server.init()?;
        Ok(TwoTierSystem {
            server,
            device: Device::new(device),
            wan,
            mobile: MobilePower::default(),
            wan_up: LinkChannel::new(wan),
            wan_down: LinkChannel::new(wan),
        })
    }

    /// Execute `workload`, returning measurements.
    pub fn run(&mut self, workload: &Workload) -> RunStats {
        let mut stats = RunStats::default();
        for tr in &workload.requests {
            let arrive = self.wan_up.send(tr.at, tr.request.size());
            let up = arrive - tr.at;
            match self.server.handle(&tr.request) {
                Ok(out) => {
                    let (_, finish) = self.device.schedule_work(arrive, out.cycles);
                    let resp_bytes = out.response.size();
                    let done = self.wan_down.send(finish, resp_bytes);
                    let down = done - finish;
                    let latency = done - tr.at;
                    stats.latency.record(latency);
                    stats.completed += 1;
                    stats.wan_request_bytes += tr.request.size() + resp_bytes;
                    let wait = finish - arrive;
                    stats.client_energy_j += self.mobile.request_energy_j(up, down, wait);
                    if done > stats.makespan {
                        stats.makespan = done;
                    }
                }
                Err(_) => stats.failed += 1,
            }
        }
        stats.cloud_energy_j = self.device.energy_joules(stats.makespan);
        stats
    }
}

// ---------------------------------------------------------------------------
// Three-tier (EdgStr-transformed) driver
// ---------------------------------------------------------------------------

/// One deployed edge replica.
#[derive(Debug)]
pub struct EdgeReplica {
    pub server: ServerProcess,
    pub device: Device,
    pub crdts: CrdtSet,
    pub to_cloud: SyncEndpoint,
    inflight: Vec<SimTime>,
    active: bool,
}

impl EdgeReplica {
    fn prune(&mut self, now: SimTime) {
        self.inflight.retain(|f| *f > now);
    }

    /// Current active connection count.
    pub fn connections(&self) -> usize {
        self.inflight.len()
    }
}

/// Options for the three-tier deployment.
#[derive(Debug, Clone)]
pub struct ThreeTierOptions {
    pub lan: LinkSpec,
    pub wan: LinkSpec,
    pub balance: BalanceStrategy,
    /// `Some` enables elasticity (replica parking).
    pub autoscaler: Option<Autoscaler>,
    /// Background CRDT sync period.
    pub sync_interval: SimDuration,
    /// When true, state changes sync synchronously with each request
    /// (write-through ablation) instead of in the background.
    pub synchronous_sync: bool,
}

impl Default for ThreeTierOptions {
    fn default() -> Self {
        ThreeTierOptions {
            lan: LinkSpec::edge_lan(),
            wan: LinkSpec::limited_cloud(),
            balance: BalanceStrategy::LeastConnections,
            autoscaler: None,
            sync_interval: SimDuration::from_secs(1),
            synchronous_sync: false,
        }
    }
}

/// The EdgStr-generated three-tier deployment.
#[derive(Debug)]
pub struct ThreeTierSystem {
    pub cloud: ServerProcess,
    pub cloud_device: Device,
    pub cloud_crdts: CrdtSet,
    cloud_endpoints: Vec<SyncEndpoint>,
    pub edges: Vec<EdgeReplica>,
    pub options: ThreeTierOptions,
    balancer: LoadBalancer,
    replicated: BTreeSet<(Verb, String)>,
    pub mobile: MobilePower,
    lan_up: LinkChannel,
    lan_down: LinkChannel,
    wan_up: LinkChannel,
    wan_down: LinkChannel,
}

impl ThreeTierSystem {
    /// Deploy a transformation report: the cloud master runs the original
    /// program, each edge device runs the generated replica, and all
    /// replicas initialize from the shared snapshot (§III-G).
    ///
    /// # Errors
    ///
    /// Propagates server init failures.
    pub fn deploy(
        cloud_source: &str,
        report: &TransformationReport,
        edge_devices: &[DeviceSpec],
        options: ThreeTierOptions,
    ) -> Result<Self, ServerError> {
        let mut cloud = ServerProcess::from_source(cloud_source)?;
        cloud.init()?;
        report.replica.init.restore(&mut cloud);
        let cloud_crdts = CrdtSet::initialize(ActorId(1), &report.replica.bindings, &report.replica.init);
        let mut edges = Vec::new();
        for (i, spec) in edge_devices.iter().enumerate() {
            let mut server = ServerProcess::from_program(report.replica.program.clone());
            server.init()?;
            report.replica.init.restore(&mut server);
            let crdts = CrdtSet::initialize(
                ActorId(2 + i as u64),
                &report.replica.bindings,
                &report.replica.init,
            );
            edges.push(EdgeReplica {
                server,
                device: Device::new(spec.clone()),
                crdts,
                to_cloud: SyncEndpoint::new(),
                inflight: Vec::new(),
                active: true,
            });
        }
        let cloud_endpoints = (0..edges.len()).map(|_| SyncEndpoint::new()).collect();
        let balancer = LoadBalancer::new(options.balance);
        Ok(ThreeTierSystem {
            cloud,
            cloud_device: Device::new(DeviceSpec::cloud_server()),
            cloud_crdts,
            cloud_endpoints,
            edges,
            balancer,
            lan_up: LinkChannel::new(options.lan),
            lan_down: LinkChannel::new(options.lan),
            wan_up: LinkChannel::new(options.wan),
            wan_down: LinkChannel::new(options.wan),
            options,
            replicated: report.replica.replicated.iter().cloned().collect(),
            mobile: MobilePower::default(),
        })
    }

    /// One bidirectional background sync round between every edge and the
    /// cloud master; returns the WAN bytes spent.
    pub fn sync_round(&mut self) -> usize {
        let mut bytes = 0;
        for (i, edge) in self.edges.iter_mut().enumerate() {
            // edge -> cloud (edge_state message)
            let delta = edge.to_cloud.generate(&edge.crdts);
            bytes += delta.wire_size_nonempty();
            self.cloud_endpoints[i].receive(&mut self.cloud_crdts, &mut self.cloud, &delta);
            // cloud -> edge (cloud_state message)
            let delta = self.cloud_endpoints[i].generate(&self.cloud_crdts);
            bytes += delta.wire_size_nonempty();
            edge.to_cloud
                .receive(&mut edge.crdts, &mut edge.server, &delta);
        }
        bytes
    }

    /// Execute `workload`, returning measurements.
    pub fn run(&mut self, workload: &Workload) -> RunStats {
        let mut stats = RunStats::default();
        let mut next_sync = SimTime::ZERO + self.options.sync_interval;
        for tr in &workload.requests {
            let now = tr.at;
            // background sync ticks that elapsed before this arrival
            while !self.options.synchronous_sync && next_sync <= now {
                stats.wan_sync_bytes += self.sync_round();
                next_sync += self.options.sync_interval;
            }
            // autoscaler: adjust active replica set
            for e in self.edges.iter_mut() {
                e.prune(now);
            }
            if let Some(scaler) = self.options.autoscaler {
                let inflight: usize = self.edges.iter().map(EdgeReplica::connections).sum();
                let desired = scaler.desired(inflight.max(1), self.edges.len());
                for (i, e) in self.edges.iter_mut().enumerate() {
                    let should_be_active = i < desired;
                    if should_be_active && !e.active {
                        e.active = true;
                        e.device.set_power_state(PowerState::Idle, now);
                    } else if !should_be_active && e.active && e.connections() == 0 {
                        e.active = false;
                        e.device.set_power_state(PowerState::LowPower, now);
                    }
                }
                let active = self.edges.iter().filter(|e| e.active).count();
                stats.replica_samples.push((now, active));
            }
            // route to an edge
            let connections: Vec<usize> =
                self.edges.iter().map(EdgeReplica::connections).collect();
            let active: Vec<bool> = self.edges.iter().map(|e| e.active).collect();
            let Some(idx) = self.balancer.pick(&connections, &active) else {
                stats.failed += 1;
                continue;
            };
            let req_size = tr.request.size();
            let lan_arrive = self.lan_up.send(now, req_size);
            let up = lan_arrive - now;
            stats.lan_bytes += req_size;
            let wake = self.edges[idx].device.wake_penalty();
            let arrive = lan_arrive + wake;
            let key = (tr.request.verb, tr.request.path.clone());
            let local = self.replicated.contains(&key);
            let local_result = if local {
                self.edges[idx].server.handle(&tr.request)
            } else {
                Err(ServerError::NoSuchRoute {
                    verb: tr.request.verb,
                    path: tr.request.path.clone(),
                })
            };
            let (done, resp_size, up_total, down_total, wait) = match local_result {
                Ok(out) => {
                    let edge = &mut self.edges[idx];
                    edge.crdts.absorb_outcome(&out, &edge.server);
                    let (_, finish) = edge.device.schedule_work(arrive, out.cycles);
                    let resp_size = out.response.size();
                    let done = self.lan_down.send(finish, resp_size);
                    let down = done - finish;
                    stats.lan_bytes += resp_size;
                    edge.inflight.push(done);
                    if self.options.synchronous_sync {
                        stats.wan_sync_bytes += self.sync_round();
                    }
                    (done, resp_size, up, down, finish - arrive)
                }
                Err(_) => {
                    // failure forwarding: the edge proxies the request to
                    // the cloud master over the WAN (§II-B)
                    stats.forwarded += 1;
                    match self.cloud.handle(&tr.request) {
                        Ok(out) => {
                            self.cloud_crdts.absorb_outcome(&out, &self.cloud);
                            let cloud_arrive = self.wan_up.send(arrive, req_size);
                            let (_, finish) =
                                self.cloud_device.schedule_work(cloud_arrive, out.cycles);
                            let resp_size = out.response.size();
                            let back_at_edge = self.wan_down.send(finish, resp_size);
                            let done = self.lan_down.send(back_at_edge, resp_size);
                            let lan_down = done - back_at_edge;
                            stats.wan_request_bytes += req_size + resp_size;
                            stats.lan_bytes += resp_size;
                            self.edges[idx].inflight.push(done);
                            (done, resp_size, up, lan_down, back_at_edge - arrive)
                        }
                        Err(_) => {
                            stats.failed += 1;
                            continue;
                        }
                    }
                }
            };
            let _ = resp_size;
            let latency = done - tr.at;
            stats.latency.record(latency);
            stats.completed += 1;
            stats.client_energy_j +=
                self.mobile.request_energy_j(up_total, down_total, wait);
            if done > stats.makespan {
                stats.makespan = done;
            }
        }
        // final flush so replicas converge
        stats.wan_sync_bytes += self.sync_round();
        stats.wan_sync_bytes += self.sync_round();
        stats.cloud_energy_j = self.cloud_device.energy_joules(stats.makespan);
        stats.edge_energy_j = self
            .edges
            .iter()
            .map(|e| e.device.energy_joules(stats.makespan))
            .sum();
        stats
    }
}

impl crate::crdtset::SetChanges {
    fn wire_size_nonempty(&self) -> usize {
        if self.is_empty() {
            0
        } else {
            self.wire_size()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use edgstr_core::{capture_and_transform, EdgStrConfig};
    use serde_json::json;

    const APP: &str = r#"
        db.query("CREATE TABLE notes (id INT PRIMARY KEY, text TEXT)");
        var written = 0;
        app.post("/note", function (req, res) {
            written = written + 1;
            db.query("INSERT INTO notes VALUES (" + req.body.id + ", '" + req.body.text + "')");
            res.send({ n: written });
        });
        app.get("/count", function (req, res) {
            var rows = db.query("SELECT COUNT(*) FROM notes");
            res.send(rows[0]);
        });
    "#;

    fn transformed() -> edgstr_core::TransformationReport {
        let reqs = vec![
            HttpRequest::post("/note", json!({"id": 900, "text": "warm"}), vec![]),
            HttpRequest::get("/count", json!({})),
        ];
        capture_and_transform(APP, &reqs, &EdgStrConfig::default())
            .unwrap()
            .0
    }

    fn unique_note(i: usize) -> HttpRequest {
        HttpRequest::post("/note", json!({"id": i, "text": format!("t{i}")}), vec![])
    }

    #[test]
    fn two_tier_runs_workload() {
        let mut sys = TwoTierSystem::new(
            APP,
            DeviceSpec::cloud_server(),
            LinkSpec::limited_cloud(),
        )
        .unwrap();
        let reqs: Vec<HttpRequest> = (0..20).map(unique_note).collect();
        let wl = Workload::constant_rate(&reqs, 10.0, 20);
        let stats = sys.run(&wl);
        assert_eq!(stats.completed, 20);
        assert!(stats.latency.mean().unwrap() > SimDuration::from_millis(100));
        assert!(stats.client_energy_j > 0.0);
        assert!(stats.wan_request_bytes > 0);
    }

    #[test]
    fn three_tier_serves_locally_and_syncs() {
        let report = transformed();
        let mut sys = ThreeTierSystem::deploy(
            APP,
            &report,
            &[DeviceSpec::rpi4(), DeviceSpec::rpi3()],
            ThreeTierOptions::default(),
        )
        .unwrap();
        let reqs: Vec<HttpRequest> = (0..20).map(unique_note).collect();
        let wl = Workload::constant_rate(&reqs, 10.0, 20);
        let stats = sys.run(&wl);
        assert_eq!(stats.completed, 20);
        assert_eq!(stats.forwarded, 0, "replicated service must run locally");
        assert!(stats.wan_sync_bytes > 0, "background sync must ship changes");
        assert_eq!(stats.wan_request_bytes, 0, "no request traffic on the WAN");
        // all replicas and cloud converge on the notes table
        let cloud_rows = sys.cloud_crdts.tables["notes"].len();
        for e in &sys.edges {
            assert_eq!(e.crdts.tables["notes"].len(), cloud_rows);
        }
        assert!(cloud_rows >= 20);
    }

    #[test]
    fn three_tier_beats_two_tier_on_slow_wan() {
        let report = transformed();
        let slow_wan = LinkSpec::from_kbps_ms(200.0, 800.0);
        let mut two = TwoTierSystem::new(APP, DeviceSpec::cloud_server(), slow_wan).unwrap();
        let reqs: Vec<HttpRequest> = (0..30).map(unique_note).collect();
        let wl = Workload::constant_rate(&reqs, 20.0, 30);
        let two_stats = two.run(&wl);
        let mut three = ThreeTierSystem::deploy(
            APP,
            &report,
            &[DeviceSpec::rpi4()],
            ThreeTierOptions {
                wan: slow_wan,
                ..Default::default()
            },
        )
        .unwrap();
        let three_stats = three.run(&wl);
        assert!(
            three_stats.latency.mean().unwrap() < two_stats.latency.mean().unwrap(),
            "edge must win under a degraded WAN: {:?} vs {:?}",
            three_stats.latency.mean(),
            two_stats.latency.mean()
        );
    }

    #[test]
    fn failure_forwarding_reaches_cloud() {
        let report = transformed();
        let mut sys = ThreeTierSystem::deploy(
            APP,
            &report,
            &[DeviceSpec::rpi4()],
            ThreeTierOptions::default(),
        )
        .unwrap();
        // break the edge's database host calls
        sys.edges[0]
            .server
            .inject_failures(vec!["db.query".to_string()]);
        let reqs: Vec<HttpRequest> = (0..5).map(unique_note).collect();
        let wl = Workload::constant_rate(&reqs, 5.0, 5);
        let stats = sys.run(&wl);
        assert_eq!(stats.completed, 5);
        assert_eq!(stats.forwarded, 5, "all requests must be forwarded");
        assert!(stats.wan_request_bytes > 0);
        // the cloud applied the writes
        assert!(sys.cloud_crdts.tables["notes"].len() >= 5);
    }

    #[test]
    fn autoscaler_parks_replicas_under_light_load() {
        let report = transformed();
        let mut sys = ThreeTierSystem::deploy(
            APP,
            &report,
            &[
                DeviceSpec::rpi3(),
                DeviceSpec::rpi3(),
                DeviceSpec::rpi4(),
                DeviceSpec::rpi4(),
            ],
            ThreeTierOptions {
                autoscaler: Some(Autoscaler::default()),
                ..Default::default()
            },
        )
        .unwrap();
        // light load: 2 rps
        let reqs: Vec<HttpRequest> = (0..40).map(unique_note).collect();
        let wl = Workload::constant_rate(&reqs, 2.0, 40);
        let stats = sys.run(&wl);
        assert_eq!(stats.completed, 40);
        let min_active = stats
            .replica_samples
            .iter()
            .map(|(_, n)| *n)
            .min()
            .unwrap();
        assert_eq!(min_active, 1, "light load should park down to one replica");
        // parked replicas draw less energy than a hypothetical always-on set
        assert!(stats.edge_energy_j > 0.0);
    }

    #[test]
    fn workload_generators_produce_expected_counts() {
        let reqs = vec![HttpRequest::get("/count", json!({}))];
        let wl = Workload::constant_rate(&reqs, 100.0, 50);
        assert_eq!(wl.len(), 50);
        assert!(wl.requests[49].at > wl.requests[0].at);
        let wl = Workload::phases(&reqs, &[(10.0, 1.0), (50.0, 1.0)]);
        assert!(wl.len() >= 58 && wl.len() <= 62, "got {}", wl.len());
    }

    #[test]
    fn workload_shift_moves_every_arrival() {
        let reqs = vec![HttpRequest::get("/count", json!({}))];
        let wl = Workload::constant_rate(&reqs, 10.0, 5)
            .shifted(edgstr_sim::SimTime::from_secs_f64(100.0));
        assert!(wl.requests[0].at >= edgstr_sim::SimTime::from_secs_f64(100.0));
        assert!(wl.requests[4].at > wl.requests[0].at);
    }

    #[test]
    fn mobile_power_integrates_components() {
        let m = MobilePower::default();
        let j = m.request_energy_j(
            SimDuration::from_secs(2),
            SimDuration::from_secs(1),
            SimDuration::from_secs(10),
        );
        let expected = m.tx_w * 2.0 + m.rx_w * 1.0 + m.wait_w * 10.0;
        assert!((j - expected).abs() < 1e-9);
    }

    #[test]
    fn two_tier_failed_requests_counted_not_recorded() {
        let mut sys = TwoTierSystem::new(
            APP,
            DeviceSpec::cloud_server(),
            LinkSpec::limited_cloud(),
        )
        .unwrap();
        // duplicate primary keys: every second insert fails at the server
        let req = unique_note(1);
        let wl = Workload::constant_rate(std::slice::from_ref(&req), 10.0, 3);
        let stats = sys.run(&wl);
        assert_eq!(stats.completed, 1);
        assert_eq!(stats.failed, 2);
        assert_eq!(stats.latency.len(), 1);
    }
}
