//! End-to-end system drivers: the original two-tier (client ↔ cloud)
//! deployment and the EdgStr-generated three-tier (client ↔ edge ↔ cloud)
//! deployment, executed over virtual time.
//!
//! These drivers power every performance experiment: throughput vs WAN
//! speed (Fig. 7), latency (Table II), mobile energy (Fig. 8), cluster
//! scaling and elasticity (Fig. 9), and synchronization traffic (Fig. 10a).

use crate::balancer::{Autoscaler, BalanceStrategy, LoadBalancer};
use crate::cache::{
    bump_static_global_writes, resolve_reads, CacheKey, CachePolicy, CacheStats, ResponseCache,
    UnitKey, CACHE_HIT_CYCLES,
};
use crate::crdtset::{CrdtSet, SetChanges, SetClock, SyncEndpoint};
use crate::driver::RunRecorder;
pub use crate::driver::{FaultPolicy, MobilePower, RunStats, TimedRequest, Workload};
use crate::tiering::{
    PendingTransition, PlacementMode, PlacementStats, ScriptedDecision, TransitionBarrier,
    TransitionRecord,
};
use edgstr_analysis::{
    EffectSummary, ExecMode, InitState, ReadUnit, ServerError, ServerProcess, StateUnit,
};
use edgstr_core::{CrdtBindings, TransformationReport};
use edgstr_crdt::{ActorId, AdvanceMode};
use edgstr_lang::Program;
use edgstr_net::{
    CrashEvent, CrashKind, CrashPlan, FaultPlan, HttpRequest, HttpResponse, LinkChannel, LinkSpec,
    Verb,
};
use edgstr_placement::{Observation, Placement, PlacementController, StaticSignals};
use edgstr_sim::{Clock, DetRng, Device, DeviceSpec, PowerState, SimDuration, SimTime};
use edgstr_telemetry::{Counter, SpanId, StmtProfiler, Telemetry, Tier};
use serde_json::Value as Json;
use std::cell::RefCell;
use std::collections::{BTreeMap, BTreeSet};
use std::rc::Rc;

// ---------------------------------------------------------------------------
// Two-tier (original client-cloud) driver
// ---------------------------------------------------------------------------

/// The original two-tier deployment: clients call the cloud over the WAN.
#[derive(Debug)]
pub struct TwoTierSystem {
    pub server: ServerProcess,
    pub device: Device,
    pub wan: LinkSpec,
    pub mobile: MobilePower,
    /// Observability sink; disabled by default and free when disabled.
    pub telemetry: Telemetry,
    wan_up: LinkChannel,
    wan_down: LinkChannel,
}

impl TwoTierSystem {
    /// Build from server source; runs the init phase.
    ///
    /// # Errors
    ///
    /// Propagates parse/init failures.
    pub fn new(source: &str, device: DeviceSpec, wan: LinkSpec) -> Result<Self, ServerError> {
        let mut server = ServerProcess::from_source(source)?;
        server.init()?;
        Ok(TwoTierSystem {
            server,
            device: Device::new(device),
            wan,
            mobile: MobilePower::default(),
            telemetry: Telemetry::disabled(),
            wan_up: LinkChannel::new(wan),
            wan_down: LinkChannel::new(wan),
        })
    }

    /// Execute `workload`, returning measurements.
    pub fn run(&mut self, workload: &Workload) -> RunStats {
        let telemetry = self.telemetry.clone();
        // Virtual-time driver: the run is clocked by the deterministic
        // simulation frontier, never by the host. The wall-clock sibling
        // lives in [`crate::parallel`].
        let mut rec = RunRecorder::with_clock(&telemetry, Clock::virtual_clock());
        let profiler = request_profiler(&telemetry);
        for tr in &workload.requests {
            let span = if telemetry.is_enabled() {
                telemetry.start_span_with(
                    "request",
                    Tier::Client,
                    None,
                    tr.at,
                    request_attrs(&tr.request),
                )
            } else {
                SpanId::NULL
            };
            let arrive = self.wan_up.send(tr.at, tr.request.size());
            let up = arrive - tr.at;
            match handle_profiled(&mut self.server, &tr.request, &profiler) {
                Ok(out) => {
                    let serve = telemetry.start_span("serve", Tier::Cloud, Some(span), arrive);
                    let (_, finish) = self.device.schedule_work(arrive, out.cycles);
                    telemetry.end_span(serve, finish);
                    let resp_bytes = out.response.size();
                    let done = self.wan_down.send(finish, resp_bytes);
                    rec.add_wan_request_bytes(tr.request.size() + resp_bytes);
                    let wait = finish - arrive;
                    let energy = self.mobile.request_energy_j(up, done - finish, wait);
                    rec.complete(&out.response, tr.at, done, energy);
                    telemetry.end_span(span, done);
                }
                Err(_) => {
                    rec.fail();
                    telemetry.event("request.failed", Tier::Cloud, Some(span), arrive, &[]);
                    telemetry.end_span(span, arrive);
                }
            }
        }
        let cloud_energy = self.device.energy_joules(rec.makespan());
        rec.finish(cloud_energy, 0.0)
    }
}

/// The shared per-statement profiler, when this run should profile.
fn request_profiler(telemetry: &Telemetry) -> Option<Rc<RefCell<StmtProfiler>>> {
    if telemetry.profiling_enabled() {
        telemetry.profiler()
    } else {
        None
    }
}

/// Handle one request, attributing VM cycles/allocations to source
/// statements when a profiler is attached (the uninstrumented path is the
/// plain [`ServerProcess::handle`]).
fn handle_profiled(
    server: &mut ServerProcess,
    request: &HttpRequest,
    profiler: &Option<Rc<RefCell<StmtProfiler>>>,
) -> Result<edgstr_analysis::HandleOutcome, ServerError> {
    match profiler {
        Some(p) => {
            let mut p = p.borrow_mut();
            p.set_root(&format!("{} {}", request.verb, request.path));
            server.handle_traced(request, &mut *p)
        }
        None => server.handle(request),
    }
}

/// A diversified shadow variant for the multi-variant check: the same
/// replica program on the tree-walking engine (the primary serves
/// compiled), so an engine-level fault cannot corrupt both variants the
/// same way.
fn build_shadow(program: &Program, init: &InitState) -> Result<ServerProcess, ServerError> {
    let mut shadow = ServerProcess::from_program_with_mode(program.clone(), ExecMode::TreeWalking);
    shadow.init()?;
    init.restore(&mut shadow);
    Ok(shadow)
}

/// Verb/path attributes for a request span, built once so the span opens
/// with them in a single trace-log borrow (enabled mode only — callers
/// guard with [`Telemetry::is_enabled`] to keep the disabled path
/// allocation-free).
fn request_attrs(request: &HttpRequest) -> Vec<(&'static str, Json)> {
    vec![
        ("verb", Json::from(request.verb.as_str())),
        ("path", Json::from(request.path.as_str())),
    ]
}

// ---------------------------------------------------------------------------
// Three-tier (EdgStr-transformed) driver
// ---------------------------------------------------------------------------

/// High-availability policy for the cloud master (§failure & recovery).
///
/// With a warm standby, the master replicates every sync delta (and every
/// forwarded write) to a second cloud replica over the reliable intra-DC
/// link before the round's acknowledgments go out; a deterministic health
/// monitor promotes the standby `detect_delay` after a master crash.
/// `ack_capping` is the zero-acked-write-loss mechanism: acknowledgment
/// clocks sent to the edges are capped at the durability frontier (what
/// the standby — or the last durable save image — provably holds), so no
/// replica ever compacts state the failover target could be missing.
#[derive(Debug, Clone)]
pub struct HaPolicy {
    /// Run a warm-standby cloud replica and promote it on master crash.
    pub standby: bool,
    /// Health-monitor detection delay between master crash and promotion.
    pub detect_delay: SimDuration,
    /// Persist a durable save image of the master after every sync round
    /// and every forwarded write (the recovery source when no standby is
    /// configured).
    pub durable_saves: bool,
    /// Cap acks at the durability frontier. Disabling this is the unsafe
    /// ablation: acked writes can vanish when the master dies.
    pub ack_capping: bool,
}

impl Default for HaPolicy {
    fn default() -> Self {
        HaPolicy {
            standby: true,
            detect_delay: SimDuration::from_millis(500),
            durable_saves: true,
            ack_capping: true,
        }
    }
}

/// Multi-variant faulty-replica detection policy.
///
/// A sampled fraction of eligible replicated requests is shadow-executed
/// on a diversified second variant (the tree-walking engine, vs the
/// compiled primary) fed from the same CRDT state; response digests are
/// compared. A replica exceeding `mismatch_budget` mismatches is
/// quarantined, drained, and re-provisioned from the cloud save image.
#[derive(Debug, Clone)]
pub struct QuarantinePolicy {
    /// Fraction of eligible requests shadow-checked (0.0–1.0).
    pub check_fraction: f64,
    /// Mismatches tolerated before the replica is quarantined.
    pub mismatch_budget: u32,
    /// Seed for the check-sampling stream.
    pub seed: u64,
}

impl Default for QuarantinePolicy {
    fn default() -> Self {
        QuarantinePolicy {
            check_fraction: 0.25,
            mismatch_budget: 3,
            seed: 0x51A5,
        }
    }
}

/// Accumulated failure/recovery observations across a system's lifetime.
#[derive(Debug, Clone, Default)]
pub struct HaStats {
    /// Edge processes crashed (scheduled or manual).
    pub edge_crashes: u32,
    /// Edge processes restarted and re-provisioned.
    pub edge_restarts: u32,
    /// Cloud-master crashes observed.
    pub master_crashes: u32,
    /// Standby promotions performed.
    pub failovers: u32,
    /// Master recoveries from a durable save image (no standby).
    pub durable_recoveries: u32,
    /// `(crash, recovered)` times for each completed master outage.
    pub outages: Vec<(SimTime, SimTime)>,
    /// Shadow executions compared against the primary.
    pub shadow_checks: u64,
    /// Digest mismatches observed across all replicas.
    pub shadow_mismatches: u64,
    /// `(edge index, time)` of each quarantine.
    pub quarantines: Vec<(usize, SimTime)>,
    /// Ack clocks snapshotted at every crash (each edge's acked prefix at
    /// its own crash; every live edge's acked prefix at a master crash).
    /// The zero-acked-write-loss audit: the final converged master clock
    /// must dominate every snapshot.
    pub acked_snapshots: Vec<SetClock>,
}

impl HaStats {
    /// Total master unavailability across completed outages.
    pub fn master_downtime(&self) -> SimDuration {
        SimDuration(self.outages.iter().map(|(c, r)| r.since(*c).0).sum())
    }

    /// Recovery time of each completed master outage.
    pub fn recovery_times(&self) -> Vec<SimDuration> {
        self.outages.iter().map(|(c, r)| r.since(*c)).collect()
    }
}

/// Injected faulty VM variant: flips a bit in a replica's responses with a
/// seeded probability (the fault the multi-variant check is benched
/// against). Mutates the served response only — never the stored state.
#[derive(Debug, Clone)]
pub struct BitFlipCorruptor {
    rng: DetRng,
    flip_prob: f64,
    /// Responses corrupted so far.
    pub flips: u64,
}

impl BitFlipCorruptor {
    /// A corruptor flipping a bit in each response with `flip_prob`.
    pub fn new(seed: u64, flip_prob: f64) -> BitFlipCorruptor {
        BitFlipCorruptor {
            rng: DetRng::new(seed),
            flip_prob,
            flips: 0,
        }
    }

    /// Maybe corrupt one response; returns whether a bit was flipped.
    pub fn corrupt(&mut self, resp: &mut HttpResponse) -> bool {
        if !self.rng.chance(self.flip_prob) {
            return false;
        }
        let bit = self.rng.below(8) as u32;
        if !flip_first_int(&mut resp.body, bit) {
            resp.status ^= 1;
        }
        self.flips += 1;
        true
    }
}

/// Flip `bit` in the first integer leaf found in `v`, depth-first.
fn flip_first_int(v: &mut Json, bit: u32) -> bool {
    match v {
        Json::Number(n) => {
            if let Some(i) = n.as_i64() {
                *v = Json::from(i ^ (1i64 << bit));
                true
            } else {
                false
            }
        }
        Json::Array(items) => items.iter_mut().any(|item| flip_first_int(item, bit)),
        Json::Object(map) => map.values_mut().any(|item| flip_first_int(item, bit)),
        _ => false,
    }
}

/// FNV-1a digest of a response (status + canonical body) — the comparison
/// the multi-variant check runs between primary and shadow.
fn response_digest(resp: &HttpResponse) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    let mut eat = |bytes: &[u8]| {
        for b in bytes {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
    };
    eat(&resp.status.to_le_bytes());
    eat(resp.body.to_string().as_bytes());
    h
}

/// Telemetry label for a service key: `"GET /path"`.
fn service_label(key: &(Verb, String)) -> String {
    format!("{} {}", key.0, key.1)
}

/// Clamp a requested placement to what the service supports:
/// `EdgeReplicate` needs the report to have replicated the service;
/// otherwise the best remaining placement is cache-only (when the profile
/// is cacheable) or the cloud.
fn clamp_placement(requested: Placement, replicable: bool, cacheable: bool) -> Placement {
    match requested {
        Placement::EdgeReplicate if !replicable => {
            if cacheable {
                Placement::EdgeCacheOnly
            } else {
                Placement::CloudPin
            }
        }
        p => p,
    }
}

/// Byte footprint of a service's write set in the given CRDT state (the
/// `edgstr_service_state_bytes` gauge and the controller's static
/// state-footprint signal).
fn service_state_bytes(crdts: &CrdtSet, summary: &EffectSummary) -> u64 {
    let mut bytes = 0u64;
    for w in &summary.writes {
        bytes += match w {
            StateUnit::DbTable(t) => crdts
                .tables
                .get(t)
                .map_or(0, |t| t.to_json().to_string().len() as u64),
            StateUnit::File(f) => crdts.files.size(f).unwrap_or(0),
            StateUnit::Global(g) => match crdts.globals.to_json() {
                Json::Object(m) => m.get(g).map_or(0, |v| v.to_string().len() as u64),
                _ => 0,
            },
        };
    }
    bytes
}

/// Split one sync message's wire bytes across the services that write the
/// units it carries (equal share per writer), at change-count granularity
/// — the controller's per-service sync-traffic signal.
fn attribute_changes(
    unit_writers: &BTreeMap<StateUnit, Vec<(Verb, String)>>,
    msg_bytes: u64,
    changes: &SetChanges,
    out: &mut Vec<((Verb, String), u64)>,
) {
    fn share_out(out: &mut Vec<((Verb, String), u64)>, writers: &[(Verb, String)], bytes: u64) {
        if writers.is_empty() || bytes == 0 {
            return;
        }
        let per = bytes / writers.len() as u64;
        if per > 0 {
            for w in writers {
                out.push((w.clone(), per));
            }
        }
    }
    let total = changes.len() as u64;
    if total == 0 {
        return;
    }
    for (table, ch) in &changes.tables {
        if let Some(writers) = unit_writers.get(&StateUnit::DbTable(table.clone())) {
            share_out(out, writers, msg_bytes * ch.len() as u64 / total);
        }
    }
    // file and global changes are not split per unit on the wire; their
    // byte share goes to every service writing any unit of that kind
    let kind_writers = |is_kind: &dyn Fn(&StateUnit) -> bool| -> Vec<(Verb, String)> {
        unit_writers
            .iter()
            .filter(|(u, _)| is_kind(u))
            .flat_map(|(_, w)| w.iter().cloned())
            .collect::<BTreeSet<_>>()
            .into_iter()
            .collect()
    };
    if !changes.files.is_empty() {
        let writers = kind_writers(&|u| matches!(u, StateUnit::File(_)));
        share_out(
            out,
            &writers,
            msg_bytes * changes.files.len() as u64 / total,
        );
    }
    if !changes.globals.is_empty() {
        let writers = kind_writers(&|u| matches!(u, StateUnit::Global(_)));
        share_out(
            out,
            &writers,
            msg_bytes * changes.globals.len() as u64 / total,
        );
    }
}

/// The warm-standby cloud replica and its intra-DC replication channel.
#[derive(Debug)]
struct CloudStandby {
    server: ServerProcess,
    crdts: CrdtSet,
    /// Master-side endpoint: its `peer_clock` is what the standby has
    /// acknowledged — the durability frontier under [`HaPolicy`].
    master_link: SyncEndpoint,
    /// Standby-side endpoint.
    standby_link: SyncEndpoint,
}

/// One deployed edge replica.
#[derive(Debug)]
pub struct EdgeReplica {
    pub server: ServerProcess,
    pub device: Device,
    pub crdts: CrdtSet,
    pub to_cloud: SyncEndpoint,
    /// Read-set-versioned response cache (validated against
    /// `crdts.versions` on every lookup).
    pub cache: ResponseCache,
    inflight: Vec<SimTime>,
    active: bool,
    crashed: bool,
    /// Consecutive forwarding failures (breaker input, per edge).
    breaker_failures: u32,
    /// While `Some(t)`, this edge's breaker is open until `t`.
    breaker_open_until: Option<SimTime>,
    /// Diversified shadow variant (tree-walking engine) for the
    /// multi-variant check, when a [`QuarantinePolicy`] is configured.
    shadow: Option<ServerProcess>,
    /// Injected response corruption (bench/test harness).
    corruptor: Option<BitFlipCorruptor>,
    /// Digest mismatches charged against the quarantine budget.
    shadow_mismatches: u32,
}

impl EdgeReplica {
    fn prune(&mut self, now: SimTime) {
        self.inflight.retain(|f| *f > now);
    }

    /// Current active connection count.
    pub fn connections(&self) -> usize {
        self.inflight.len()
    }

    /// Whether the replica is down (crashed, not merely parked).
    pub fn is_crashed(&self) -> bool {
        self.crashed
    }
}

/// Options for the three-tier deployment.
#[derive(Debug, Clone)]
pub struct ThreeTierOptions {
    pub lan: LinkSpec,
    pub wan: LinkSpec,
    pub balance: BalanceStrategy,
    /// `Some` enables elasticity (replica parking).
    pub autoscaler: Option<Autoscaler>,
    /// Background CRDT sync period.
    pub sync_interval: SimDuration,
    /// When true, state changes sync synchronously with each request
    /// (write-through ablation) instead of in the background.
    pub synchronous_sync: bool,
    /// `Some` injects faults: every WAN message (forwarded requests and
    /// sync deltas) consults the plan before delivery. Endpoint names are
    /// `"cloud"` and `"edge{i}"`.
    pub faults: Option<FaultPlan>,
    /// Retry/timeout/breaker policy for failure forwarding.
    pub policy: FaultPolicy,
    /// How sync endpoints track peer state. `OnAck` (default) regenerates
    /// dropped deltas; `Optimistic` is the pre-fix ablation that assumes
    /// delivery and diverges under loss.
    pub sync_advance: AdvanceMode,
    /// Fold fully-acknowledged history into snapshots after every sync
    /// round (default on), keeping resident change logs bounded under
    /// steady-state sync. Disable for the unbounded-history ablation.
    pub compaction: bool,
    /// Observability sink shared by the drivers, the sync daemon and the
    /// fault plan. Disabled by default and free when disabled.
    pub telemetry: Telemetry,
    /// Which services the response caches may serve (off by default — the
    /// exact baseline the cache is measured against).
    pub cache: CachePolicy,
    /// Per-replica LRU byte budget for cached responses.
    pub cache_budget_bytes: usize,
    /// `Some` schedules process crashes: edges always honor their events;
    /// cloud-master events additionally require `ha` (without an HA policy
    /// the master is not crashable, the pre-HA semantics).
    pub crashes: Option<CrashPlan>,
    /// `Some` enables the high-availability tier: warm standby, durable
    /// saves, ack capping, and deterministic failover.
    pub ha: Option<HaPolicy>,
    /// `Some` enables multi-variant shadow checking with quarantine.
    pub quarantine: Option<QuarantinePolicy>,
    /// Per-service tier placement: report-static (default, the
    /// pre-controller semantics), a pinned ablation, the autonomous
    /// controller, or a scripted replay.
    pub placement: PlacementMode,
}

impl Default for ThreeTierOptions {
    fn default() -> Self {
        ThreeTierOptions {
            lan: LinkSpec::edge_lan(),
            wan: LinkSpec::limited_cloud(),
            balance: BalanceStrategy::LeastConnections,
            autoscaler: None,
            sync_interval: SimDuration::from_secs(1),
            synchronous_sync: false,
            faults: None,
            policy: FaultPolicy::default(),
            sync_advance: AdvanceMode::OnAck,
            compaction: true,
            telemetry: Telemetry::disabled(),
            cache: CachePolicy::Off,
            cache_budget_bytes: 256 * 1024,
            crashes: None,
            ha: None,
            quarantine: None,
            placement: PlacementMode::default(),
        }
    }
}

/// Everything the driver needs to consult the cache for one request,
/// resolved before any replica borrow: the canonical entry key, the
/// request's concrete read-unit keys, and write-set facts that gate
/// filling and forward-skipping.
struct CachePlan {
    key: CacheKey,
    reads: Vec<UnitKey>,
    /// No static global writes in the profile — required to fill, because
    /// mutations of existing unbound globals are invisible in a concrete
    /// [`edgstr_analysis::HandleOutcome`].
    globals_clean: bool,
    /// No writes of any kind in the profile.
    pure: bool,
}

/// The EdgStr-generated three-tier deployment.
#[derive(Debug)]
pub struct ThreeTierSystem {
    pub cloud: ServerProcess,
    pub cloud_device: Device,
    pub cloud_crdts: CrdtSet,
    cloud_endpoints: Vec<SyncEndpoint>,
    pub edges: Vec<EdgeReplica>,
    pub options: ThreeTierOptions,
    balancer: LoadBalancer,
    replicated: BTreeSet<(Verb, String)>,
    /// Cloud-side response cache for forwarded requests.
    cloud_cache: ResponseCache,
    /// Per-service effect summaries from profiling — the cache's read/write
    /// sets.
    effects: BTreeMap<(Verb, String), EffectSummary>,
    pub mobile: MobilePower,
    lan_up: LinkChannel,
    lan_down: LinkChannel,
    wan_up: LinkChannel,
    wan_down: LinkChannel,
    /// Jitter stream for retry backoff (forked from the policy seed).
    jitter: DetRng,
    /// Replica template kept for crash/restart re-deployment.
    replica_program: Program,
    replica_bindings: CrdtBindings,
    replica_init: InitState,
    /// Next fresh actor id handed to a restarted replica (reusing a
    /// crashed incarnation's actor would collide with its sequence
    /// numbers).
    next_actor: u64,
    /// Original cloud program source, kept so standbys and recovered
    /// masters can be re-provisioned.
    cloud_source: String,
    /// The warm standby, when the HA policy runs one.
    standby: Option<CloudStandby>,
    /// The master is currently crashed: sync rounds no-op and forwards
    /// fail until promotion or durable recovery.
    cloud_down: bool,
    /// Scheduled promotion time (master crash + detect delay).
    pending_promotion: Option<SimTime>,
    /// Time-ordered crash schedule drained by [`ThreeTierSystem::advance_ha`].
    crash_events: Vec<CrashEvent>,
    crash_cursor: usize,
    /// Edge restarts that arrived while the master was down; re-provisioned
    /// at the next promotion/recovery.
    deferred_restarts: Vec<usize>,
    /// Last durable save image of the master: `(bytes, clock at save)`.
    durable_image: Option<(Vec<u8>, SetClock)>,
    /// Sampling stream for the multi-variant check.
    shadow_rng: DetRng,
    ha_stats: HaStats,
    /// Effective per-service placement; routing consults this on every
    /// request. Under the default [`PlacementMode::ReportStatic`] it is
    /// exactly the report's replicated set (replicated → `EdgeReplicate`,
    /// everything else → `CloudPin`).
    placements: BTreeMap<(Verb, String), Placement>,
    /// The autonomous controller ([`PlacementMode::Adaptive`] only).
    controller: Option<PlacementController>,
    /// Decided transitions waiting on their clock-domination barriers.
    pending_transitions: Vec<PendingTransition>,
    /// Scripted decision schedule, time-ordered, with a replay cursor.
    script: Vec<ScriptedDecision>,
    script_cursor: usize,
    /// Static write-unit → writer-services map for attributing sync bytes
    /// to services (controller telemetry).
    unit_writers: BTreeMap<StateUnit, Vec<(Verb, String)>>,
    /// Cycles the cloud spent on the last forwarded execution (cache hits
    /// count [`CACHE_HIT_CYCLES`]) — the controller's cost estimate input.
    last_forward_cycles: u64,
    placement_stats: PlacementStats,
    /// Next background sync tick, persistent across [`ThreeTierSystem::run`]
    /// calls so multi-phase workloads never replay control-plane ticks at
    /// already-processed virtual times.
    next_sync: SimTime,
}

impl ThreeTierSystem {
    /// Deploy a transformation report: the cloud master runs the original
    /// program, each edge device runs the generated replica, and all
    /// replicas initialize from the shared snapshot (§III-G).
    ///
    /// # Errors
    ///
    /// Propagates server init failures.
    pub fn deploy(
        cloud_source: &str,
        report: &TransformationReport,
        edge_devices: &[DeviceSpec],
        mut options: ThreeTierOptions,
    ) -> Result<Self, ServerError> {
        // drops on the emulated network surface in the same trace as the
        // retries they cause
        if let Some(plan) = options.faults.as_mut() {
            plan.set_telemetry(options.telemetry.clone());
        }
        let mut cloud = ServerProcess::from_source(cloud_source)?;
        cloud.init()?;
        report.replica.init.restore(&mut cloud);
        let cloud_crdts =
            CrdtSet::initialize(ActorId(1), &report.replica.bindings, &report.replica.init);
        let mut edges = Vec::new();
        for (i, spec) in edge_devices.iter().enumerate() {
            let mut server = ServerProcess::from_program(report.replica.program.clone());
            server.init()?;
            report.replica.init.restore(&mut server);
            let crdts = CrdtSet::initialize(
                ActorId(2 + i as u64),
                &report.replica.bindings,
                &report.replica.init,
            );
            let shadow = if options.quarantine.is_some() {
                Some(build_shadow(&report.replica.program, &report.replica.init)?)
            } else {
                None
            };
            edges.push(EdgeReplica {
                server,
                device: Device::new(spec.clone()),
                crdts,
                to_cloud: SyncEndpoint {
                    mode: options.sync_advance,
                    ..SyncEndpoint::new()
                },
                cache: ResponseCache::new(options.cache_budget_bytes, &options.telemetry),
                inflight: Vec::new(),
                active: true,
                crashed: false,
                breaker_failures: 0,
                breaker_open_until: None,
                shadow,
                corruptor: None,
                shadow_mismatches: 0,
            });
        }
        let cloud_endpoints = (0..edges.len())
            .map(|_| SyncEndpoint {
                mode: options.sync_advance,
                ..SyncEndpoint::new()
            })
            .collect();
        let balancer = LoadBalancer::new(options.balance);
        let jitter = DetRng::new(options.policy.jitter_seed);
        let mut next_actor = 2 + edges.len() as u64;
        // warm standby: a second cloud replica initialized from the same
        // snapshot, continuously fed over the reliable intra-DC link
        let standby = if options.ha.as_ref().is_some_and(|h| h.standby) {
            let mut server = ServerProcess::from_source(cloud_source)?;
            server.init()?;
            report.replica.init.restore(&mut server);
            let crdts = CrdtSet::initialize(
                ActorId(next_actor),
                &report.replica.bindings,
                &report.replica.init,
            );
            next_actor += 1;
            Some(CloudStandby {
                server,
                crdts,
                master_link: SyncEndpoint::new(),
                standby_link: SyncEndpoint::new(),
            })
        } else {
            None
        };
        let durable_image = if options.ha.as_ref().is_some_and(|h| h.durable_saves) {
            Some((cloud_crdts.save(), cloud_crdts.clock()))
        } else {
            None
        };
        let crash_events = options
            .crashes
            .as_ref()
            .map(|p| p.events().to_vec())
            .unwrap_or_default();
        let shadow_rng = DetRng::new(options.quarantine.as_ref().map_or(0, |q| q.seed));
        let effects: BTreeMap<(Verb, String), EffectSummary> = report
            .services
            .iter()
            .filter_map(|s| {
                s.profile
                    .as_ref()
                    .map(|p| ((s.verb, s.path.clone()), p.effects.clone()))
            })
            .collect();
        let cloud_cache = ResponseCache::new(options.cache_budget_bytes, &options.telemetry);
        let replicated: BTreeSet<(Verb, String)> =
            report.replica.replicated.iter().cloned().collect();
        // every profiled or replicated service gets an explicit placement
        let service_keys: BTreeSet<(Verb, String)> = effects
            .keys()
            .cloned()
            .chain(replicated.iter().cloned())
            .collect();
        let natural = |key: &(Verb, String)| {
            if replicated.contains(key) {
                Placement::EdgeReplicate
            } else {
                Placement::CloudPin
            }
        };
        let mut placements = BTreeMap::new();
        for key in &service_keys {
            let p = match &options.placement {
                PlacementMode::ReportStatic | PlacementMode::Adaptive(_) => natural(key),
                PlacementMode::Pinned(p) => clamp_placement(
                    *p,
                    replicated.contains(key),
                    effects.get(key).is_some_and(|s| s.cacheable),
                ),
                PlacementMode::Scripted(script) => script.pinned.map_or(natural(key), |p| {
                    clamp_placement(
                        p,
                        replicated.contains(key),
                        effects.get(key).is_some_and(|s| s.cacheable),
                    )
                }),
            };
            placements.insert(key.clone(), p);
        }
        let controller = if let PlacementMode::Adaptive(policy) = &options.placement {
            // offered-demand utilization is measured against the cluster's
            // aggregate edge compute
            let edge_cores: f64 = edges.iter().map(|e| f64::from(e.device.spec.cores)).sum();
            let mut c = PlacementController::new(policy.clone(), edge_cores.max(1.0));
            for key in &service_keys {
                let signals = effects.get(key).map_or_else(
                    || StaticSignals {
                        replicable: replicated.contains(key),
                        ..StaticSignals::default()
                    },
                    |s| {
                        StaticSignals::from_summary(
                            s,
                            replicated.contains(key),
                            service_state_bytes(&cloud_crdts, s),
                        )
                    },
                );
                c.register(key.clone(), signals, placements[key]);
            }
            Some(c)
        } else {
            None
        };
        let mut script = match &options.placement {
            PlacementMode::Scripted(s) => s.decisions.clone(),
            _ => Vec::new(),
        };
        script.sort_by_key(|d| d.at);
        let mut unit_writers: BTreeMap<StateUnit, Vec<(Verb, String)>> = BTreeMap::new();
        for (key, summary) in &effects {
            for w in &summary.writes {
                unit_writers.entry(w.clone()).or_default().push(key.clone());
            }
        }
        let mut sys = ThreeTierSystem {
            cloud,
            cloud_device: Device::new(DeviceSpec::cloud_server()),
            cloud_crdts,
            cloud_endpoints,
            edges,
            balancer,
            lan_up: LinkChannel::new(options.lan),
            lan_down: LinkChannel::new(options.lan),
            wan_up: LinkChannel::new(options.wan),
            wan_down: LinkChannel::new(options.wan),
            jitter,
            replica_program: report.replica.program.clone(),
            replica_bindings: report.replica.bindings.clone(),
            replica_init: report.replica.init.clone(),
            next_actor,
            cloud_source: cloud_source.to_string(),
            standby,
            cloud_down: false,
            pending_promotion: None,
            crash_events,
            crash_cursor: 0,
            deferred_restarts: Vec::new(),
            durable_image,
            shadow_rng,
            ha_stats: HaStats::default(),
            next_sync: SimTime::ZERO + options.sync_interval,
            options,
            replicated,
            cloud_cache,
            effects,
            mobile: MobilePower::default(),
            placements,
            controller,
            pending_transitions: Vec::new(),
            script,
            script_cursor: 0,
            unit_writers,
            last_forward_cycles: 0,
            placement_stats: PlacementStats::default(),
        };
        sys.emit_initial_placements();
        Ok(sys)
    }

    /// `placement.pin` events and initial placement gauges for every
    /// service at deploy time.
    fn emit_initial_placements(&mut self) {
        let telemetry = self.options.telemetry.clone();
        if !telemetry.is_enabled() {
            return;
        }
        for (key, p) in &self.placements {
            telemetry.event(
                "placement.pin",
                Tier::System,
                None,
                SimTime::ZERO,
                &[
                    ("service", Json::from(service_label(key))),
                    ("to", Json::from(p.as_str())),
                ],
            );
        }
        if let Some(reg) = telemetry.registry() {
            for (key, p) in &self.placements {
                reg.gauge(
                    "edgstr_placement_state",
                    &[("service", &service_label(key))],
                )
                .set(f64::from(p.rank()));
            }
        }
    }

    /// The effective placement routing uses for `key` right now (pending
    /// transitions have not happened yet).
    pub fn placement_of(&self, key: &(Verb, String)) -> Placement {
        self.placements
            .get(key)
            .copied()
            .unwrap_or(Placement::CloudPin)
    }

    /// Accumulated placement decisions and completed transitions.
    pub fn placement_stats(&self) -> &PlacementStats {
        &self.placement_stats
    }

    /// Transitions decided but still waiting on their clock barriers.
    pub fn pending_transition_count(&self) -> usize {
        self.pending_transitions.len()
    }

    /// The decision schedule recorded so far — replayable verbatim as
    /// [`PlacementScript::decisions`][crate::PlacementScript] for a
    /// digest-parity reference run.
    pub fn decision_schedule(&self) -> Vec<ScriptedDecision> {
        self.placement_stats.decided.clone()
    }

    /// Placement control-plane step at a sync tick: replay due scripted
    /// decisions, run the adaptive controller over the windows that just
    /// closed, then apply any transition whose barrier is met.
    fn placement_tick(&mut self, at: SimTime) {
        while self
            .script
            .get(self.script_cursor)
            .is_some_and(|d| d.at <= at)
        {
            let d = self.script[self.script_cursor].clone();
            self.script_cursor += 1;
            self.begin_transition(d.service, d.to, d.at, "scripted");
        }
        let decisions = match self.controller.as_mut() {
            Some(c) => c.tick(at),
            None => Vec::new(),
        };
        for d in decisions {
            self.begin_transition(d.service, d.to, d.at, d.reason.as_str());
        }
        if self.controller.is_some() {
            self.publish_placement_gauges();
        }
        self.apply_ready_transitions(at);
    }

    /// Queue one placement transition. A decision made while an earlier
    /// transition of the same service is still draining chains off that
    /// transition's target, preserving per-service FIFO order.
    fn begin_transition(
        &mut self,
        service: (Verb, String),
        to: Placement,
        at: SimTime,
        reason: &str,
    ) {
        let cacheable = self.effects.get(&service).is_some_and(|s| s.cacheable);
        let to = clamp_placement(to, self.replicated.contains(&service), cacheable);
        let from = self
            .pending_transitions
            .iter()
            .rev()
            .find(|t| t.service == service)
            .map(|t| t.to)
            .unwrap_or_else(|| self.placement_of(&service));
        if from == to {
            return;
        }
        self.placement_stats.decided.push(ScriptedDecision {
            at,
            service: service.clone(),
            to,
        });
        let barrier = if to == Placement::EdgeReplicate {
            // promotion warm-up: local serving starts only once every live
            // edge has observed at least this cloud snapshot
            TransitionBarrier::EdgesDominate(self.cloud_crdts.clock())
        } else if from == Placement::EdgeReplicate {
            // demotion drain: keep serving locally until the cloud holds
            // every edge delta that existed at decision time
            TransitionBarrier::CloudDominates(
                self.edges
                    .iter()
                    .filter(|e| !e.crashed)
                    .map(|e| e.crdts.clock())
                    .collect(),
            )
        } else {
            TransitionBarrier::Immediate
        };
        self.pending_transitions.push(PendingTransition {
            service,
            from,
            to,
            decided_at: at,
            reason: reason.to_string(),
            barrier,
        });
    }

    /// Apply every pending transition whose barrier is met, in decision
    /// order per service (a later transition never overtakes an earlier
    /// one that is still draining).
    fn apply_ready_transitions(&mut self, at: SimTime) {
        if self.pending_transitions.is_empty() {
            return;
        }
        let cloud_clock = self.cloud_crdts.clock();
        let mut blocked: BTreeSet<(Verb, String)> = BTreeSet::new();
        let mut i = 0;
        while i < self.pending_transitions.len() {
            let t = &self.pending_transitions[i];
            let ready = !blocked.contains(&t.service)
                && match &t.barrier {
                    TransitionBarrier::Immediate => true,
                    TransitionBarrier::EdgesDominate(snap) => self
                        .edges
                        .iter()
                        .filter(|e| !e.crashed)
                        .all(|e| e.crdts.clock().dominates(snap)),
                    TransitionBarrier::CloudDominates(snaps) => {
                        snaps.iter().all(|s| cloud_clock.dominates(s))
                    }
                };
            if ready {
                let t = self.pending_transitions.remove(i);
                self.complete_transition(t, at);
            } else {
                blocked.insert(self.pending_transitions[i].service.clone());
                i += 1;
            }
        }
    }

    /// Flip the effective placement, record the transition, snapshot the
    /// acked prefixes for the write-loss audit, and emit telemetry.
    fn complete_transition(&mut self, t: PendingTransition, at: SimTime) {
        self.placements.insert(t.service.clone(), t.to);
        let promote = t.to.rank() > t.from.rank();
        if promote {
            self.placement_stats.promotes += 1;
        } else {
            self.placement_stats.demotes += 1;
        }
        // audit point for zero acked-write loss: the final converged
        // master clock must dominate every live edge's acked prefix as it
        // stood at the flip
        self.placement_stats.acked_snapshots.extend(
            self.edges
                .iter()
                .filter(|e| !e.crashed)
                .map(|e| e.to_cloud.peer_clock.clone()),
        );
        let telemetry = self.options.telemetry.clone();
        if telemetry.is_enabled() {
            telemetry.event(
                if promote {
                    "placement.promote"
                } else {
                    "placement.demote"
                },
                Tier::System,
                None,
                at,
                &[
                    ("service", Json::from(service_label(&t.service))),
                    ("from", Json::from(t.from.as_str())),
                    ("to", Json::from(t.to.as_str())),
                    ("reason", Json::from(t.reason.clone())),
                ],
            );
            if let Some(reg) = telemetry.registry() {
                reg.gauge(
                    "edgstr_placement_state",
                    &[("service", &service_label(&t.service))],
                )
                .set(f64::from(t.to.rank()));
            }
        }
        self.placement_stats.transitions.push(TransitionRecord {
            service: t.service,
            from: t.from,
            to: t.to,
            decided_at: t.decided_at,
            completed_at: at,
            reason: t.reason,
        });
    }

    /// Per-service controller gauges: effective placement rank, window
    /// read ratio, and live state-byte footprint.
    fn publish_placement_gauges(&self) {
        let telemetry = &self.options.telemetry;
        let Some(reg) = telemetry.registry() else {
            return;
        };
        let Some(c) = self.controller.as_ref() else {
            return;
        };
        for (key, _, summary) in c.snapshot() {
            let label = service_label(&key);
            reg.gauge("edgstr_placement_state", &[("service", &label)])
                .set(f64::from(self.placement_of(&key).rank()));
            reg.gauge("edgstr_service_read_ratio", &[("service", &label)])
                .set(summary.read_ratio);
            let state_bytes = self
                .effects
                .get(&key)
                .map_or(0, |s| service_state_bytes(&self.cloud_crdts, s));
            reg.gauge("edgstr_service_state_bytes", &[("service", &label)])
                .set(state_bytes as f64);
        }
    }

    /// Feed one completed request into the adaptive controller's window,
    /// with matched actual/estimated costs for both serving paths. The
    /// local-demand estimate is always the *unloaded* edge compute time,
    /// so post-demotion utilization keeps reflecting offered demand rather
    /// than queueing feedback.
    fn observe_placement(
        &mut self,
        key: &(Verb, String),
        idx: usize,
        cache_hit: bool,
        forwarded: bool,
        cycles: u64,
        wait: SimDuration,
    ) {
        if self.controller.is_none() {
            return;
        }
        let write = self.effects.get(key).is_some_and(|s| !s.pure);
        let local_est = self.edges[idx].device.spec.service_time(cycles);
        let forward_est = SimDuration(
            self.options.wan.latency.0 * 2 + self.cloud_device.spec.service_time(cycles).0,
        );
        let obs = if forwarded {
            Observation {
                write,
                cache_hit,
                local_us: local_est.0,
                forward_us: wait.0,
                local_demand_us: local_est.0,
            }
        } else {
            Observation {
                write,
                cache_hit,
                local_us: wait.0,
                forward_us: forward_est.0,
                local_demand_us: local_est.0,
            }
        };
        if let Some(c) = self.controller.as_mut() {
            c.observe(key, obs);
        }
    }

    /// Resolve the cache participation of one request under the configured
    /// policy: `None` means this request bypasses the caches entirely.
    fn cache_plan(&self, request: &HttpRequest) -> Option<CachePlan> {
        let policy = self.options.cache;
        if policy == CachePolicy::Off {
            return None;
        }
        let summary = self.effects.get(&(request.verb, request.path.clone()))?;
        if !summary.cacheable {
            return None;
        }
        if policy == CachePolicy::ReadOnlyServices && !summary.pure {
            return None;
        }
        Some(CachePlan {
            key: CacheKey::for_request(request),
            reads: resolve_reads(summary, request),
            globals_clean: !summary
                .writes
                .iter()
                .any(|w| matches!(w, StateUnit::Global(_))),
            pure: summary.pure,
        })
    }

    /// Lifetime hit/miss/eviction/invalidation counts aggregated over the
    /// cloud cache and every edge cache.
    pub fn cache_stats(&self) -> CacheStats {
        let mut s = self.cloud_cache.stats().clone();
        for e in &self.edges {
            s.absorb(e.cache.stats());
        }
        s
    }

    /// One bidirectional background sync round between every live edge and
    /// the cloud master at virtual time `at`; returns the WAN bytes spent
    /// (dropped messages still consume bandwidth). When a fault plan is
    /// configured, each direction of each exchange may be dropped; under
    /// the ack protocol the lost delta is simply regenerated next round.
    /// After the exchanges, fully-acknowledged history is folded into the
    /// snapshots (unless [`ThreeTierOptions::compaction`] is off).
    pub fn sync_round(&mut self, at: SimTime) -> usize {
        self.advance_ha(at);
        if self.cloud_down {
            // no master: nothing to exchange until promotion/recovery
            return 0;
        }
        let telemetry = self.options.telemetry.clone();
        let span = telemetry.start_span("sync.round", Tier::System, None, at);
        // intra-DC first: the standby ingests this round's state before any
        // acknowledgment goes out, so the durability frontier below already
        // reflects it
        self.replicate_to_standby();
        let cap = self.durability_clock();
        let mut bytes = 0;
        let attribute = self.controller.is_some();
        let mut attributed: Vec<((Verb, String), u64)> = Vec::new();
        for (i, edge) in self.edges.iter_mut().enumerate() {
            if edge.crashed {
                continue;
            }
            let edge_name = format!("edge{i}");
            // edge -> cloud (edge_state message)
            let msg = edge.to_cloud.generate(&edge.crdts);
            if !msg.changes.is_empty() {
                bytes += msg.wire_size();
                if attribute {
                    attribute_changes(
                        &self.unit_writers,
                        msg.wire_size() as u64,
                        &msg.changes,
                        &mut attributed,
                    );
                }
            }
            let dropped = self
                .options
                .faults
                .as_mut()
                .is_some_and(|p| p.should_drop(&edge_name, "cloud", at));
            if !dropped {
                self.cloud_endpoints[i].receive_owned(&mut self.cloud_crdts, &mut self.cloud, msg);
            }
            // cloud -> edge (cloud_state message). Under HA the ack clock
            // is capped at the durability frontier: the edge may only
            // treat as acknowledged (and later compact) what the failover
            // target provably holds.
            let mut msg = self.cloud_endpoints[i].generate(&self.cloud_crdts);
            if let Some(cap) = &cap {
                msg.ack = msg.ack.meet(cap);
            }
            if !msg.changes.is_empty() {
                bytes += msg.wire_size();
                if attribute {
                    attribute_changes(
                        &self.unit_writers,
                        msg.wire_size() as u64,
                        &msg.changes,
                        &mut attributed,
                    );
                }
            }
            let dropped = self
                .options
                .faults
                .as_mut()
                .is_some_and(|p| p.should_drop("cloud", &edge_name, at));
            if !dropped {
                edge.to_cloud
                    .receive_owned(&mut edge.crdts, &mut edge.server, msg);
            }
        }
        // changes received this round reach the standby with the next
        // round's pre-ack replication; persist the image after the
        // exchanges so recovery resumes from this round's state
        self.persist_durable();
        if self.options.compaction {
            let folded = self.compact_acked();
            if let Some(reg) = telemetry.registry() {
                reg.counter("edgstr_crdt_changes_folded_total", &[])
                    .add(folded as u64);
                reg.gauge("edgstr_crdt_resident_changes", &[])
                    .set(self.cloud_crdts.history_len() as f64);
                if folded > 0 {
                    telemetry.event(
                        "crdt.compact",
                        Tier::System,
                        Some(span),
                        at,
                        &[("folded", Json::from(folded as u64))],
                    );
                }
            }
        }
        if let Some(c) = self.controller.as_mut() {
            for (key, b) in attributed {
                c.observe_sync_bytes(&key, b);
            }
        }
        if !self.pending_transitions.is_empty() {
            self.apply_ready_transitions(at);
        }
        if telemetry.is_enabled() {
            telemetry.span_attr(span, "bytes", Json::from(bytes as u64));
        }
        telemetry.end_span(span, at);
        bytes
    }

    /// Fold fully-acknowledged history into snapshots on every live node;
    /// returns the number of changes dropped cluster-wide.
    ///
    /// The cloud's safe frontier is the pointwise minimum
    /// ([`crate::crdtset::SetClock::meet`]) of every live edge's ack clock:
    /// a change is folded only once *all* live peers have acknowledged it.
    /// Crashed edges are excluded from the meet — a restarted replica
    /// re-provisions from the cloud's compacted save
    /// ([`ThreeTierSystem::restart_edge`]) instead of replaying history, so
    /// nothing it missed is ever needed again. Each edge's only sync peer
    /// is the cloud, so its frontier is the cloud's ack clock directly.
    pub fn compact_acked(&mut self) -> usize {
        let mut dropped = 0;
        let mut live = self
            .edges
            .iter()
            .enumerate()
            .filter(|(_, e)| !e.crashed)
            .map(|(i, _)| &self.cloud_endpoints[i].peer_clock);
        if let Some(first) = live.next() {
            let mut frontier = live.fold(first.clone(), |acc, clock| acc.meet(clock));
            // under HA the master also keeps everything its failover
            // target might still need: a recovered/promoted cloud must be
            // able to re-serve the tail above the durability frontier
            if let Some(cap) = self.durability_clock() {
                frontier = frontier.meet(&cap);
            }
            dropped += self.cloud_crdts.compact(&frontier);
            if let Some(sb) = self.standby.as_mut() {
                dropped += sb.crdts.compact(&frontier);
            }
        }
        for edge in self.edges.iter_mut().filter(|e| !e.crashed) {
            dropped += edge.crdts.compact(&edge.to_cloud.peer_clock);
        }
        dropped
    }

    /// Whether every live replica has observed exactly what the cloud
    /// master has (mutual clock domination — the strong-eventual-
    /// consistency convergence criterion).
    pub fn converged(&self) -> bool {
        let master = self.cloud_crdts.clock();
        self.edges.iter().filter(|e| !e.crashed).all(|e| {
            let c = e.crdts.clock();
            c.dominates(&master) && master.dominates(&c)
        })
    }

    /// Run sync rounds every `sync_interval` starting at `from` until the
    /// cluster converges or `max_rounds` is exhausted. Returns
    /// `Some((rounds_used, virtual_time))` on convergence.
    pub fn sync_until_converged(
        &mut self,
        from: SimTime,
        max_rounds: usize,
    ) -> Option<(usize, SimTime)> {
        let mut at = from;
        for round in 0..max_rounds {
            if self.converged() {
                return Some((round, at));
            }
            at += self.options.sync_interval;
            self.sync_round(at);
        }
        if self.converged() {
            return Some((max_rounds, at));
        }
        None
    }

    /// Crash an edge replica: it loses all volatile state, stops serving,
    /// and stops syncing until [`ThreeTierSystem::restart_edge`].
    pub fn crash_edge(&mut self, i: usize) {
        let e = &mut self.edges[i];
        e.crashed = true;
        e.active = false;
        e.inflight.clear();
        // the cache dies with the process: a rejoined edge must never
        // serve responses stamped with pre-crash version vectors
        e.cache.clear();
        let acked = e.to_cloud.peer_clock.clone();
        self.ha_stats.edge_crashes += 1;
        self.ha_stats.acked_snapshots.push(acked);
    }

    /// Restart a crashed edge: a fresh server is provisioned from the cloud
    /// master's current save image (snapshot + retained tail) under a
    /// brand-new actor id, so the replica rejoins without the cloud
    /// replaying its full change history — compaction may long since have
    /// folded the prefix the crashed incarnation was missing. Both sync
    /// endpoints start acknowledged up to the provisioning clock; only
    /// changes after the image travel on subsequent rounds. The crashed
    /// incarnation's actor id is retired (reusing it would collide with
    /// already-synced sequence numbers).
    ///
    /// # Errors
    ///
    /// Propagates replica init failures.
    pub fn restart_edge(&mut self, i: usize) -> Result<(), ServerError> {
        let mut server = ServerProcess::from_program(self.replica_program.clone());
        server.init()?;
        self.replica_init.restore(&mut server);
        let actor = ActorId(self.next_actor);
        self.next_actor += 1;
        // Under HA the provisioning image is the durability frontier (the
        // standby's state, or the durable save): an image ahead of it
        // would bake unacked changes into the fresh snapshot, where a
        // post-failover master could never recover them as changes.
        // Anything between the frontier and the master's head reaches the
        // rejoined edge through normal sync.
        let image = match (&self.standby, &self.durable_image) {
            (Some(sb), _) if self.options.ha.is_some() => sb.crdts.save(),
            (None, Some((bytes, _))) if self.options.ha.is_some() => bytes.clone(),
            _ => self.cloud_crdts.save(),
        };
        let crdts = CrdtSet::load(actor, &self.replica_bindings, &image)
            .expect("cloud save image must round-trip");
        crdts.materialize_all(&mut server);
        let provisioned = crdts.clock();
        let quarantine = self.options.quarantine.is_some();
        let shadow = if quarantine {
            Some(build_shadow(&self.replica_program, &self.replica_init)?)
        } else {
            None
        };
        let e = &mut self.edges[i];
        e.server = server;
        e.crdts = crdts;
        e.to_cloud = SyncEndpoint {
            mode: self.options.sync_advance,
            peer_clock: provisioned.clone(),
            ..SyncEndpoint::new()
        };
        e.inflight.clear();
        e.crashed = false;
        e.active = true;
        // the fresh CrdtSet's version counters restart at zero; stale
        // entries must not revalidate against them
        e.cache.clear();
        // a restarted process gets a fresh breaker: the pre-crash open
        // state belonged to the dead incarnation and would only delay
        // recovery
        e.breaker_failures = 0;
        e.breaker_open_until = None;
        // the replacement VM starts healthy: fresh shadow variant, no
        // injected fault, clean mismatch budget
        e.shadow = shadow;
        e.corruptor = None;
        e.shadow_mismatches = 0;
        // the cloud resumes from the image's clock: nothing below it is
        // ever re-sent
        self.cloud_endpoints[i] = SyncEndpoint {
            mode: self.options.sync_advance,
            peer_clock: provisioned,
            ..SyncEndpoint::new()
        };
        self.ha_stats.edge_restarts += 1;
        Ok(())
    }

    /// Whether edge `idx`'s circuit breaker blocks WAN forwarding at `at`.
    /// After the cooldown the breaker is half-open: the next forward is the
    /// probe that closes it (success) or re-opens it (failure).
    pub fn breaker_open(&self, idx: usize, at: SimTime) -> bool {
        self.edges[idx]
            .breaker_open_until
            .is_some_and(|until| at < until)
    }

    fn record_forward_success(&mut self, idx: usize) {
        let e = &mut self.edges[idx];
        e.breaker_failures = 0;
        e.breaker_open_until = None;
    }

    fn record_forward_failure(&mut self, idx: usize, at: SimTime) {
        let threshold = self.options.policy.breaker_threshold;
        let cooldown = self.options.policy.breaker_cooldown;
        let e = &mut self.edges[idx];
        e.breaker_failures += 1;
        if e.breaker_failures >= threshold {
            let was_open = e.breaker_open_until.is_some();
            e.breaker_open_until = Some(at + cooldown);
            if !was_open {
                self.options.telemetry.event(
                    "breaker.open",
                    Tier::Edge,
                    None,
                    at,
                    &[
                        ("edge", Json::from(idx as u64)),
                        (
                            "failures",
                            Json::from(self.edges[idx].breaker_failures as u64),
                        ),
                    ],
                );
            }
        }
    }

    /// Whether every state unit the request touches is CRDT-bound on the
    /// replica. Only then do primary and shadow observe identical state, so
    /// a digest mismatch can only mean a faulty variant — never a benign
    /// divergence on unreplicated state.
    fn shadow_checkable(&self, summary: &EffectSummary) -> bool {
        let b = &self.replica_bindings;
        let read_ok = summary.reads.iter().all(|r| match r {
            ReadUnit::Table(t) | ReadUnit::TableKeyed { table: t, .. } => b.tables.contains(t),
            ReadUnit::File(f) => b.files.contains(f),
            ReadUnit::Global(g) => b.globals.contains(g),
        });
        let write_ok = summary.writes.iter().all(|w| match w {
            StateUnit::DbTable(t) => b.tables.contains(t),
            StateUnit::File(f) => b.files.contains(f),
            StateUnit::Global(g) => b.globals.contains(g),
        });
        read_ok && write_ok
    }

    /// Maybe shadow-execute `request` on edge `idx`'s diversified variant
    /// (sampled at the quarantine policy's check fraction), returning the
    /// shadow's response for digest comparison. Runs before the primary
    /// handles the request: both variants start from the same CRDT state,
    /// and the shadow's own state is rebuilt from scratch each check, so
    /// shadow execution never contaminates the serving replica.
    fn shadow_check(&mut self, idx: usize, request: &HttpRequest) -> Option<HttpResponse> {
        let q = self.options.quarantine.as_ref()?;
        let fraction = q.check_fraction;
        let key = (request.verb, request.path.clone());
        let summary = self.effects.get(&key)?;
        if !self.shadow_checkable(summary) {
            return None;
        }
        if !self.shadow_rng.chance(fraction) {
            return None;
        }
        let edge = &mut self.edges[idx];
        let shadow = edge.shadow.as_mut()?;
        edge.crdts.materialize_all(shadow);
        shadow.handle(request).ok().map(|o| o.response)
    }

    /// Quarantine edge `i`: drain it, drop its caches, and re-provision a
    /// replacement from the cloud save image. The replacement starts with
    /// a clean mismatch budget and no injected fault.
    fn quarantine_edge(&mut self, i: usize, at: SimTime) {
        self.options.telemetry.event(
            "quarantine.open",
            Tier::System,
            None,
            at,
            &[
                ("edge", Json::from(i as u64)),
                (
                    "mismatches",
                    Json::from(self.edges[i].shadow_mismatches as u64),
                ),
            ],
        );
        self.ha_stats.quarantines.push((i, at));
        // drain: the faulty incarnation serves nothing further
        let e = &mut self.edges[i];
        e.active = false;
        e.inflight.clear();
        e.cache.clear();
        e.crashed = true;
        self.restart_edge(i)
            .expect("re-provisioning a quarantined replica must succeed");
    }

    /// The durability frontier under ack capping: what the failover target
    /// (standby, else durable image) provably holds. `None` disables
    /// capping (no HA, or the unsafe ablation).
    fn durability_clock(&self) -> Option<SetClock> {
        let ha = self.options.ha.as_ref()?;
        if !ha.ack_capping {
            return None;
        }
        if let Some(sb) = &self.standby {
            return Some(sb.master_link.peer_clock.clone());
        }
        if ha.durable_saves {
            return Some(
                self.durable_image
                    .as_ref()
                    .map(|(_, clock)| clock.clone())
                    .unwrap_or_default(),
            );
        }
        None
    }

    /// One reliable intra-DC replication exchange: master delta to the
    /// standby, standby acknowledgment back. Advances the durability
    /// frontier ([`ThreeTierSystem::durability_clock`]).
    fn replicate_to_standby(&mut self) {
        if let Some(sb) = self.standby.as_mut() {
            let msg = sb.master_link.generate(&self.cloud_crdts);
            sb.standby_link
                .receive_owned(&mut sb.crdts, &mut sb.server, msg);
            let ack = sb.standby_link.generate(&sb.crdts);
            sb.master_link
                .receive_owned(&mut self.cloud_crdts, &mut self.cloud, ack);
        }
    }

    /// Persist the master's save image (when the policy keeps durable
    /// saves) — the recovery source for a standby-less restart.
    fn persist_durable(&mut self) {
        if self.options.ha.as_ref().is_some_and(|h| h.durable_saves) {
            self.durable_image = Some((self.cloud_crdts.save(), self.cloud_crdts.clock()));
        }
    }

    /// Apply every crash-schedule event (and any pending promotion) with
    /// time at or before `now`, in time order. Idempotent; called from the
    /// run loop, sync rounds, and each forward attempt so transitions take
    /// effect exactly at their virtual times.
    fn advance_ha(&mut self, now: SimTime) {
        loop {
            let next_crash = self
                .crash_events
                .get(self.crash_cursor)
                .filter(|e| e.at <= now)
                .map(|e| e.at);
            let promo = self.pending_promotion.filter(|t| *t <= now);
            match (next_crash, promo) {
                (Some(c), Some(p)) if p <= c => self.promote_standby(p),
                (Some(_), _) => {
                    let ev = self.crash_events[self.crash_cursor].clone();
                    self.crash_cursor += 1;
                    self.apply_crash_event(&ev);
                }
                (None, Some(p)) => self.promote_standby(p),
                (None, None) => return,
            }
        }
    }

    fn apply_crash_event(&mut self, ev: &CrashEvent) {
        let telemetry = self.options.telemetry.clone();
        if ev.node == "cloud" {
            let Some(ha) = self.options.ha.clone() else {
                // without an HA policy the master is not crashable
                return;
            };
            match ev.kind {
                CrashKind::Down => {
                    if self.cloud_down {
                        return;
                    }
                    self.cloud_down = true;
                    self.ha_stats.master_crashes += 1;
                    // audit point: everything the old master ever acked is
                    // bounded by what the edges saw — snapshot it
                    let acked: Vec<SetClock> = self
                        .edges
                        .iter()
                        .filter(|e| !e.crashed)
                        .map(|e| e.to_cloud.peer_clock.clone())
                        .collect();
                    self.ha_stats.acked_snapshots.extend(acked);
                    telemetry.event("crash.cloud", Tier::Cloud, None, ev.at, &[]);
                    if self.standby.is_some() {
                        // deterministic health monitor: promote after the
                        // detection delay
                        self.pending_promotion = Some(ev.at + ha.detect_delay);
                    }
                }
                CrashKind::Up => {
                    if self.cloud_down {
                        // no standby was available: recover from the
                        // durable save image (or cold-start from init)
                        self.recover_master_durable(ev.at);
                    } else {
                        // a standby was already promoted; the returning
                        // process becomes the new standby
                        if ha.standby {
                            self.provision_standby(ev.at);
                        }
                    }
                }
            }
            return;
        }
        let Some(i) = ev
            .node
            .strip_prefix("edge")
            .and_then(|s| s.parse::<usize>().ok())
            .filter(|i| *i < self.edges.len())
        else {
            return;
        };
        match ev.kind {
            CrashKind::Down => {
                if !self.edges[i].crashed {
                    self.crash_edge(i);
                    telemetry.event(
                        "crash.edge",
                        Tier::Edge,
                        None,
                        ev.at,
                        &[("edge", Json::from(i as u64))],
                    );
                }
            }
            CrashKind::Up => {
                if self.edges[i].crashed {
                    if self.cloud_down {
                        // nothing to provision from while the master is
                        // down; rejoin at the next promotion/recovery
                        self.deferred_restarts.push(i);
                    } else {
                        self.rejoin_edge(i, ev.at);
                    }
                }
            }
        }
    }

    /// Restart + catch-up telemetry for a scheduled edge rejoin.
    fn rejoin_edge(&mut self, i: usize, at: SimTime) {
        self.restart_edge(i)
            .expect("replica template re-provisions cleanly");
        self.options.telemetry.event(
            "rejoin.catchup",
            Tier::Edge,
            None,
            at,
            &[("edge", Json::from(i as u64))],
        );
    }

    /// Promote the warm standby to master: edges re-home to it on their
    /// next sync round / forward retry. The new master has never spoken to
    /// the edges, so every sync channel restarts from scratch — resending
    /// the retained tail is idempotent.
    fn promote_standby(&mut self, at: SimTime) {
        self.pending_promotion = None;
        let Some(sb) = self.standby.take() else {
            return;
        };
        self.cloud = sb.server;
        self.cloud_crdts = sb.crdts;
        self.cloud_down = false;
        for ep in &mut self.cloud_endpoints {
            *ep = SyncEndpoint {
                mode: self.options.sync_advance,
                ..SyncEndpoint::new()
            };
        }
        // cached responses are stamped with the dead master's version
        // counters
        self.cloud_cache.clear();
        self.persist_durable();
        self.ha_stats.failovers += 1;
        if let Some(crashed_at) = self.last_open_outage() {
            self.ha_stats.outages.push((crashed_at, at));
        }
        self.options.telemetry.event(
            "failover.promote",
            Tier::Cloud,
            None,
            at,
            &[("failovers", Json::from(self.ha_stats.failovers as u64))],
        );
        self.restart_deferred(at);
    }

    /// Recover a standby-less master from the durable save image (or, with
    /// durable saves disabled — the ablation — cold-start from the init
    /// snapshot, losing everything since deploy).
    fn recover_master_durable(&mut self, at: SimTime) {
        self.cloud_down = false;
        let mut server =
            ServerProcess::from_source(&self.cloud_source).expect("cloud source parsed at deploy");
        server.init().expect("cloud init re-runs cleanly");
        self.replica_init.restore(&mut server);
        let actor = ActorId(self.next_actor);
        self.next_actor += 1;
        let crdts = match &self.durable_image {
            Some((bytes, _)) => CrdtSet::load(actor, &self.replica_bindings, bytes)
                .expect("durable image must round-trip"),
            None => CrdtSet::initialize(actor, &self.replica_bindings, &self.replica_init),
        };
        crdts.materialize_all(&mut server);
        self.cloud = server;
        self.cloud_crdts = crdts;
        // what each edge has acked was in the dead master's memory; resend
        // the retained tail from scratch (idempotent)
        for ep in &mut self.cloud_endpoints {
            *ep = SyncEndpoint {
                mode: self.options.sync_advance,
                ..SyncEndpoint::new()
            };
        }
        self.cloud_cache.clear();
        self.ha_stats.durable_recoveries += 1;
        if let Some(crashed_at) = self.last_open_outage() {
            self.ha_stats.outages.push((crashed_at, at));
        }
        self.options
            .telemetry
            .event("failover.recover", Tier::Cloud, None, at, &[]);
        self.restart_deferred(at);
    }

    /// Provision a fresh warm standby from the current master's save image
    /// (the returning ex-master process after a failover).
    fn provision_standby(&mut self, at: SimTime) {
        let mut server =
            ServerProcess::from_source(&self.cloud_source).expect("cloud source parsed at deploy");
        server.init().expect("cloud init re-runs cleanly");
        self.replica_init.restore(&mut server);
        let actor = ActorId(self.next_actor);
        self.next_actor += 1;
        let image = self.cloud_crdts.save();
        let crdts = CrdtSet::load(actor, &self.replica_bindings, &image)
            .expect("master image must round-trip");
        crdts.materialize_all(&mut server);
        let clock = crdts.clock();
        self.standby = Some(CloudStandby {
            server,
            crdts,
            master_link: SyncEndpoint {
                peer_clock: clock.clone(),
                ..SyncEndpoint::new()
            },
            standby_link: SyncEndpoint {
                peer_clock: clock,
                ..SyncEndpoint::new()
            },
        });
        self.options
            .telemetry
            .event("standby.provision", Tier::Cloud, None, at, &[]);
    }

    /// The crash time of the outage currently missing its recovery entry.
    fn last_open_outage(&self) -> Option<SimTime> {
        // master_crashes counts crashes; outages counts recoveries — the
        // open outage is the crash event not yet paired
        if (self.ha_stats.outages.len() as u32) < self.ha_stats.master_crashes {
            self.crash_events[..self.crash_cursor]
                .iter()
                .rev()
                .find(|e| e.node == "cloud" && e.kind == CrashKind::Down)
                .map(|e| e.at)
        } else {
            None
        }
    }

    /// Re-provision edges whose scheduled restart arrived while the master
    /// was down.
    fn restart_deferred(&mut self, at: SimTime) {
        for i in std::mem::take(&mut self.deferred_restarts) {
            if self.edges[i].crashed {
                self.rejoin_edge(i, at);
            }
        }
    }

    /// Accumulated failure/recovery observations.
    pub fn ha_stats(&self) -> &HaStats {
        &self.ha_stats
    }

    /// Whether the cloud master is currently down.
    pub fn master_down(&self) -> bool {
        self.cloud_down
    }

    /// Inject the bit-flipping faulty VM variant into edge `i`'s serving
    /// path: each response is corrupted with `flip_prob`, deterministically
    /// from `seed`. Cleared when the replica is re-provisioned.
    pub fn inject_faulty_variant(&mut self, i: usize, flip_prob: f64, seed: u64) {
        self.edges[i].corruptor = Some(BitFlipCorruptor::new(seed, flip_prob));
    }

    /// Responses corrupted so far by edge `i`'s injected faulty variant.
    pub fn corrupted_responses(&self, i: usize) -> u64 {
        self.edges[i].corruptor.as_ref().map_or(0, |c| c.flips)
    }

    /// Forward one request to the cloud with bounded retries, exponential
    /// backoff and seeded jitter, under the run's fault plan and deadline.
    /// Returns `Some((time_back_at_edge, response_bytes))` on success. The
    /// cloud executes the request at most once: if only the response is
    /// lost, retries retransmit the response rather than re-running the
    /// handler (the proxy holds the connection, §II-B).
    fn forward_to_cloud(
        &mut self,
        idx: usize,
        request: &HttpRequest,
        arrive: SimTime,
        rec: &mut RunRecorder,
        span: SpanId,
        plan: Option<&CachePlan>,
    ) -> Option<(SimTime, HttpResponse)> {
        let telemetry = self.options.telemetry.clone();
        let policy = self.options.policy.clone();
        let edge_name = format!("edge{idx}");
        let req_size = request.size();
        let deadline = arrive + policy.forward_deadline;
        // `Some` once the cloud has executed: (compute finish, response)
        let mut executed: Option<(SimTime, HttpResponse)> = None;
        let mut t = arrive;
        let mut attempt: u32 = 0;
        loop {
            // scheduled crashes/promotions that elapsed before this attempt
            self.advance_ha(t);
            if let Some((finish, response)) = &executed {
                // only the response was lost: retransmit it. The executed
                // marker and response travel with the replicated
                // connection state (the write itself was shipped to the
                // standby before the ack), so retransmission stalls while
                // the master is down and resumes after promotion instead
                // of re-running the handler.
                let (finish, resp_size) = (*finish, response.size());
                let back = self.wan_down.send(t.max(finish), resp_size);
                rec.add_wan_request_bytes(resp_size);
                let dropped = self
                    .options
                    .faults
                    .as_mut()
                    .is_some_and(|p| p.should_drop("cloud", &edge_name, t));
                if !dropped && !self.cloud_down {
                    self.record_forward_success(idx);
                    return executed.map(|(_, r)| (back, r));
                }
            } else {
                let cloud_arrive = self.wan_up.send(t, req_size);
                rec.add_wan_request_bytes(req_size);
                let dropped = self
                    .options
                    .faults
                    .as_mut()
                    .is_some_and(|p| p.should_drop(&edge_name, "cloud", t));
                // The request is judged against the fault plan even while
                // the master is down so the per-link drop streams stay
                // aligned with a crash-free run; a dead master simply
                // never answers.
                if !dropped && !self.cloud_down {
                    // Cloud-side cache: a hit skips only the handler — the
                    // WAN message sequence (request judged above, response
                    // judged below) is identical to the execute path, so
                    // the fault plan's per-link streams stay aligned with
                    // the cache-off run.
                    let cloud_hit = plan
                        .and_then(|p| self.cloud_cache.lookup(&p.key, &self.cloud_crdts.versions));
                    if let Some(response) = cloud_hit {
                        let serve =
                            telemetry.start_span("serve", Tier::Cloud, Some(span), cloud_arrive);
                        self.last_forward_cycles = CACHE_HIT_CYCLES;
                        let (_, finish) = self
                            .cloud_device
                            .schedule_work(cloud_arrive, CACHE_HIT_CYCLES);
                        telemetry.end_span(serve, finish);
                        let resp_size = response.size();
                        executed = Some((finish, response));
                        let back = self.wan_down.send(finish, resp_size);
                        rec.add_wan_request_bytes(resp_size);
                        let resp_dropped = self
                            .options
                            .faults
                            .as_mut()
                            .is_some_and(|p| p.should_drop("cloud", &edge_name, finish));
                        if !resp_dropped {
                            self.record_forward_success(idx);
                            return executed.map(|(_, r)| (back, r));
                        }
                    } else {
                        match self.cloud.handle(request) {
                            Ok(out) => {
                                let serve = telemetry.start_span(
                                    "serve",
                                    Tier::Cloud,
                                    Some(span),
                                    cloud_arrive,
                                );
                                self.cloud_crdts.absorb_outcome(&out, &self.cloud);
                                if self.options.cache != CachePolicy::Off {
                                    bump_static_global_writes(
                                        &mut self.cloud_crdts.versions,
                                        self.effects.get(&(request.verb, request.path.clone())),
                                    );
                                }
                                self.last_forward_cycles = out.cycles;
                                let (_, finish) =
                                    self.cloud_device.schedule_work(cloud_arrive, out.cycles);
                                telemetry.end_span(serve, finish);
                                if let Some(p) = plan {
                                    let effect_free = out.row_effects.is_empty()
                                        && out.file_writes.is_empty()
                                        && out.global_writes.is_empty()
                                        && p.globals_clean;
                                    if effect_free {
                                        let stamp = self.cloud_crdts.versions.snapshot(&p.reads);
                                        self.cloud_cache.fill(p.key.clone(), &out.response, stamp);
                                    }
                                }
                                // A client-acked forwarded write must
                                // survive failover: ship it to the standby
                                // / durable image before the ack returns.
                                let effectful = !out.row_effects.is_empty()
                                    || !out.file_writes.is_empty()
                                    || !out.global_writes.is_empty();
                                if effectful && self.options.ha.is_some() {
                                    self.replicate_to_standby();
                                    self.persist_durable();
                                }
                                let resp_size = out.response.size();
                                executed = Some((finish, out.response));
                                let back = self.wan_down.send(finish, resp_size);
                                rec.add_wan_request_bytes(resp_size);
                                let resp_dropped =
                                    self.options.faults.as_mut().is_some_and(|p| {
                                        p.should_drop("cloud", &edge_name, finish)
                                    });
                                if !resp_dropped {
                                    self.record_forward_success(idx);
                                    return executed.map(|(_, r)| (back, r));
                                }
                            }
                            Err(_) => {
                                // application error: the WAN worked, no retry
                                self.record_forward_success(idx);
                                return None;
                            }
                        }
                    }
                }
            }
            // this attempt failed in transit: back off, maybe retry
            if attempt >= policy.max_retries {
                rec.timed_out();
                telemetry.event("forward.timeout", Tier::Edge, Some(span), t, &[]);
                self.record_forward_failure(idx, t);
                return None;
            }
            let backoff_us = policy.backoff_base.0 << attempt;
            let jitter_us = self.jitter.below(policy.backoff_base.0.max(1));
            let next = t + SimDuration(backoff_us + jitter_us);
            if next > deadline {
                rec.timed_out();
                telemetry.event("forward.timeout", Tier::Edge, Some(span), next, &[]);
                self.record_forward_failure(idx, next);
                return None;
            }
            attempt += 1;
            rec.retried();
            telemetry.event(
                "forward.retry",
                Tier::Edge,
                Some(span),
                next,
                &[("attempt", Json::from(attempt as u64))],
            );
            t = next;
        }
    }

    /// Execute `workload`, returning measurements.
    pub fn run(&mut self, workload: &Workload) -> RunStats {
        let telemetry = self.options.telemetry.clone();
        // Deterministic virtual clock, as in [`TwoTierSystem::run`].
        let mut rec = RunRecorder::with_clock(&telemetry, Clock::virtual_clock());
        let profiler = request_profiler(&telemetry);
        // Per-edge routing counters resolved once: the registry lookup
        // allocates a metric key, which is too hot for the request loop.
        let routed: Vec<Counter> = telemetry.registry().map_or_else(Vec::new, |reg| {
            (0..self.edges.len())
                .map(|i| reg.counter("edgstr_routed_total", &[("edge", &i.to_string())]))
                .collect()
        });
        for tr in &workload.requests {
            let now = tr.at;
            // background sync ticks that elapsed before this arrival; the
            // tick clock lives on the system so that back-to-back phase
            // runs continue the schedule instead of replaying old ticks
            while !self.options.synchronous_sync && self.next_sync <= now {
                let tick = self.next_sync;
                rec.add_wan_sync_bytes(self.sync_round(tick));
                self.placement_tick(tick);
                self.next_sync += self.options.sync_interval;
            }
            // scheduled crashes / restarts / promotions that elapsed
            self.advance_ha(now);
            // autoscaler: adjust active replica set
            for e in self.edges.iter_mut() {
                e.prune(now);
            }
            if let Some(scaler) = self.options.autoscaler {
                let inflight: usize = self.edges.iter().map(EdgeReplica::connections).sum();
                let desired = scaler.desired(inflight.max(1), self.edges.len());
                for (i, e) in self.edges.iter_mut().enumerate() {
                    let should_be_active = i < desired;
                    if should_be_active && !e.active && !e.is_crashed() {
                        e.active = true;
                        e.device.set_power_state(PowerState::Idle, now);
                        telemetry.event(
                            "replica.unpark",
                            Tier::Edge,
                            None,
                            now,
                            &[("edge", Json::from(i as u64))],
                        );
                    } else if !should_be_active && e.active && e.connections() == 0 {
                        e.active = false;
                        e.device.set_power_state(PowerState::LowPower, now);
                        telemetry.event(
                            "replica.park",
                            Tier::Edge,
                            None,
                            now,
                            &[("edge", Json::from(i as u64))],
                        );
                    }
                }
                let active = self.edges.iter().filter(|e| e.active).count();
                rec.replica_sample(now, active);
            }
            // route to an edge
            let connections: Vec<usize> = self.edges.iter().map(EdgeReplica::connections).collect();
            let active: Vec<bool> = self.edges.iter().map(|e| e.active).collect();
            let Some(idx) = self.balancer.pick(&connections, &active) else {
                rec.fail();
                let span = telemetry.start_span("request", Tier::Client, None, now);
                telemetry.event("request.unroutable", Tier::Client, Some(span), now, &[]);
                telemetry.end_span(span, now);
                continue;
            };
            let span = if telemetry.is_enabled() {
                if let Some(c) = routed.get(idx) {
                    c.inc();
                }
                telemetry.start_span_with(
                    "request",
                    Tier::Client,
                    None,
                    now,
                    vec![
                        ("verb", Json::from(tr.request.verb.as_str())),
                        ("path", Json::from(tr.request.path.as_str())),
                        ("edge", Json::from(idx as u64)),
                    ],
                )
            } else {
                SpanId::NULL
            };
            let req_size = tr.request.size();
            let lan_arrive = self.lan_up.send(now, req_size);
            let up = lan_arrive - now;
            rec.add_lan_bytes(req_size);
            let wake = self.edges[idx].device.wake_penalty();
            let arrive = lan_arrive + wake;
            let key = (tr.request.verb, tr.request.path.clone());
            let placement = self.placement_of(&key);
            let local = placement == Placement::EdgeReplicate;
            let plan = self.cache_plan(&tr.request);
            // A forwarded service may be served from the edge cache only
            // when skipping the WAN round-trip cannot diverge from the
            // cache-off run: no read set, no writes (pure), and no fault
            // plan whose per-link streams the skipped messages would have
            // consumed. Under an explicit `EdgeCacheOnly` placement the
            // edge cache is consulted regardless — bounded staleness is
            // that placement's contract, and hits are still validated
            // against the edge's CRDT read-unit versions.
            let forward_skip_ok = !local
                && self.options.faults.is_none()
                && plan.as_ref().is_some_and(|p| p.reads.is_empty() && p.pure);
            let cache_hit: Option<HttpResponse> =
                if local || forward_skip_ok || placement == Placement::EdgeCacheOnly {
                    plan.as_ref().and_then(|p| {
                        let edge = &mut self.edges[idx];
                        edge.cache.lookup(&p.key, &edge.crdts.versions)
                    })
                } else {
                    None
                };
            // set when this request's digest mismatch exhausts the budget;
            // acted on after the response is recorded
            let mut quarantine_after: Option<usize> = None;
            // controller telemetry for this request: how it was served and
            // the compute it demanded
            let was_cache_hit = cache_hit.is_some();
            let mut served_forwarded = false;
            let mut served_cycles = CACHE_HIT_CYCLES;
            let (done, response, up_total, down_total, wait) = if let Some(response) = cache_hit {
                if self.breaker_open(idx, arrive) {
                    rec.degraded();
                    telemetry.event("degraded.local_serve", Tier::Edge, Some(span), arrive, &[]);
                }
                let serve = telemetry.start_span("serve", Tier::Edge, Some(span), arrive);
                let edge = &mut self.edges[idx];
                let (_, finish) = edge.device.schedule_work(arrive, CACHE_HIT_CYCLES);
                telemetry.end_span(serve, finish);
                let resp_size = response.size();
                let done = self.lan_down.send(finish, resp_size);
                let down = done - finish;
                rec.add_lan_bytes(resp_size);
                edge.inflight.push(done);
                if self.options.synchronous_sync {
                    rec.add_wan_sync_bytes(self.sync_round(finish));
                }
                (done, response, up, down, finish - arrive)
            } else {
                // multi-variant check: shadow-execute first so both
                // variants observe the same pre-request CRDT state
                let shadow_verdict = if local {
                    self.shadow_check(idx, &tr.request)
                } else {
                    None
                };
                let local_result = if local {
                    handle_profiled(&mut self.edges[idx].server, &tr.request, &profiler)
                } else {
                    Err(ServerError::NoSuchRoute {
                        verb: tr.request.verb,
                        path: tr.request.path.clone(),
                    })
                };
                match local_result {
                    Ok(mut out) => {
                        served_cycles = out.cycles;
                        if self.breaker_open(idx, arrive) {
                            // replicated service under an open breaker: still
                            // served locally, deltas queue until the WAN heals
                            rec.degraded();
                            telemetry.event(
                                "degraded.local_serve",
                                Tier::Edge,
                                Some(span),
                                arrive,
                                &[],
                            );
                        }
                        let serve = telemetry.start_span("serve", Tier::Edge, Some(span), arrive);
                        let summary = self.effects.get(&key);
                        let edge = &mut self.edges[idx];
                        edge.crdts.absorb_outcome(&out, &edge.server);
                        if self.options.cache != CachePolicy::Off {
                            bump_static_global_writes(&mut edge.crdts.versions, summary);
                        }
                        // injected faulty VM variant: the state change was
                        // absorbed intact, but the response this replica
                        // serves (and caches) is corrupted
                        if let Some(c) = edge.corruptor.as_mut() {
                            c.corrupt(&mut out.response);
                        }
                        if let Some(p) = &plan {
                            // only a demonstrably effect-free execution may
                            // fill: its re-execution would be a no-op, so a
                            // later hit skips nothing
                            let effect_free = out.row_effects.is_empty()
                                && out.file_writes.is_empty()
                                && out.global_writes.is_empty()
                                && p.globals_clean;
                            if effect_free {
                                let stamp = edge.crdts.versions.snapshot(&p.reads);
                                edge.cache.fill(p.key.clone(), &out.response, stamp);
                            }
                        }
                        let (_, finish) = edge.device.schedule_work(arrive, out.cycles);
                        telemetry.end_span(serve, finish);
                        let resp_size = out.response.size();
                        let done = self.lan_down.send(finish, resp_size);
                        let down = done - finish;
                        rec.add_lan_bytes(resp_size);
                        edge.inflight.push(done);
                        if self.options.synchronous_sync {
                            rec.add_wan_sync_bytes(self.sync_round(finish));
                        }
                        if let Some(shadow_resp) = shadow_verdict {
                            self.ha_stats.shadow_checks += 1;
                            if response_digest(&out.response) != response_digest(&shadow_resp) {
                                self.ha_stats.shadow_mismatches += 1;
                                self.edges[idx].shadow_mismatches += 1;
                                telemetry.event(
                                    "shadow.mismatch",
                                    Tier::System,
                                    Some(span),
                                    finish,
                                    &[("edge", Json::from(idx as u64))],
                                );
                                let budget = self
                                    .options
                                    .quarantine
                                    .as_ref()
                                    .map_or(u32::MAX, |q| q.mismatch_budget);
                                if self.edges[idx].shadow_mismatches > budget {
                                    quarantine_after = Some(idx);
                                }
                            }
                        }
                        (done, out.response, up, down, finish - arrive)
                    }
                    Err(_) => {
                        // failure forwarding: the edge proxies the request to
                        // the cloud master over the WAN (§II-B)
                        rec.forwarded();
                        if self.breaker_open(idx, arrive) {
                            // degraded mode: fail fast without a WAN attempt
                            rec.degraded();
                            rec.fail();
                            telemetry.event(
                                "degraded.fail_fast",
                                Tier::Edge,
                                Some(span),
                                arrive,
                                &[],
                            );
                            telemetry.end_span(span, arrive);
                            continue;
                        }
                        let fwd = telemetry.start_span("forward", Tier::Edge, Some(span), arrive);
                        match self.forward_to_cloud(
                            idx,
                            &tr.request,
                            arrive,
                            &mut rec,
                            fwd,
                            plan.as_ref(),
                        ) {
                            Some((back_at_edge, response)) => {
                                served_forwarded = true;
                                served_cycles = self.last_forward_cycles;
                                telemetry.end_span(fwd, back_at_edge);
                                let resp_size = response.size();
                                let done = self.lan_down.send(back_at_edge, resp_size);
                                let lan_down = done - back_at_edge;
                                rec.add_lan_bytes(resp_size);
                                self.edges[idx].inflight.push(done);
                                // cache-only placement fills pure responses
                                // stamped with the edge-local read-unit
                                // versions, so sync-applied remote writes
                                // invalidate them
                                let fill = forward_skip_ok
                                    || (placement == Placement::EdgeCacheOnly
                                        && plan.as_ref().is_some_and(|p| p.pure));
                                if fill {
                                    if let Some(p) = &plan {
                                        let edge = &mut self.edges[idx];
                                        let stamp = edge.crdts.versions.snapshot(&p.reads);
                                        edge.cache.fill(p.key.clone(), &response, stamp);
                                    }
                                }
                                (done, response, up, lan_down, back_at_edge - arrive)
                            }
                            None => {
                                telemetry.end_span(fwd, arrive);
                                rec.fail();
                                telemetry.end_span(span, arrive);
                                continue;
                            }
                        }
                    }
                }
            };
            let energy = self.mobile.request_energy_j(up_total, down_total, wait);
            rec.complete(&response, tr.at, done, energy);
            telemetry.end_span(span, done);
            if self.controller.is_some() {
                self.observe_placement(
                    &key,
                    idx,
                    was_cache_hit,
                    served_forwarded,
                    served_cycles,
                    wait,
                );
            }
            if let Some(qi) = quarantine_after {
                self.quarantine_edge(qi, done);
            }
        }
        // final flush so replicas converge (fault-free runs need at most
        // two rounds: deltas out, acks back)
        let flush_at = rec.makespan();
        rec.add_wan_sync_bytes(self.sync_round(flush_at));
        rec.add_wan_sync_bytes(self.sync_round(flush_at + self.options.sync_interval));
        let cloud_energy = self.cloud_device.energy_joules(rec.makespan());
        let edge_energy = self
            .edges
            .iter()
            .map(|e| e.device.energy_joules(rec.makespan()))
            .sum();
        rec.finish(cloud_energy, edge_energy)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use edgstr_core::{capture_and_transform, EdgStrConfig};
    use serde_json::json;

    const APP: &str = r#"
        db.query("CREATE TABLE notes (id INT PRIMARY KEY, text TEXT)");
        var written = 0;
        app.post("/note", function (req, res) {
            written = written + 1;
            db.query("INSERT INTO notes VALUES (" + req.body.id + ", '" + req.body.text + "')");
            res.send({ n: written });
        });
        app.get("/count", function (req, res) {
            var rows = db.query("SELECT COUNT(*) FROM notes");
            res.send(rows[0]);
        });
    "#;

    fn transformed() -> edgstr_core::TransformationReport {
        let reqs = vec![
            HttpRequest::post("/note", json!({"id": 900, "text": "warm"}), vec![]),
            HttpRequest::get("/count", json!({})),
        ];
        capture_and_transform(APP, &reqs, &EdgStrConfig::default())
            .unwrap()
            .0
    }

    fn unique_note(i: usize) -> HttpRequest {
        HttpRequest::post("/note", json!({"id": i, "text": format!("t{i}")}), vec![])
    }

    #[test]
    fn two_tier_runs_workload() {
        let mut sys =
            TwoTierSystem::new(APP, DeviceSpec::cloud_server(), LinkSpec::limited_cloud()).unwrap();
        let reqs: Vec<HttpRequest> = (0..20).map(unique_note).collect();
        let wl = Workload::constant_rate(&reqs, 10.0, 20);
        let stats = sys.run(&wl);
        assert_eq!(stats.completed, 20);
        assert!(stats.latency.mean().unwrap() > SimDuration::from_millis(100));
        assert!(stats.client_energy_j > 0.0);
        assert!(stats.wan_request_bytes > 0);
    }

    #[test]
    fn three_tier_serves_locally_and_syncs() {
        let report = transformed();
        let mut sys = ThreeTierSystem::deploy(
            APP,
            &report,
            &[DeviceSpec::rpi4(), DeviceSpec::rpi3()],
            ThreeTierOptions::default(),
        )
        .unwrap();
        let reqs: Vec<HttpRequest> = (0..20).map(unique_note).collect();
        let wl = Workload::constant_rate(&reqs, 10.0, 20);
        let stats = sys.run(&wl);
        assert_eq!(stats.completed, 20);
        assert_eq!(stats.forwarded, 0, "replicated service must run locally");
        assert!(
            stats.wan_sync_bytes > 0,
            "background sync must ship changes"
        );
        assert_eq!(stats.wan_request_bytes, 0, "no request traffic on the WAN");
        // all replicas and cloud converge on the notes table
        let cloud_rows = sys.cloud_crdts.tables["notes"].len();
        for e in &sys.edges {
            assert_eq!(e.crdts.tables["notes"].len(), cloud_rows);
        }
        assert!(cloud_rows >= 20);
    }

    #[test]
    fn cache_serves_repeated_reads_and_invalidates_on_write() {
        let report = transformed();
        let mut sys = ThreeTierSystem::deploy(
            APP,
            &report,
            &[DeviceSpec::rpi4()],
            ThreeTierOptions {
                cache: CachePolicy::All,
                ..ThreeTierOptions::default()
            },
        )
        .unwrap();
        let count = HttpRequest::get("/count", json!({}));
        let reqs = vec![
            count.clone(),
            count.clone(),
            count.clone(),
            unique_note(1),
            count.clone(),
            count.clone(),
        ];
        let wl = Workload::constant_rate(&reqs, 10.0, reqs.len());
        let stats = sys.run(&wl);
        assert_eq!(stats.completed, reqs.len());
        let cs = sys.cache_stats();
        // gets 2+3 and 5 hit; the write invalidates the entry before 4
        assert_eq!(cs.hits, 3);
        assert_eq!(cs.invalidations, 1);
        assert!(cs.misses >= 2);
    }

    #[test]
    fn cached_responses_are_bit_identical_to_uncached() {
        let report = transformed();
        let mut reqs = Vec::new();
        for i in 0..10 {
            reqs.push(unique_note(i));
            reqs.push(HttpRequest::get("/count", json!({})));
            reqs.push(HttpRequest::get("/count", json!({})));
        }
        let wl = Workload::constant_rate(&reqs, 40.0, reqs.len());
        let run = |policy: CachePolicy| {
            let mut sys = ThreeTierSystem::deploy(
                APP,
                &report,
                &[DeviceSpec::rpi4()],
                ThreeTierOptions {
                    cache: policy,
                    ..ThreeTierOptions::default()
                },
            )
            .unwrap();
            let stats = sys.run(&wl);
            (stats, sys.cache_stats())
        };
        let (off, off_cs) = run(CachePolicy::Off);
        let (all, all_cs) = run(CachePolicy::All);
        assert_eq!(off_cs.hits + off_cs.misses, 0, "Off must not touch caches");
        assert!(all_cs.hits > 0, "repeated reads must hit");
        assert_eq!(off.completed, all.completed);
        assert_eq!(
            off.response_digest, all.response_digest,
            "cached responses must be bit-identical to uncached execution"
        );
    }

    #[test]
    fn three_tier_beats_two_tier_on_slow_wan() {
        let report = transformed();
        let slow_wan = LinkSpec::from_kbps_ms(200.0, 800.0);
        let mut two = TwoTierSystem::new(APP, DeviceSpec::cloud_server(), slow_wan).unwrap();
        let reqs: Vec<HttpRequest> = (0..30).map(unique_note).collect();
        let wl = Workload::constant_rate(&reqs, 20.0, 30);
        let two_stats = two.run(&wl);
        let mut three = ThreeTierSystem::deploy(
            APP,
            &report,
            &[DeviceSpec::rpi4()],
            ThreeTierOptions {
                wan: slow_wan,
                ..Default::default()
            },
        )
        .unwrap();
        let three_stats = three.run(&wl);
        assert!(
            three_stats.latency.mean().unwrap() < two_stats.latency.mean().unwrap(),
            "edge must win under a degraded WAN: {:?} vs {:?}",
            three_stats.latency.mean(),
            two_stats.latency.mean()
        );
    }

    #[test]
    fn failure_forwarding_reaches_cloud() {
        let report = transformed();
        let mut sys = ThreeTierSystem::deploy(
            APP,
            &report,
            &[DeviceSpec::rpi4()],
            ThreeTierOptions::default(),
        )
        .unwrap();
        // break the edge's database host calls
        sys.edges[0]
            .server
            .inject_failures(vec!["db.query".to_string()]);
        let reqs: Vec<HttpRequest> = (0..5).map(unique_note).collect();
        let wl = Workload::constant_rate(&reqs, 5.0, 5);
        let stats = sys.run(&wl);
        assert_eq!(stats.completed, 5);
        assert_eq!(stats.forwarded, 5, "all requests must be forwarded");
        assert!(stats.wan_request_bytes > 0);
        // the cloud applied the writes
        assert!(sys.cloud_crdts.tables["notes"].len() >= 5);
    }

    #[test]
    fn autoscaler_parks_replicas_under_light_load() {
        let report = transformed();
        let mut sys = ThreeTierSystem::deploy(
            APP,
            &report,
            &[
                DeviceSpec::rpi3(),
                DeviceSpec::rpi3(),
                DeviceSpec::rpi4(),
                DeviceSpec::rpi4(),
            ],
            ThreeTierOptions {
                autoscaler: Some(Autoscaler::default()),
                ..Default::default()
            },
        )
        .unwrap();
        // light load: 2 rps
        let reqs: Vec<HttpRequest> = (0..40).map(unique_note).collect();
        let wl = Workload::constant_rate(&reqs, 2.0, 40);
        let stats = sys.run(&wl);
        assert_eq!(stats.completed, 40);
        let min_active = stats.replica_samples.iter().map(|(_, n)| *n).min().unwrap();
        assert_eq!(min_active, 1, "light load should park down to one replica");
        // parked replicas draw less energy than a hypothetical always-on set
        assert!(stats.edge_energy_j > 0.0);
    }

    #[test]
    fn workload_generators_produce_expected_counts() {
        let reqs = vec![HttpRequest::get("/count", json!({}))];
        let wl = Workload::constant_rate(&reqs, 100.0, 50);
        assert_eq!(wl.len(), 50);
        assert!(wl.requests[49].at > wl.requests[0].at);
        let wl = Workload::phases(&reqs, &[(10.0, 1.0), (50.0, 1.0)]);
        assert!(wl.len() >= 58 && wl.len() <= 62, "got {}", wl.len());
    }

    #[test]
    fn workload_shift_moves_every_arrival() {
        let reqs = vec![HttpRequest::get("/count", json!({}))];
        let wl = Workload::constant_rate(&reqs, 10.0, 5)
            .shifted(edgstr_sim::SimTime::from_secs_f64(100.0));
        assert!(wl.requests[0].at >= edgstr_sim::SimTime::from_secs_f64(100.0));
        assert!(wl.requests[4].at > wl.requests[0].at);
    }

    #[test]
    fn mobile_power_integrates_components() {
        let m = MobilePower::default();
        let j = m.request_energy_j(
            SimDuration::from_secs(2),
            SimDuration::from_secs(1),
            SimDuration::from_secs(10),
        );
        let expected = m.tx_w * 2.0 + m.rx_w * 1.0 + m.wait_w * 10.0;
        assert!((j - expected).abs() < 1e-9);
    }

    /// Acceptance: a cloud + 2-edge cluster under 20% WAN loss converges
    /// within a bounded number of sync rounds, deterministically from the
    /// fault seed, because ack-driven endpoints regenerate dropped deltas.
    #[test]
    fn lossy_cluster_converges_within_bounded_rounds() {
        let report = transformed();
        let mut faults = FaultPlan::new(0x2025_0805);
        faults.set_default_loss(edgstr_net::LossModel::uniform(0.20));
        let mut sys = ThreeTierSystem::deploy(
            APP,
            &report,
            &[DeviceSpec::rpi4(), DeviceSpec::rpi3()],
            ThreeTierOptions {
                faults: Some(faults),
                ..Default::default()
            },
        )
        .unwrap();
        let reqs: Vec<HttpRequest> = (0..30).map(unique_note).collect();
        let wl = Workload::constant_rate(&reqs, 10.0, 30);
        let stats = sys.run(&wl);
        assert_eq!(stats.completed, 30, "replicated writes serve locally");
        let (rounds, _) = sys
            .sync_until_converged(stats.makespan, 50)
            .expect("cluster must converge within 50 rounds at 20% loss");
        assert!(rounds <= 50);
        let cloud_rows = sys.cloud_crdts.tables["notes"].to_json();
        for e in &sys.edges {
            assert_eq!(e.crdts.tables["notes"].to_json(), cloud_rows);
        }
        assert!(sys.cloud_crdts.tables["notes"].len() >= 30);
    }

    /// Pre-fix ablation at system level: the same lossy cluster with
    /// optimistic clock advancement never recovers the dropped deltas.
    #[test]
    fn optimistic_sync_diverges_under_loss() {
        let report = transformed();
        let mut faults = FaultPlan::new(0x2025_0805);
        faults.set_default_loss(edgstr_net::LossModel::uniform(0.20));
        let mut sys = ThreeTierSystem::deploy(
            APP,
            &report,
            &[DeviceSpec::rpi4(), DeviceSpec::rpi3()],
            ThreeTierOptions {
                faults: Some(faults),
                sync_advance: AdvanceMode::Optimistic,
                ..Default::default()
            },
        )
        .unwrap();
        let reqs: Vec<HttpRequest> = (0..30).map(unique_note).collect();
        let wl = Workload::constant_rate(&reqs, 10.0, 30);
        let stats = sys.run(&wl);
        assert_eq!(
            sys.sync_until_converged(stats.makespan, 50),
            None,
            "optimistic advancement must leave the cluster diverged"
        );
    }

    /// Lossy failure forwarding: retransmission with backoff recovers
    /// dropped WAN messages, and the retry counter records the cost.
    #[test]
    fn forwarding_retries_recover_wan_loss() {
        let report = transformed();
        let mut faults = FaultPlan::new(17);
        faults.set_default_loss(edgstr_net::LossModel::uniform(0.30));
        let mut sys = ThreeTierSystem::deploy(
            APP,
            &report,
            &[DeviceSpec::rpi4()],
            ThreeTierOptions {
                faults: Some(faults),
                policy: FaultPolicy {
                    max_retries: 6,
                    ..Default::default()
                },
                ..Default::default()
            },
        )
        .unwrap();
        // break the edge's database so every request forwards over the WAN
        sys.edges[0]
            .server
            .inject_failures(vec!["db.query".to_string()]);
        let reqs: Vec<HttpRequest> = (0..10).map(unique_note).collect();
        let wl = Workload::constant_rate(&reqs, 5.0, 10);
        let stats = sys.run(&wl);
        assert_eq!(stats.forwarded, 10);
        assert!(stats.retries > 0, "30% loss must force retransmissions");
        assert_eq!(stats.completed + stats.failed, 10);
        assert!(
            stats.completed >= 8,
            "retries should recover most requests, got {}",
            stats.completed
        );
    }

    /// A full partition makes forwarding time out; after enough
    /// consecutive failures the circuit breaker opens and later requests
    /// fail fast in degraded mode without touching the WAN.
    #[test]
    fn breaker_opens_under_partition_and_degrades() {
        let report = transformed();
        let mut faults = FaultPlan::new(23);
        faults.partition(
            "edge0",
            "cloud",
            SimTime::ZERO,
            SimTime::from_secs_f64(3600.0),
        );
        let mut sys = ThreeTierSystem::deploy(
            APP,
            &report,
            &[DeviceSpec::rpi4()],
            ThreeTierOptions {
                faults: Some(faults),
                ..Default::default()
            },
        )
        .unwrap();
        sys.edges[0]
            .server
            .inject_failures(vec!["db.query".to_string()]);
        let reqs: Vec<HttpRequest> = (0..10).map(unique_note).collect();
        let wl = Workload::constant_rate(&reqs, 5.0, 10);
        let stats = sys.run(&wl);
        assert_eq!(stats.failed, 10, "nothing completes across a partition");
        assert!(
            stats.timed_out >= sys.options.policy.breaker_threshold as usize,
            "enough timeouts to trip the breaker, got {}",
            stats.timed_out
        );
        assert!(
            stats.degraded > 0,
            "post-trip requests must fail fast in degraded mode"
        );
        assert!(
            stats.timed_out + stats.degraded == 10,
            "every failure is either a timeout or a fast-fail: {} + {}",
            stats.timed_out,
            stats.degraded
        );
    }

    /// Degraded mode still serves replicated requests locally while the
    /// breaker is open, queuing deltas until the WAN heals.
    #[test]
    fn replicated_requests_serve_locally_while_breaker_open() {
        let report = transformed();
        let mut faults = FaultPlan::new(29);
        faults.partition(
            "edge0",
            "cloud",
            SimTime::ZERO,
            SimTime::from_secs_f64(3600.0),
        );
        let mut sys = ThreeTierSystem::deploy(
            APP,
            &report,
            &[DeviceSpec::rpi4()],
            ThreeTierOptions {
                faults: Some(faults),
                ..Default::default()
            },
        )
        .unwrap();
        // trip the breaker through the public failure path: a broken edge
        // db forces forwards, and the partition times them out
        sys.edges[0]
            .server
            .inject_failures(vec!["db.query".to_string()]);
        let trip: Vec<HttpRequest> = (100..103).map(unique_note).collect();
        let stats = sys.run(&Workload::constant_rate(&trip, 2.0, 3));
        assert!(stats.timed_out >= 3);
        // heal the edge server; replicated requests now serve locally in
        // degraded mode while the breaker is still open
        sys.edges[0].server.inject_failures(Vec::new());
        let reqs: Vec<HttpRequest> = (0..5).map(unique_note).collect();
        let stats = sys.run(&Workload::constant_rate(&reqs, 5.0, 5));
        assert_eq!(stats.completed, 5, "local service continues degraded");
        assert!(stats.degraded >= 1, "degraded local serves are counted");
        // deltas queued at the edge: the cloud is still missing them
        assert!(!sys.converged());
    }

    /// Crash/restart: a restarted replica re-initializes from the cloud
    /// master under a fresh actor id and rejoins sync cleanly.
    #[test]
    fn crashed_edge_rejoins_from_cloud_master() {
        let report = transformed();
        let mut sys = ThreeTierSystem::deploy(
            APP,
            &report,
            &[DeviceSpec::rpi4(), DeviceSpec::rpi3()],
            ThreeTierOptions::default(),
        )
        .unwrap();
        let reqs: Vec<HttpRequest> = (0..20).map(unique_note).collect();
        let stats = sys.run(&Workload::constant_rate(&reqs, 10.0, 20));
        assert_eq!(stats.completed, 20);
        let old_actor = sys.edges[0].crdts.actor();

        sys.crash_edge(0);
        assert!(sys.edges[0].is_crashed());
        // the survivor keeps serving while edge 0 is down
        let more: Vec<HttpRequest> = (200..210).map(unique_note).collect();
        let stats = sys.run(&Workload::constant_rate(&more, 10.0, 10).shifted(stats.makespan));
        assert_eq!(stats.completed, 10);

        sys.restart_edge(0).unwrap();
        assert_ne!(
            sys.edges[0].crdts.actor(),
            old_actor,
            "restart must not reuse the crashed incarnation's actor id"
        );
        // fresh replica starts from the snapshot, then catches up fully
        let (rounds, _) = sys
            .sync_until_converged(stats.makespan, 10)
            .expect("restarted replica must converge");
        assert!(rounds <= 10);
        assert_eq!(
            sys.edges[0].crdts.tables["notes"].to_json(),
            sys.cloud_crdts.tables["notes"].to_json()
        );
        assert!(sys.edges[0].crdts.tables["notes"].len() >= 30);
    }

    /// Steady-state compaction: under continuous writes with periodic
    /// sync, the resident change history on the cloud master stays bounded
    /// by the sync/ack lag instead of growing with the write count, while
    /// the cluster still converges to the full table.
    #[test]
    fn steady_state_sync_keeps_resident_history_bounded() {
        let peak_history = |compaction: bool| {
            let report = transformed();
            let mut sys = ThreeTierSystem::deploy(
                APP,
                &report,
                &[DeviceSpec::rpi4(), DeviceSpec::rpi3()],
                ThreeTierOptions {
                    compaction,
                    ..Default::default()
                },
            )
            .unwrap();
            let mut peak = 0usize;
            let mut t = SimTime::ZERO;
            for batch in 0..20usize {
                let reqs: Vec<HttpRequest> =
                    (batch * 10..batch * 10 + 10).map(unique_note).collect();
                let stats = sys.run(&Workload::constant_rate(&reqs, 20.0, 10).shifted(t));
                t = stats.makespan;
                peak = peak.max(sys.cloud_crdts.history_len());
            }
            sys.sync_until_converged(t, 10)
                .expect("steady-state cluster must converge");
            assert!(sys.cloud_crdts.tables["notes"].len() >= 200);
            peak
        };
        let bounded = peak_history(true);
        let unbounded = peak_history(false);
        assert!(
            unbounded >= 200,
            "without compaction history grows with the write count: {unbounded}"
        );
        assert!(
            bounded * 4 < unbounded,
            "compaction must bound resident history: peak {bounded} vs {unbounded}"
        );
    }

    #[test]
    fn two_tier_failed_requests_counted_not_recorded() {
        let mut sys =
            TwoTierSystem::new(APP, DeviceSpec::cloud_server(), LinkSpec::limited_cloud()).unwrap();
        // duplicate primary keys: every second insert fails at the server
        let req = unique_note(1);
        let wl = Workload::constant_rate(std::slice::from_ref(&req), 10.0, 3);
        let stats = sys.run(&wl);
        assert_eq!(stats.completed, 1);
        assert_eq!(stats.failed, 2);
        assert_eq!(stats.latency.len(), 1);
    }

    /// After the cooldown the breaker is half-open: the next forward is a
    /// probe, and its success closes the breaker immediately.
    #[test]
    fn breaker_half_open_probe_closes_on_success() {
        let report = transformed();
        // partition only during [0, 20s): the breaker trips inside the
        // window, and a post-window probe finds the WAN healed
        let mut faults = FaultPlan::new(31);
        faults.partition(
            "edge0",
            "cloud",
            SimTime::ZERO,
            SimTime::from_secs_f64(20.0),
        );
        let mut sys = ThreeTierSystem::deploy(
            APP,
            &report,
            &[DeviceSpec::rpi4()],
            ThreeTierOptions {
                faults: Some(faults),
                ..Default::default()
            },
        )
        .unwrap();
        sys.edges[0]
            .server
            .inject_failures(vec!["db.query".to_string()]);
        let trip: Vec<HttpRequest> = (0..4).map(unique_note).collect();
        let stats = sys.run(&Workload::constant_rate(&trip, 2.0, 4));
        assert!(
            sys.breaker_open(0, stats.makespan),
            "timeouts across the partition must open the breaker"
        );
        // well past the partition and the cooldown: half-open probes
        // forward again, succeed, and close the breaker
        let probe: Vec<HttpRequest> = (50..53).map(unique_note).collect();
        let stats =
            sys.run(&Workload::constant_rate(&probe, 2.0, 3).shifted(SimTime::from_secs_f64(25.0)));
        assert_eq!(stats.completed, 3, "probes must get through a healed WAN");
        assert!(!sys.breaker_open(0, stats.makespan));
    }

    /// Satellite fix: a restarted edge gets a fresh breaker — the open
    /// state belonged to the dead incarnation.
    #[test]
    fn restart_edge_resets_breaker_state() {
        let report = transformed();
        let mut faults = FaultPlan::new(37);
        faults.partition(
            "edge0",
            "cloud",
            SimTime::ZERO,
            SimTime::from_secs_f64(3600.0),
        );
        let mut sys = ThreeTierSystem::deploy(
            APP,
            &report,
            &[DeviceSpec::rpi4()],
            ThreeTierOptions {
                faults: Some(faults),
                ..Default::default()
            },
        )
        .unwrap();
        sys.edges[0]
            .server
            .inject_failures(vec!["db.query".to_string()]);
        let trip: Vec<HttpRequest> = (0..4).map(unique_note).collect();
        let stats = sys.run(&Workload::constant_rate(&trip, 2.0, 4));
        assert!(sys.breaker_open(0, stats.makespan));
        sys.crash_edge(0);
        sys.restart_edge(0).unwrap();
        assert!(
            !sys.breaker_open(0, stats.makespan),
            "a restarted process must not inherit the dead incarnation's breaker"
        );
    }

    /// Satellite: a scheduled crash + restart landing between sync ticks —
    /// with compaction folding history every round — must neither deadlock
    /// nor double-apply deltas, and the cluster reconverges.
    #[test]
    fn scheduled_restart_mid_sync_rounds_converges_without_double_apply() {
        let report = transformed();
        let mut crashes = CrashPlan::new(5);
        crashes.crash(
            "edge0",
            SimTime::from_secs_f64(1.5),
            SimTime::from_secs_f64(3.5),
        );
        let mut sys = ThreeTierSystem::deploy(
            APP,
            &report,
            &[DeviceSpec::rpi4(), DeviceSpec::rpi3()],
            ThreeTierOptions {
                crashes: Some(crashes),
                ..Default::default()
            },
        )
        .unwrap();
        let reqs: Vec<HttpRequest> = (0..30).map(unique_note).collect();
        let stats = sys.run(&Workload::constant_rate(&reqs, 10.0, 30));
        let hs = sys.ha_stats();
        assert_eq!(hs.edge_crashes, 1);
        assert_eq!(hs.edge_restarts, 1);
        let (rounds, _) = sys
            .sync_until_converged(stats.makespan, 20)
            .expect("cluster must reconverge after the scheduled restart");
        assert!(rounds <= 20);
        let cloud_rows = sys.cloud_crdts.tables["notes"].to_json();
        for e in &sys.edges {
            assert_eq!(e.crdts.tables["notes"].to_json(), cloud_rows);
        }
        // edge0's unsynced pre-crash writes died with the process; nothing
        // may be applied twice (every surviving id appears exactly once —
        // the PK table would otherwise conflict) and the survivor's share
        // plus everything synced before the crash is present
        let n = sys.cloud_crdts.tables["notes"].len();
        assert!((20..=30).contains(&n), "unexpected row count {n}");
    }

    /// Tentpole: master crash → deterministic standby promotion →
    /// reconvergence, with every acknowledged write surviving.
    #[test]
    fn master_failover_promotes_standby_and_loses_no_acked_write() {
        let report = transformed();
        let mut crashes = CrashPlan::new(9);
        crashes.crash(
            "cloud",
            SimTime::from_secs_f64(2.0),
            SimTime::from_secs_f64(5.0),
        );
        let mut sys = ThreeTierSystem::deploy(
            APP,
            &report,
            &[DeviceSpec::rpi4(), DeviceSpec::rpi3()],
            ThreeTierOptions {
                crashes: Some(crashes),
                ha: Some(HaPolicy::default()),
                ..Default::default()
            },
        )
        .unwrap();
        let reqs: Vec<HttpRequest> = (0..40).map(unique_note).collect();
        let stats = sys.run(&Workload::constant_rate(&reqs, 10.0, 40));
        assert_eq!(
            stats.completed, 40,
            "replicated writes serve through the outage"
        );
        let (rounds, _) = sys
            .sync_until_converged(stats.makespan.max(SimTime::from_secs_f64(6.0)), 30)
            .expect("cluster must reconverge on the promoted master");
        assert!(rounds <= 30);
        assert!(!sys.master_down());
        let hs = sys.ha_stats();
        assert_eq!(hs.master_crashes, 1);
        assert_eq!(hs.failovers, 1);
        assert_eq!(
            hs.recovery_times(),
            vec![SimDuration::from_millis(500)],
            "promotion happens exactly at crash + detect_delay"
        );
        // zero acked-write loss: the promoted master's final clock covers
        // everything any replica was ever told was acknowledged
        let final_clock = sys.cloud_crdts.clock();
        assert!(!hs.acked_snapshots.is_empty());
        for snap in &hs.acked_snapshots {
            assert!(final_clock.dominates(snap), "acked write lost in failover");
        }
        assert!(sys.cloud_crdts.tables["notes"].len() >= 40);
    }

    /// Forwarded writes replicate to the standby before the client sees
    /// the ack, so a master crash right after cannot lose them.
    #[test]
    fn forwarded_writes_survive_master_failover() {
        let report = transformed();
        let mut crashes = CrashPlan::new(13);
        crashes.kill("cloud", SimTime::from_secs_f64(2.0));
        let mut sys = ThreeTierSystem::deploy(
            APP,
            &report,
            &[DeviceSpec::rpi4()],
            ThreeTierOptions {
                crashes: Some(crashes),
                ha: Some(HaPolicy::default()),
                policy: FaultPolicy {
                    max_retries: 8,
                    ..Default::default()
                },
                ..Default::default()
            },
        )
        .unwrap();
        // break the edge database so every request forwards over the WAN
        sys.edges[0]
            .server
            .inject_failures(vec!["db.query".to_string()]);
        let reqs: Vec<HttpRequest> = (0..20).map(unique_note).collect();
        let stats = sys.run(&Workload::constant_rate(&reqs, 5.0, 20));
        assert_eq!(
            stats.completed, 20,
            "retries must ride out the detection window"
        );
        assert_eq!(sys.ha_stats().failovers, 1);
        assert!(!sys.master_down());
        // every acked forward is on the post-failover master
        assert!(
            sys.cloud_crdts.tables["notes"].len() >= stats.completed,
            "an acked forwarded write vanished in the failover"
        );
    }

    /// Multi-variant check: the injected bit-flipping variant is caught
    /// within its mismatch budget and quarantined; healthy replicas are
    /// never falsely quarantined.
    #[test]
    fn quarantine_catches_faulty_variant_without_false_positives() {
        let report = transformed();
        let policy = QuarantinePolicy {
            check_fraction: 1.0,
            mismatch_budget: 2,
            seed: 7,
        };
        let reqs: Vec<HttpRequest> = (0..40).map(unique_note).collect();
        let wl = Workload::constant_rate(&reqs, 10.0, 40);

        let mut sys = ThreeTierSystem::deploy(
            APP,
            &report,
            &[DeviceSpec::rpi4(), DeviceSpec::rpi3()],
            ThreeTierOptions {
                quarantine: Some(policy.clone()),
                ..Default::default()
            },
        )
        .unwrap();
        sys.inject_faulty_variant(0, 0.9, 0xBAD);
        sys.run(&wl);
        let hs = sys.ha_stats();
        assert!(hs.shadow_checks > 0);
        assert!(
            hs.shadow_mismatches > u64::from(policy.mismatch_budget),
            "the faulty variant must burn through its budget"
        );
        assert!(
            !hs.quarantines.is_empty(),
            "faulty replica must be quarantined"
        );
        assert!(
            hs.quarantines.iter().all(|(i, _)| *i == 0),
            "only the faulty replica may be quarantined: {:?}",
            hs.quarantines
        );
        // the replacement VM is healthy: the injected fault died with the
        // quarantined incarnation
        assert_eq!(sys.corrupted_responses(0), 0);

        // control: the same cluster with no injected fault never
        // quarantines — compiled and tree-walking variants are
        // bit-identical on every checked request
        let mut clean = ThreeTierSystem::deploy(
            APP,
            &report,
            &[DeviceSpec::rpi4(), DeviceSpec::rpi3()],
            ThreeTierOptions {
                quarantine: Some(policy),
                ..Default::default()
            },
        )
        .unwrap();
        clean.run(&wl);
        let hs = clean.ha_stats();
        assert!(hs.shadow_checks > 0);
        assert_eq!(
            hs.shadow_mismatches, 0,
            "healthy replicas must never mismatch"
        );
        assert!(hs.quarantines.is_empty(), "zero false quarantines required");
    }

    // --- tier placement controller ---

    use crate::tiering::PlacementScript;
    use edgstr_placement::PlacementPolicy;

    fn note_key() -> (Verb, String) {
        (Verb::Post, "/note".to_string())
    }

    /// A policy that demotes the write service on its first closed window:
    /// any sync byte exceeds the ceiling, confirmation is immediate and
    /// the cooldown is zero.
    fn demote_fast_policy() -> PlacementPolicy {
        PlacementPolicy {
            min_requests: 1,
            confirm_windows: 1,
            cooldown: SimDuration::from_secs(0),
            sync_bytes_per_write_ceiling: 1.0,
            ..PlacementPolicy::default()
        }
    }

    #[test]
    fn pinned_cloud_forwards_everything() {
        let report = transformed();
        let mut sys = ThreeTierSystem::deploy(
            APP,
            &report,
            &[DeviceSpec::rpi4()],
            ThreeTierOptions {
                placement: PlacementMode::Pinned(Placement::CloudPin),
                ..Default::default()
            },
        )
        .unwrap();
        let reqs: Vec<HttpRequest> = (0..20).map(unique_note).collect();
        let wl = Workload::constant_rate(&reqs, 10.0, 20);
        let stats = sys.run(&wl);
        assert_eq!(stats.completed, 20);
        assert_eq!(stats.forwarded, 20, "cloud-pinned services must forward");
        assert!(stats.wan_request_bytes > 0);
        assert_eq!(sys.placement_of(&note_key()), Placement::CloudPin);
        assert_eq!(sys.placement_stats().promotes, 0);
        assert_eq!(sys.placement_stats().demotes, 0);
    }

    #[test]
    fn cache_only_placement_serves_pure_reads_from_edge_cache() {
        let report = transformed();
        let deploy = |placement| {
            ThreeTierSystem::deploy(
                APP,
                &report,
                &[DeviceSpec::rpi4()],
                ThreeTierOptions {
                    placement,
                    cache: CachePolicy::All,
                    ..Default::default()
                },
            )
            .unwrap()
        };
        let mut reqs = vec![unique_note(1)];
        for _ in 0..10 {
            reqs.push(HttpRequest::get("/count", json!({})));
        }
        let wl = Workload::constant_rate(&reqs, 20.0, reqs.len());
        let mut sys = deploy(PlacementMode::Pinned(Placement::EdgeCacheOnly));
        let stats = sys.run(&wl);
        assert_eq!(stats.completed, 11);
        // the POST and the first GET forward; every later GET is an edge
        // cache hit validated against the edge's CRDT read-unit versions
        assert_eq!(stats.forwarded, 2);
        assert!(sys.cache_stats().hits >= 9);
        // no write lands between the GETs, so the cached responses are
        // bit-identical to a cloud-pinned run
        let mut pinned = deploy(PlacementMode::Pinned(Placement::CloudPin));
        let pinned_stats = pinned.run(&wl);
        assert_eq!(stats.response_digest, pinned_stats.response_digest);
    }

    #[test]
    fn adaptive_demotes_chatty_write_service_without_losing_writes() {
        let report = transformed();
        let mut sys = ThreeTierSystem::deploy(
            APP,
            &report,
            &[DeviceSpec::rpi4(), DeviceSpec::rpi3()],
            ThreeTierOptions {
                placement: PlacementMode::Adaptive(demote_fast_policy()),
                ..Default::default()
            },
        )
        .unwrap();
        let reqs: Vec<HttpRequest> = (0..40).map(unique_note).collect();
        let wl = Workload::constant_rate(&reqs, 10.0, 40);
        let stats = sys.run(&wl);
        assert_eq!(stats.completed, 40);
        assert_eq!(
            sys.placement_of(&note_key()),
            Placement::CloudPin,
            "a write service whose sync traffic exceeds the ceiling demotes"
        );
        let ps = sys.placement_stats();
        assert!(ps.demotes >= 1);
        assert!(!ps.transitions.is_empty());
        assert!(stats.forwarded > 0, "post-demotion writes must forward");
        // zero acked-write loss: after convergence the master dominates
        // every transition-time acked prefix and holds every write
        sys.sync_until_converged(stats.makespan, 50)
            .expect("cluster must converge");
        let master = sys.cloud_crdts.clock();
        for snap in &sys.placement_stats().acked_snapshots {
            assert!(master.dominates(snap), "acked write lost across demotion");
        }
        // 40 run inserts plus the capture warm-up row
        assert_eq!(sys.cloud_crdts.tables["notes"].len(), 41);
    }

    #[test]
    fn scripted_round_trip_demotes_then_promotes_without_losing_writes() {
        let report = transformed();
        let script = PlacementScript {
            pinned: None,
            decisions: vec![
                ScriptedDecision {
                    at: SimTime(1_000_000),
                    service: note_key(),
                    to: Placement::CloudPin,
                },
                ScriptedDecision {
                    at: SimTime(3_000_000),
                    service: note_key(),
                    to: Placement::EdgeReplicate,
                },
            ],
        };
        let mut sys = ThreeTierSystem::deploy(
            APP,
            &report,
            &[DeviceSpec::rpi4(), DeviceSpec::rpi3()],
            ThreeTierOptions {
                placement: PlacementMode::Scripted(script),
                ..Default::default()
            },
        )
        .unwrap();
        let reqs: Vec<HttpRequest> = (0..60).map(unique_note).collect();
        let wl = Workload::constant_rate(&reqs, 10.0, 60);
        let stats = sys.run(&wl);
        assert_eq!(stats.completed, 60);
        let ps = sys.placement_stats();
        assert_eq!(ps.demotes, 1);
        assert_eq!(ps.promotes, 1);
        assert_eq!(ps.transitions.len(), 2);
        assert!(
            stats.forwarded > 0 && stats.forwarded < 60,
            "only the cloud-pinned phase forwards, got {}",
            stats.forwarded
        );
        assert_eq!(sys.placement_of(&note_key()), Placement::EdgeReplicate);
        sys.sync_until_converged(stats.makespan, 50)
            .expect("cluster must converge");
        let master = sys.cloud_crdts.clock();
        for snap in &sys.placement_stats().acked_snapshots {
            assert!(master.dominates(snap), "acked write lost in round trip");
        }
        // 60 run inserts plus the capture warm-up row
        assert_eq!(sys.cloud_crdts.tables["notes"].len(), 61);
    }

    /// The E18 digest-parity contract: replaying an adaptive run's
    /// recorded decision schedule reproduces the run bit-for-bit.
    #[test]
    fn adaptive_run_replays_to_identical_digest() {
        let report = transformed();
        let mut reqs: Vec<HttpRequest> = (0..40).map(unique_note).collect();
        for _ in 0..10 {
            reqs.push(HttpRequest::get("/count", json!({})));
        }
        let wl = Workload::constant_rate(&reqs, 10.0, reqs.len());
        let deploy = |placement| {
            ThreeTierSystem::deploy(
                APP,
                &report,
                &[DeviceSpec::rpi4(), DeviceSpec::rpi3()],
                ThreeTierOptions {
                    placement,
                    ..Default::default()
                },
            )
            .unwrap()
        };
        let mut adaptive = deploy(PlacementMode::Adaptive(demote_fast_policy()));
        let a = adaptive.run(&wl);
        let schedule = adaptive.decision_schedule();
        assert!(!schedule.is_empty(), "the policy must have decided");
        let mut replay = deploy(PlacementMode::Scripted(PlacementScript {
            pinned: None,
            decisions: schedule,
        }));
        let r = replay.run(&wl);
        assert_eq!(a.response_digest, r.response_digest);
        assert_eq!(a.completed, r.completed);
        assert_eq!(a.forwarded, r.forwarded);
        assert_eq!(a.makespan, r.makespan);
        assert_eq!(
            adaptive.placement_stats().transitions.len(),
            replay.placement_stats().transitions.len()
        );
    }

    #[test]
    fn placement_telemetry_exports_gauges_and_events() {
        let report = transformed();
        let telemetry = Telemetry::recording();
        let mut sys = ThreeTierSystem::deploy(
            APP,
            &report,
            &[DeviceSpec::rpi4()],
            ThreeTierOptions {
                placement: PlacementMode::Adaptive(demote_fast_policy()),
                telemetry: telemetry.clone(),
                ..Default::default()
            },
        )
        .unwrap();
        let reqs: Vec<HttpRequest> = (0..40).map(unique_note).collect();
        let wl = Workload::constant_rate(&reqs, 10.0, 40);
        sys.run(&wl);
        let prom = telemetry.export_prometheus();
        for gauge in [
            "edgstr_placement_state",
            "edgstr_service_read_ratio",
            "edgstr_service_state_bytes",
        ] {
            assert!(prom.contains(gauge), "missing {gauge} in:\n{prom}");
        }
        let trace = telemetry.export_trace_jsonl();
        assert!(trace.contains("placement.pin"), "initial pins must trace");
        assert!(trace.contains("placement.demote"), "demotion must trace");
    }
}
