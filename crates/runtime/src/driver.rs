//! Shared run-driver plumbing for the two-tier and three-tier system
//! drivers: workload generation, the mobile energy model, the WAN fault
//! policy, and the per-run measurement recorder.
//!
//! [`RunStats`] is a *view* over the telemetry registry: both drivers
//! funnel every completion, failure, byte and retry through a
//! [`RunRecorder`], which counts into registry counters (a throwaway
//! registry when telemetry is disabled, the shared one when enabled) and
//! reads the per-run deltas back out at [`RunRecorder::finish`]. One
//! accounting path serves both drivers and both telemetry modes, so
//! enabling observability cannot change the numbers — the
//! `e14_observability` bench pins `RunStats` equality (including a
//! response digest) with telemetry off vs on.

use edgstr_net::{HttpRequest, HttpResponse};
use edgstr_sim::{Clock, LatencyStats, SimDuration, SimTime};
use edgstr_telemetry::{Counter, Gauge, Histogram, Telemetry};

/// Radio/idle power draw of the mobile client, used to integrate the
/// per-request energy the Trepn profiler measures in the paper (Fig. 8).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MobilePower {
    /// Transmitting (upload) watts.
    pub tx_w: f64,
    /// Receiving (download) watts.
    pub rx_w: f64,
    /// Low-power waiting watts ("the mobile device typically switches into
    /// a low-power mode in the idle state", §IV-C.3).
    pub wait_w: f64,
}

impl Default for MobilePower {
    fn default() -> Self {
        MobilePower {
            tx_w: 2.6,
            rx_w: 2.1,
            wait_w: 0.85,
        }
    }
}

impl MobilePower {
    /// Energy for one request given its transfer and wait durations.
    pub fn request_energy_j(&self, up: SimDuration, down: SimDuration, wait: SimDuration) -> f64 {
        self.tx_w * up.as_secs_f64()
            + self.rx_w * down.as_secs_f64()
            + self.wait_w * wait.as_secs_f64()
    }
}

/// A request scheduled at a virtual arrival time.
#[derive(Debug, Clone)]
pub struct TimedRequest {
    pub at: SimTime,
    pub request: HttpRequest,
}

/// A sequence of timed requests.
#[derive(Debug, Clone, Default)]
pub struct Workload {
    pub requests: Vec<TimedRequest>,
}

impl Workload {
    /// `count` requests at a constant rate, cycling over `templates`.
    pub fn constant_rate(templates: &[HttpRequest], rps: f64, count: usize) -> Workload {
        let gap = SimDuration::from_secs_f64(1.0 / rps.max(0.001));
        let mut t = SimTime::ZERO;
        let mut requests = Vec::with_capacity(count);
        for i in 0..count {
            requests.push(TimedRequest {
                at: t,
                request: templates[i % templates.len()].clone(),
            });
            t += gap;
        }
        Workload { requests }
    }

    /// Piecewise-constant rates: each phase is `(rps, duration_seconds)`.
    /// Models the fluctuating client volumes of the elasticity experiment
    /// (Fig. 9-right).
    pub fn phases(templates: &[HttpRequest], phases: &[(f64, f64)]) -> Workload {
        let mut requests = Vec::new();
        let mut t = 0.0f64;
        let mut i = 0usize;
        for &(rps, secs) in phases {
            let gap = 1.0 / rps.max(0.001);
            let end = t + secs;
            while t < end {
                requests.push(TimedRequest {
                    at: SimTime::from_secs_f64(t),
                    request: templates[i % templates.len()].clone(),
                });
                i += 1;
                t += gap;
            }
        }
        Workload { requests }
    }

    /// Shift every arrival by `offset` (to continue a previous run's
    /// virtual timeline).
    pub fn shifted(mut self, offset: SimTime) -> Workload {
        for r in &mut self.requests {
            r.at = SimTime(r.at.0 + offset.0);
        }
        self
    }

    /// Number of requests.
    pub fn len(&self) -> usize {
        self.requests.len()
    }

    /// Whether the workload is empty.
    pub fn is_empty(&self) -> bool {
        self.requests.is_empty()
    }
}

/// Retry/timeout/circuit-breaker policy for WAN failure forwarding.
///
/// When an edge forwards a request to the cloud and the WAN drops it, the
/// edge retransmits with exponential backoff plus seeded jitter, up to a
/// retry cap and an end-to-end deadline. A run of consecutive forwarding
/// failures opens a circuit breaker: while it is open the edge stops
/// attempting the WAN entirely (degraded mode) until a cooldown elapses,
/// after which one probe request may half-open it.
#[derive(Debug, Clone)]
pub struct FaultPolicy {
    /// End-to-end deadline for one forwarded request, retries included.
    pub forward_deadline: SimDuration,
    /// Retransmissions allowed after the first attempt.
    pub max_retries: u32,
    /// Backoff before retry `k` is `backoff_base * 2^k`, plus jitter in
    /// `[0, backoff_base)`.
    pub backoff_base: SimDuration,
    /// Consecutive forwarding failures that open the breaker.
    pub breaker_threshold: u32,
    /// How long the breaker stays open before a probe is allowed.
    pub breaker_cooldown: SimDuration,
    /// Seed for the retry-jitter stream.
    pub jitter_seed: u64,
}

impl Default for FaultPolicy {
    fn default() -> Self {
        FaultPolicy {
            forward_deadline: SimDuration::from_secs(10),
            max_retries: 3,
            backoff_base: SimDuration::from_millis(100),
            breaker_threshold: 3,
            breaker_cooldown: SimDuration::from_secs(5),
            jitter_seed: 0xED657,
        }
    }
}

/// Measurements from one run.
///
/// Equality is exact across every field — including the order-sensitive
/// [`RunStats::response_digest`] — so two runs compare equal only when
/// they completed the same requests with byte-identical responses and
/// identical accounting.
#[derive(Debug, Default, PartialEq)]
pub struct RunStats {
    pub latency: LatencyStats,
    pub completed: usize,
    pub failed: usize,
    /// Requests the edge forwarded to the cloud (failure forwarding or
    /// non-replicated services).
    pub forwarded: usize,
    /// WAN retransmissions performed by failure forwarding.
    pub retries: usize,
    /// Forwarded requests abandoned at the retry cap or deadline.
    pub timed_out: usize,
    /// Requests handled in degraded mode while the circuit breaker was
    /// open: replicated services served locally with deltas queued,
    /// non-replicated requests failed fast without touching the WAN.
    pub degraded: usize,
    /// Virtual time of the last completion.
    pub makespan: SimTime,
    /// Client request/response bytes crossing the WAN.
    pub wan_request_bytes: usize,
    /// CRDT synchronization bytes crossing the WAN.
    pub wan_sync_bytes: usize,
    /// Bytes crossing the edge LAN.
    pub lan_bytes: usize,
    pub client_energy_j: f64,
    pub cloud_energy_j: f64,
    pub edge_energy_j: f64,
    /// `(time, active_replicas)` samples from the autoscaler.
    pub replica_samples: Vec<(SimTime, usize)>,
    /// FNV-1a digest chained over every completed response (status +
    /// serialized body) in completion order. Two runs that produced the
    /// same digest returned byte-identical response sequences.
    pub response_digest: u64,
}

impl RunStats {
    /// Completed requests per second of makespan.
    pub fn throughput_rps(&self) -> f64 {
        let s = self.makespan.as_secs_f64();
        if s <= 0.0 {
            0.0
        } else {
            self.completed as f64 / s
        }
    }

    /// Mean energy per request on the client, in joules.
    pub fn client_energy_per_request(&self) -> f64 {
        if self.completed == 0 {
            0.0
        } else {
            self.client_energy_j / self.completed as f64
        }
    }
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv1a(mut hash: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

/// Registry counters the recorder drives, in [`RunStats`] field order.
const COMPLETED: usize = 0;
const FAILED: usize = 1;
const FORWARDED: usize = 2;
const RETRIES: usize = 3;
const TIMED_OUT: usize = 4;
const DEGRADED: usize = 5;
const WAN_REQUEST_BYTES: usize = 6;
const WAN_SYNC_BYTES: usize = 7;
const LAN_BYTES: usize = 8;
const NUM_COUNTERS: usize = 9;

const COUNTER_SPECS: [(&str, &[(&str, &str)]); NUM_COUNTERS] = [
    ("edgstr_requests_total", &[("result", "completed")]),
    ("edgstr_requests_total", &[("result", "failed")]),
    ("edgstr_forwards_total", &[]),
    ("edgstr_forward_retries_total", &[]),
    ("edgstr_forward_timeouts_total", &[]),
    ("edgstr_degraded_total", &[]),
    ("edgstr_link_bytes_total", &[("link", "wan_request")]),
    ("edgstr_link_bytes_total", &[("link", "wan_sync")]),
    ("edgstr_link_bytes_total", &[("link", "lan")]),
];

/// Per-run measurement accumulator shared by [`crate::TwoTierSystem`] and
/// [`crate::ThreeTierSystem`].
///
/// Countable measurements live in registry counters; because the registry
/// is cumulative across runs on the same system, the recorder snapshots
/// every counter at construction and [`RunRecorder::finish`] reports the
/// deltas. Exact latency samples, the makespan, energy integrals, replica
/// samples and the response digest (which the bucketed registry cannot
/// represent) accumulate directly.
pub struct RunRecorder {
    telemetry: Telemetry,
    counters: [Counter; NUM_COUNTERS],
    base: [u64; NUM_COUNTERS],
    latency_hist: Histogram,
    replicas_gauge: Gauge,
    stats: RunStats,
    digest: u64,
    clock: Clock,
}

impl RunRecorder {
    /// Start recording one run against `telemetry`'s registry (or a
    /// throwaway registry when disabled — same code path, nothing kept),
    /// under a deterministic virtual clock.
    pub fn new(telemetry: &Telemetry) -> RunRecorder {
        Self::with_clock(telemetry, Clock::virtual_clock())
    }

    /// Start recording one run driven by an explicit [`Clock`]. Under
    /// [`Clock::Virtual`] completions advance the clock's frontier (the
    /// historical makespan watermark); under [`Clock::Wall`] the makespan
    /// is the real elapsed time at the last completion.
    pub fn with_clock(telemetry: &Telemetry, clock: Clock) -> RunRecorder {
        let registry = telemetry.registry().unwrap_or_default();
        let counters = COUNTER_SPECS.map(|(name, labels)| registry.counter(name, labels));
        let base = std::array::from_fn(|i| counters[i].get());
        RunRecorder {
            telemetry: telemetry.clone(),
            counters,
            base,
            latency_hist: registry.histogram("edgstr_request_latency_us", &[]),
            replicas_gauge: registry.gauge("edgstr_active_replicas", &[]),
            stats: RunStats::default(),
            digest: FNV_OFFSET,
            clock,
        }
    }

    /// The telemetry handle this run records against.
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// The clock driving this run.
    pub fn clock(&self) -> &Clock {
        &self.clock
    }

    /// Record one completed request: latency, client energy, makespan,
    /// and the response digest. `client_energy_j` is the request's mobile
    /// energy integral ([`MobilePower::request_energy_j`]).
    pub fn complete(
        &mut self,
        response: &HttpResponse,
        started: SimTime,
        done: SimTime,
        client_energy_j: f64,
    ) {
        let latency = done - started;
        self.stats.latency.record(latency);
        self.latency_hist.record(latency.0);
        self.counters[COMPLETED].inc();
        self.stats.client_energy_j += client_energy_j;
        // Advance the run's clock to this completion and take the makespan
        // from the clock reading: under a virtual clock this is exactly the
        // historical `max(done)` watermark; under a wall clock it is the
        // real elapsed time at the last completion.
        self.clock.advance_to(done);
        let now = self.clock.now();
        if now > self.stats.makespan {
            self.stats.makespan = now;
        }
        self.digest = fnv1a(self.digest, &response.status.to_le_bytes());
        let body = serde_json::to_string(&response.body).expect("response body serializes");
        self.digest = fnv1a(self.digest, body.as_bytes());
    }

    /// Record one failed request.
    pub fn fail(&mut self) {
        self.counters[FAILED].inc();
    }

    /// Record one edge-to-cloud forward.
    pub fn forwarded(&mut self) {
        self.counters[FORWARDED].inc();
    }

    /// Record one WAN retransmission.
    pub fn retried(&mut self) {
        self.counters[RETRIES].inc();
    }

    /// Record one forward abandoned at the retry cap or deadline.
    pub fn timed_out(&mut self) {
        self.counters[TIMED_OUT].inc();
    }

    /// Record one request handled in degraded mode.
    pub fn degraded(&mut self) {
        self.counters[DEGRADED].inc();
    }

    /// Count client request/response bytes crossing the WAN.
    pub fn add_wan_request_bytes(&mut self, n: usize) {
        self.counters[WAN_REQUEST_BYTES].add(n as u64);
    }

    /// Count CRDT synchronization bytes crossing the WAN.
    pub fn add_wan_sync_bytes(&mut self, n: usize) {
        self.counters[WAN_SYNC_BYTES].add(n as u64);
    }

    /// Count bytes crossing the edge LAN.
    pub fn add_lan_bytes(&mut self, n: usize) {
        self.counters[LAN_BYTES].add(n as u64);
    }

    /// Record an autoscaler `(time, active_replicas)` sample.
    pub fn replica_sample(&mut self, at: SimTime, active: usize) {
        self.stats.replica_samples.push((at, active));
        self.replicas_gauge.set(active as f64);
    }

    /// Virtual time of the last completion so far.
    pub fn makespan(&self) -> SimTime {
        self.stats.makespan
    }

    /// Close the run: fold counter deltas into [`RunStats`], attach the
    /// server-side energy integrals, and publish the summary gauges.
    pub fn finish(mut self, cloud_energy_j: f64, edge_energy_j: f64) -> RunStats {
        let delta = |i: usize| (self.counters[i].get() - self.base[i]) as usize;
        self.stats.completed = delta(COMPLETED);
        self.stats.failed = delta(FAILED);
        self.stats.forwarded = delta(FORWARDED);
        self.stats.retries = delta(RETRIES);
        self.stats.timed_out = delta(TIMED_OUT);
        self.stats.degraded = delta(DEGRADED);
        self.stats.wan_request_bytes = delta(WAN_REQUEST_BYTES);
        self.stats.wan_sync_bytes = delta(WAN_SYNC_BYTES);
        self.stats.lan_bytes = delta(LAN_BYTES);
        self.stats.cloud_energy_j = cloud_energy_j;
        self.stats.edge_energy_j = edge_energy_j;
        self.stats.response_digest = self.digest;
        if let Some(reg) = self.telemetry.registry() {
            reg.gauge("edgstr_energy_joules", &[("tier", "client")])
                .set(self.stats.client_energy_j);
            reg.gauge("edgstr_energy_joules", &[("tier", "cloud")])
                .set(cloud_energy_j);
            reg.gauge("edgstr_energy_joules", &[("tier", "edge")])
                .set(edge_energy_j);
            reg.gauge("edgstr_makespan_us", &[])
                .set(self.stats.makespan.0 as f64);
        }
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::json;

    #[test]
    fn recorder_reports_per_run_deltas_on_a_shared_registry() {
        let telemetry = Telemetry::recording();
        let resp = HttpResponse::ok(json!({"n": 1}));
        let mobile = MobilePower::default();
        let run = |telemetry: &Telemetry| {
            let mut rec = RunRecorder::new(telemetry);
            let energy = mobile.request_energy_j(
                SimDuration::from_millis(10),
                SimDuration::from_millis(10),
                SimDuration::from_millis(100),
            );
            rec.complete(&resp, SimTime::ZERO, SimTime::from_secs_f64(0.5), energy);
            rec.fail();
            rec.add_lan_bytes(128);
            rec.finish(1.0, 2.0)
        };
        let first = run(&telemetry);
        let second = run(&telemetry);
        // per-run numbers, not cumulative registry totals
        assert_eq!(first.completed, 1);
        assert_eq!(second.completed, 1);
        assert_eq!(first, second, "identical runs must compare equal");
        // ...while the registry keeps the cluster-lifetime totals
        let reg = telemetry.registry().unwrap();
        assert_eq!(
            reg.counter("edgstr_requests_total", &[("result", "completed")])
                .get(),
            2
        );
        assert_eq!(
            reg.counter("edgstr_link_bytes_total", &[("link", "lan")])
                .get(),
            2 * 128
        );
    }

    #[test]
    fn digest_is_order_and_content_sensitive() {
        let complete = |rec: &mut RunRecorder, resp: &HttpResponse| {
            rec.complete(resp, SimTime::ZERO, SimTime(1), 0.0)
        };
        let a = HttpResponse::ok(json!({"n": 1}));
        let b = HttpResponse::ok(json!({"n": 2}));
        let t = Telemetry::disabled();
        let mut ab = RunRecorder::new(&t);
        complete(&mut ab, &a);
        complete(&mut ab, &b);
        let mut ba = RunRecorder::new(&t);
        complete(&mut ba, &b);
        complete(&mut ba, &a);
        assert_ne!(
            ab.finish(0.0, 0.0).response_digest,
            ba.finish(0.0, 0.0).response_digest
        );

        let mut aa = RunRecorder::new(&t);
        complete(&mut aa, &a);
        complete(&mut aa, &a);
        let mut aa2 = RunRecorder::new(&t);
        complete(&mut aa2, &a);
        complete(&mut aa2, &a);
        assert_eq!(
            aa.finish(0.0, 0.0).response_digest,
            aa2.finish(0.0, 0.0).response_digest
        );
    }

    #[test]
    fn disabled_telemetry_uses_a_private_registry() {
        let t = Telemetry::disabled();
        let mut rec = RunRecorder::new(&t);
        rec.fail();
        let stats = rec.finish(0.0, 0.0);
        assert_eq!(stats.failed, 1);
        assert!(t.registry().is_none(), "nothing leaks out when disabled");
    }

    #[test]
    fn explicit_virtual_clock_matches_default_recorder() {
        let t = Telemetry::disabled();
        let resp = HttpResponse::ok(json!({"ok": true}));
        let drive = |mut rec: RunRecorder| {
            rec.complete(&resp, SimTime(100), SimTime(900), 0.1);
            rec.complete(&resp, SimTime(200), SimTime(400), 0.1);
            rec.finish(0.0, 0.0)
        };
        let default = drive(RunRecorder::new(&t));
        let explicit = drive(RunRecorder::with_clock(&t, Clock::virtual_clock()));
        assert_eq!(
            default, explicit,
            "virtual clock is the default, bit-identical"
        );
        assert_eq!(
            default.makespan,
            SimTime(900),
            "makespan is the max completion"
        );
    }

    #[test]
    fn wall_clock_recorder_reports_elapsed_makespan() {
        let t = Telemetry::disabled();
        let mut rec = RunRecorder::with_clock(&t, Clock::wall());
        assert!(rec.clock().is_wall());
        let resp = HttpResponse::ok(json!({"ok": true}));
        // Virtual event times are ignored by the wall clock: the makespan
        // is whatever real time has elapsed at the last completion.
        rec.complete(&resp, SimTime::ZERO, SimTime(u64::MAX), 0.0);
        let stats = rec.finish(0.0, 0.0);
        assert_eq!(stats.completed, 1);
        assert!(
            stats.makespan < SimTime(u64::MAX),
            "wall makespan is real elapsed time, not the virtual event time"
        );
    }
}
