//! # edgstr-runtime — the three-tier runtime EdgStr deploys
//!
//! Implements §III-F/G and §IV-D of the paper:
//!
//! - [`CrdtSet`] — the CRDT wiring connecting service state changes to
//!   `CRDT-Table` / `CRDT-Files` / `CRDT-JSON` update operations, plus
//!   materialization of remote changes back into the local database, file
//!   system and globals;
//! - [`SyncEndpoint`] — the bidirectional `cloud_state` / `edge_state`
//!   channel with delta shipping and traffic accounting (Fig. 5b);
//! - [`LoadBalancer`] / [`Autoscaler`] — least-connections balancing and
//!   elasticity with low-power replica parking (§IV-D);
//! - [`TwoTierSystem`] / [`ThreeTierSystem`] — virtual-time drivers for
//!   the original client-cloud deployment and the EdgStr-generated
//!   client-edge-cloud deployment, including failure forwarding to the
//!   cloud master.

pub mod balancer;
pub mod cache;
pub mod crdtset;
pub mod driver;
pub mod parallel;
pub mod system;
pub mod tiering;

pub use balancer::{Autoscaler, BalanceStrategy, LoadBalancer};
pub use cache::{
    bump_static_global_writes, resolve_reads, CacheKey, CachePolicy, CacheStats, ResponseCache,
    UnitKey, UnitVersions, CACHE_HIT_CYCLES,
};
pub use crdtset::{CrdtSet, SetChanges, SetClock, SetSyncMessage, SyncEndpoint};
pub use driver::{FaultPolicy, MobilePower, RunRecorder, RunStats, TimedRequest, Workload};
pub use parallel::{ParallelOptions, ParallelRunStats, ParallelSystem, ReplicaSeed, FAILED_DIGEST};
pub use system::{
    BitFlipCorruptor, EdgeReplica, HaPolicy, HaStats, QuarantinePolicy, ThreeTierOptions,
    ThreeTierSystem, TwoTierSystem,
};
pub use tiering::{
    PendingTransition, PlacementMode, PlacementScript, PlacementStats, ScriptedDecision,
    TransitionBarrier, TransitionRecord,
};
// Decision-logic types re-exported so runtime consumers need not depend on
// `edgstr-placement` directly.
pub use edgstr_placement::{
    desired_placement, Decision, DecisionReason, Observation, Placement, PlacementController,
    PlacementPolicy, StaticSignals, WindowSummary,
};
