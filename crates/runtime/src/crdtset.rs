//! CRDT wiring: connecting service state changes to CRDT update
//! operations (§III-G.1).
//!
//! EdgStr wraps the replicated components — database tables, files, global
//! variables — into `CRDT-Table`, `CRDT-Files`, `CRDT-JSON`. A [`CrdtSet`]
//! holds all three for one replica, *absorbs* local state changes reported
//! by the server process (the generated wiring), and *materializes* remote
//! changes back into the server's database / file system / globals.

use crate::cache::UnitVersions;
use edgstr_analysis::{HandleOutcome, InitState, ServerProcess};
use edgstr_core::CrdtBindings;
use edgstr_crdt::{ActorId, AdvanceMode, Change, CrdtFiles, CrdtTable, Doc, PathSeg, VClock};
use edgstr_sql::RowEffect;
use serde_json::Value as Json;
use std::collections::BTreeMap;

/// Clock summary across all structures of a [`CrdtSet`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SetClock {
    pub tables: BTreeMap<String, VClock>,
    pub files: VClock,
    pub globals: VClock,
}

impl SetClock {
    /// Pointwise maximum with `other`, structure by structure.
    pub fn merge(&mut self, other: &SetClock) {
        for (n, c) in &other.tables {
            self.tables.entry(n.clone()).or_default().merge(c);
        }
        self.files.merge(&other.files);
        self.globals.merge(&other.globals);
    }

    /// Pointwise minimum with `other`, structure by structure — the
    /// greatest clock both sides have acknowledged. Folding the meet of
    /// all live peers' ack clocks is the safe compaction frontier: no peer
    /// can still need a change at or below it.
    pub fn meet(&self, other: &SetClock) -> SetClock {
        let mut tables = BTreeMap::new();
        for (n, c) in &self.tables {
            if let Some(o) = other.tables.get(n) {
                let m = c.meet(o);
                if !m.is_empty() {
                    tables.insert(n.clone(), m);
                }
            }
        }
        SetClock {
            tables,
            files: self.files.meet(&other.files),
            globals: self.globals.meet(&other.globals),
        }
    }

    /// True if this clock has observed at least everything `other` has.
    pub fn dominates(&self, other: &SetClock) -> bool {
        let empty = VClock::new();
        other
            .tables
            .iter()
            .all(|(n, c)| self.tables.get(n).unwrap_or(&empty).dominates(c))
            && self.files.dominates(&other.files)
            && self.globals.dominates(&other.globals)
    }

    /// Bytes this clock costs inside a sync envelope (one `(actor, seq)`
    /// pair is 16 bytes).
    fn wire_size(&self) -> usize {
        let pairs: usize = self.tables.values().map(VClock::len).sum::<usize>()
            + self.files.len()
            + self.globals.len();
        pairs * 16
    }
}

/// A batch of changes across all structures — the payload of one
/// `cloud_state` / `edge_state` message (Fig. 5b).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SetChanges {
    pub tables: BTreeMap<String, Vec<Change>>,
    pub files: Vec<Change>,
    pub globals: Vec<Change>,
}

impl SetChanges {
    /// Total changes carried.
    pub fn len(&self) -> usize {
        self.tables.values().map(Vec::len).sum::<usize>() + self.files.len() + self.globals.len()
    }

    /// Whether the batch is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Bytes this batch costs on the WAN.
    pub fn wire_size(&self) -> usize {
        let t: usize = self
            .tables
            .values()
            .map(|cs| edgstr_crdt::batch_wire_size(cs))
            .sum();
        t + edgstr_crdt::batch_wire_size(&self.files)
            + edgstr_crdt::batch_wire_size(&self.globals)
            + 32 // envelope
    }
}

/// The CRDT structures of one replica.
#[derive(Debug)]
pub struct CrdtSet {
    pub bindings: CrdtBindings,
    pub tables: BTreeMap<String, CrdtTable>,
    pub files: CrdtFiles,
    pub globals: Doc,
    /// Per-state-unit version counters, bumped on every local mutation and
    /// every applied remote change — the response cache's validity signal.
    pub versions: UnitVersions,
}

impl CrdtSet {
    /// Initialize all structures from the shared init snapshot — the
    /// paper's step 1: "initialize both the master and the replicas with
    /// the same snapshot of the cloud-based service".
    pub fn initialize(actor: ActorId, bindings: &CrdtBindings, init: &InitState) -> CrdtSet {
        let db_json = init.db_json();
        let mut tables = BTreeMap::new();
        for t in &bindings.tables {
            let rows: Vec<(String, Json)> = db_json
                .get(t)
                .and_then(Json::as_object)
                .map(|m| {
                    m.iter()
                        .map(|(pk, row)| (pk.clone(), row.clone()))
                        .collect()
                })
                .unwrap_or_default();
            tables.insert(t.clone(), CrdtTable::from_snapshot(actor, t.clone(), &rows));
        }
        let file_entries: Vec<(String, Vec<u8>)> = init
            .fs
            .entries()
            .into_iter()
            .filter(|(p, _)| bindings.files.contains(p))
            .collect();
        let files = CrdtFiles::from_snapshot(actor, &file_entries);
        let globals_json = init.globals_json();
        let mut gmap = serde_json::Map::new();
        for g in &bindings.globals {
            gmap.insert(
                g.clone(),
                globals_json.get(g).cloned().unwrap_or(Json::Null),
            );
        }
        let globals = Doc::from_snapshot(actor, &Json::Object(gmap));
        CrdtSet {
            bindings: bindings.clone(),
            tables,
            files,
            globals,
            versions: UnitVersions::default(),
        }
    }

    /// The owning actor.
    pub fn actor(&self) -> ActorId {
        self.globals.actor()
    }

    /// Current clocks across all structures.
    pub fn clock(&self) -> SetClock {
        SetClock {
            tables: self
                .tables
                .iter()
                .map(|(n, t)| (n.clone(), t.clock().clone()))
                .collect(),
            files: self.files.clock().clone(),
            globals: self.globals.clock().clone(),
        }
    }

    /// Absorb the local state changes of one request — the generated
    /// CRDT wiring: SQL row effects feed `CRDT-Table`, file writes feed
    /// `CRDT-Files`, and bound globals are re-read from the server into
    /// `CRDT-JSON`.
    pub fn absorb_outcome(&mut self, outcome: &HandleOutcome, server: &ServerProcess) {
        // Version bumps cover *all* concrete effects, bound or not: an
        // unreplicated table/file still invalidates cached reads of it.
        for effect in &outcome.row_effects {
            match effect {
                RowEffect::Upsert { table, pk, row } => {
                    self.versions.touch_row(table, pk);
                    if let Some(t) = self.tables.get_mut(table) {
                        t.upsert_row(pk, row).expect("table CRDT upsert");
                    }
                }
                RowEffect::Delete { table, pk } => {
                    self.versions.touch_row(table, pk);
                    if let Some(t) = self.tables.get_mut(table) {
                        t.delete_row(pk).expect("table CRDT delete");
                    }
                }
            }
        }
        for (path, data) in &outcome.file_writes {
            self.versions.touch_file(path);
            if self.bindings.files.contains(path) {
                self.files.put_file(path, data).expect("file CRDT put");
            }
        }
        // bound globals: re-read and update when changed
        for g in &self.bindings.globals.clone() {
            if let Some(current) = server.global_json(g) {
                let path = vec![PathSeg::Key(g.clone())];
                if self.globals.get(&path).as_ref() != Some(&current) {
                    self.versions.touch_global(g);
                    self.globals.put(&path, current).expect("global CRDT put");
                }
            }
        }
        // newly-bound globals surface here even when not CRDT-bound
        for g in &outcome.global_writes {
            self.versions.touch_global(g);
        }
    }

    /// Changes the peer (summarized by `since`) has not observed.
    pub fn get_changes(&self, since: &SetClock) -> SetChanges {
        let empty = VClock::new();
        SetChanges {
            tables: self
                .tables
                .iter()
                .map(|(n, t)| {
                    let cursor = since.tables.get(n).unwrap_or(&empty);
                    (n.clone(), t.get_changes(cursor))
                })
                .filter(|(_, cs)| !cs.is_empty())
                .collect(),
            files: self.files.get_changes(&since.files),
            globals: self.globals.get_changes(&since.globals),
        }
    }

    /// Apply remote changes to the CRDTs and materialize the merged state
    /// into the server (database rows, file contents, global values).
    /// Returns the number of changes applied.
    pub fn apply_remote(&mut self, changes: &SetChanges, server: &mut ServerProcess) -> usize {
        self.apply_remote_owned(changes.clone(), server)
    }

    /// Consuming variant of [`CrdtSet::apply_remote`] — the runtime sync
    /// daemon's hot path, which would otherwise clone every delta each
    /// round.
    pub fn apply_remote_owned(&mut self, changes: SetChanges, server: &mut ServerProcess) -> usize {
        let mut applied = 0;
        for (name, cs) in changes.tables {
            if let Some(t) = self.tables.get_mut(&name) {
                let (n, touch) = t.apply_changes_owned_tracked(cs).expect("table CRDT apply");
                applied += n;
                if touch.whole {
                    self.versions.touch_table(&name);
                } else {
                    for pk in &touch.keys {
                        self.versions.touch_row(&name, pk);
                    }
                }
                // materialize merged rows into the SQL engine
                let rows: Vec<Json> = t.rows().into_iter().map(|(_, row)| row).collect();
                let _ = server.db.replace_table_rows(&name, &rows);
            }
        }
        if !changes.files.is_empty() {
            let (n, touch) = self
                .files
                .apply_changes_owned_tracked(changes.files)
                .expect("files CRDT apply");
            applied += n;
            if touch.whole {
                self.versions.touch_files_all();
            } else {
                for path in &touch.keys {
                    self.versions.touch_file(path);
                }
            }
            self.materialize_files(server);
        }
        if !changes.globals.is_empty() {
            let (n, touched) = self
                .globals
                .apply_changes_owned_tracked(changes.globals)
                .expect("globals CRDT apply");
            applied += n;
            if touched.unresolved {
                self.versions.touch_globals_all();
            } else {
                for (first, _) in &touched.keys {
                    self.versions.touch_global(first);
                }
            }
            self.materialize_globals(server);
        }
        applied
    }

    /// Push the full merged CRDT state into `server` — used when a
    /// restarted replica is provisioned from a [`CrdtSet::save`] payload
    /// rather than by replaying changes.
    pub fn materialize_all(&self, server: &mut ServerProcess) {
        for (name, t) in &self.tables {
            let rows: Vec<Json> = t.rows().into_iter().map(|(_, row)| row).collect();
            let _ = server.db.replace_table_rows(name, &rows);
        }
        self.materialize_files(server);
        self.materialize_globals(server);
    }

    fn materialize_files(&self, server: &mut ServerProcess) {
        for path in self.files.list() {
            if let Some(data) = self.files.get_file(&path) {
                if server.fs.peek(&path) != Some(data.as_slice()) {
                    server.fs.write(path, data);
                }
            }
        }
    }

    fn materialize_globals(&self, server: &mut ServerProcess) {
        for g in &self.bindings.globals {
            if let Some(v) = self.globals.get(&[PathSeg::Key(g.clone())]) {
                server.set_global_json(g, &v);
            }
        }
    }

    /// Total retained change-log length across all structures — the
    /// resident history the sync daemon keeps bounded via
    /// [`CrdtSet::compact`].
    pub fn history_len(&self) -> usize {
        self.tables
            .values()
            .map(CrdtTable::history_len)
            .sum::<usize>()
            + self.files.history_len()
            + self.globals.history_len()
    }

    /// Fold acked history at or below `frontier` (normally the
    /// [`SetClock::meet`] of all live peers' ack clocks) into the
    /// snapshots. Returns the number of changes dropped.
    pub fn compact(&mut self, frontier: &SetClock) -> usize {
        let empty = VClock::new();
        let mut dropped = 0;
        for (n, t) in self.tables.iter_mut() {
            dropped += t.compact(frontier.tables.get(n).unwrap_or(&empty));
        }
        dropped += self.files.compact(&frontier.files);
        dropped += self.globals.compact(&frontier.globals);
        dropped
    }

    /// Serialize the whole replica set (snapshot + retained tail per
    /// structure) — the provisioning payload for a fresh or restarted
    /// replica. Bounded by state size plus uncompacted tail, not lifetime
    /// mutation count.
    pub fn save(&self) -> Vec<u8> {
        let mut tables = serde_json::Map::new();
        for (n, t) in &self.tables {
            tables.insert(n.clone(), t.save_json());
        }
        let mut root = serde_json::Map::new();
        root.insert("tables".into(), Json::Object(tables));
        root.insert("files".into(), self.files.save_json());
        root.insert("globals".into(), self.globals.save_json());
        serde_json::to_vec(&Json::Object(root)).expect("replica set is serializable")
    }

    /// Restore a replica set from [`CrdtSet::save`] bytes, owned by
    /// `actor`. The restored set reads the same state and serves the same
    /// retained tail as the original.
    ///
    /// # Errors
    ///
    /// Returns [`edgstr_crdt::CrdtError`] when the payload does not decode.
    pub fn load(
        actor: ActorId,
        bindings: &CrdtBindings,
        bytes: &[u8],
    ) -> Result<CrdtSet, edgstr_crdt::CrdtError> {
        use edgstr_crdt::CrdtError;
        let corrupt = |m: &str| CrdtError::CorruptChange(m.to_string());
        let value: Json =
            serde_json::from_slice(bytes).map_err(|e| CrdtError::CorruptChange(e.to_string()))?;
        let obj = value
            .as_object()
            .ok_or_else(|| corrupt("replica set: expected object"))?;
        let mut tables = BTreeMap::new();
        for (n, t) in obj
            .get("tables")
            .and_then(Json::as_object)
            .ok_or_else(|| corrupt("replica set: missing tables"))?
        {
            tables.insert(n.clone(), CrdtTable::load_json(actor, n.clone(), t)?);
        }
        let files = CrdtFiles::load_json(
            actor,
            obj.get("files")
                .ok_or_else(|| corrupt("replica set: missing files"))?,
        )?;
        let globals = Doc::load_json(
            actor,
            obj.get("globals")
                .ok_or_else(|| corrupt("replica set: missing globals"))?,
        )?;
        Ok(CrdtSet {
            bindings: bindings.clone(),
            tables,
            files,
            globals,
            versions: UnitVersions::default(),
        })
    }
}

/// One `cloud_state` / `edge_state` sync envelope (Fig. 5b): the delta
/// batch plus the sender's full clock, which doubles as a cumulative
/// acknowledgment of everything the sender has applied.
#[derive(Debug, Clone, PartialEq)]
pub struct SetSyncMessage {
    /// The replica that produced this message.
    pub sender: ActorId,
    /// The sender's clock across all structures — acknowledges every
    /// change the sender has locally applied, including changes it
    /// received from the destination.
    pub ack: SetClock,
    /// Changes the sender believes the destination is missing.
    pub changes: SetChanges,
}

impl SetSyncMessage {
    /// Bytes this message costs on the WAN (envelope + ack clock + delta).
    pub fn wire_size(&self) -> usize {
        16 + self.ack.wire_size() + self.changes.wire_size()
    }
}

/// Per-peer synchronization endpoint with traffic accounting — one side of
/// the bidirectional `socket.io`-style channel (§III-G.1).
///
/// Delivery tracking is **ack-driven** by default: [`SyncEndpoint::generate`]
/// does not assume its outgoing delta arrives. `peer_clock` only advances
/// when [`SyncEndpoint::receive`] merges the peer's acknowledged clock, so
/// a dropped message simply causes the same changes to be regenerated on
/// the next round (safe because `apply_remote` is idempotent). The
/// pre-fix optimistic behaviour is kept behind
/// [`AdvanceMode::Optimistic`] as an ablation.
#[derive(Debug, Default)]
pub struct SyncEndpoint {
    /// What the peer is known (or, under `Optimistic`, assumed) to have.
    pub peer_clock: SetClock,
    /// How `peer_clock` advances on send.
    pub mode: AdvanceMode,
    /// Total bytes sent to the peer.
    pub bytes_sent: usize,
    /// Total bytes received from the peer.
    pub bytes_received: usize,
    /// Sync messages exchanged.
    pub messages: usize,
}

impl SyncEndpoint {
    /// Fresh ack-driven endpoint assuming the peer has only the shared
    /// snapshot.
    pub fn new() -> Self {
        SyncEndpoint::default()
    }

    /// Fresh endpoint with the pre-fix optimistic advancement (assumes
    /// every generated delta is delivered). Diverges under message loss;
    /// kept for the fault-model ablation.
    pub fn optimistic() -> Self {
        SyncEndpoint {
            mode: AdvanceMode::Optimistic,
            ..SyncEndpoint::default()
        }
    }

    /// Build the next outgoing sync message for the peer.
    pub fn generate(&mut self, set: &CrdtSet) -> SetSyncMessage {
        let changes = set.get_changes(&self.peer_clock);
        let msg = SetSyncMessage {
            sender: set.actor(),
            ack: set.clock(),
            changes,
        };
        if !msg.changes.is_empty() {
            self.bytes_sent += msg.wire_size();
            self.messages += 1;
        }
        if self.mode == AdvanceMode::Optimistic && !msg.changes.is_empty() {
            // pre-fix behaviour: assume delivery without an ack
            for (n, cs) in &msg.changes.tables {
                let c = self.peer_clock.tables.entry(n.clone()).or_default();
                for ch in cs {
                    c.observe(ch.actor, ch.seq);
                }
            }
            for ch in &msg.changes.files {
                self.peer_clock.files.observe(ch.actor, ch.seq);
            }
            for ch in &msg.changes.globals {
                self.peer_clock.globals.observe(ch.actor, ch.seq);
            }
        }
        msg
    }

    /// Record receipt of a peer's message and apply its delta. The
    /// message's ack clock tells us exactly what the peer has applied —
    /// including our own earlier deltas — so this is where `peer_clock`
    /// actually advances.
    pub fn receive(
        &mut self,
        set: &mut CrdtSet,
        server: &mut ServerProcess,
        msg: &SetSyncMessage,
    ) -> usize {
        self.receive_owned(set, server, msg.clone())
    }

    /// Consuming variant of [`SyncEndpoint::receive`]: the sync daemon
    /// hands the message over so its delta is applied without cloning.
    pub fn receive_owned(
        &mut self,
        set: &mut CrdtSet,
        server: &mut ServerProcess,
        msg: SetSyncMessage,
    ) -> usize {
        self.bytes_received += msg.wire_size();
        if !msg.changes.is_empty() {
            self.messages += 1;
        }
        self.peer_clock.merge(&msg.ack);
        set.apply_remote_owned(msg.changes, server)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use edgstr_analysis::StateUnit;
    use edgstr_net::HttpRequest;
    use serde_json::json;

    const APP: &str = r#"
        db.query("CREATE TABLE kv (k TEXT PRIMARY KEY, v INT)");
        db.query("INSERT INTO kv VALUES ('seed', 1)");
        var hits = 0;
        app.post("/put", function (req, res) {
            hits = hits + 1;
            db.query("INSERT INTO kv VALUES ('" + req.body.k + "', " + req.body.v + ")");
            fs.writeFile("/latest.txt", req.body.k);
            res.send({ hits: hits });
        });
        app.get("/get", function (req, res) {
            var rows = db.query("SELECT v FROM kv WHERE k = '" + req.params.k + "'");
            res.send(rows);
        });
    "#;

    fn bindings() -> CrdtBindings {
        CrdtBindings::from_units([
            StateUnit::DbTable("kv".into()),
            StateUnit::File("/latest.txt".into()),
            StateUnit::Global("hits".into()),
        ])
    }

    fn make_node(actor: u64, init: &InitState) -> (ServerProcess, CrdtSet) {
        let mut s = ServerProcess::from_source(APP).unwrap();
        s.init().unwrap();
        init.restore(&mut s);
        let set = CrdtSet::initialize(ActorId(actor), &bindings(), init);
        (s, set)
    }

    fn init_state() -> InitState {
        let mut s = ServerProcess::from_source(APP).unwrap();
        s.init().unwrap();
        // seed the bound file so it exists in the snapshot
        s.fs.write("/latest.txt", b"seed".to_vec());
        InitState::capture(&s)
    }

    #[test]
    fn edge_write_syncs_to_cloud() {
        let init = init_state();
        let (mut cloud, mut cloud_set) = make_node(1, &init);
        let (mut edge, mut edge_set) = make_node(2, &init);
        let mut edge_to_cloud = SyncEndpoint::new();
        let mut cloud_from_edge = SyncEndpoint::new();

        // a client writes at the edge
        let out = edge
            .handle(&HttpRequest::post(
                "/put",
                json!({"k": "x", "v": 42}),
                vec![],
            ))
            .unwrap();
        edge_set.absorb_outcome(&out, &edge);

        // background sync: edge -> cloud
        let msg = edge_to_cloud.generate(&edge_set);
        assert!(!msg.changes.is_empty());
        assert!(msg.wire_size() > 0);
        cloud_from_edge.receive(&mut cloud_set, &mut cloud, &msg);

        // the cloud now serves the edge-written row
        let got = cloud
            .handle(&HttpRequest::get("/get", json!({"k": "x"})))
            .unwrap();
        assert_eq!(got.response.body[0]["v"], json!(42));
        // and the bound global converged
        assert_eq!(
            cloud_set.globals.get(&[PathSeg::Key("hits".into())]),
            Some(json!(1))
        );
    }

    #[test]
    fn bidirectional_sync_converges_concurrent_writes() {
        let init = init_state();
        let (mut cloud, mut cloud_set) = make_node(1, &init);
        let (mut edge, mut edge_set) = make_node(2, &init);
        let mut c2e = SyncEndpoint::new();
        let mut e2c = SyncEndpoint::new();

        let oc = cloud
            .handle(&HttpRequest::post(
                "/put",
                json!({"k": "from-cloud", "v": 1}),
                vec![],
            ))
            .unwrap();
        cloud_set.absorb_outcome(&oc, &cloud);
        let oe = edge
            .handle(&HttpRequest::post(
                "/put",
                json!({"k": "from-edge", "v": 2}),
                vec![],
            ))
            .unwrap();
        edge_set.absorb_outcome(&oe, &edge);

        // exchange deltas both ways, twice (to propagate acks)
        for _ in 0..2 {
            let d1 = c2e.generate(&cloud_set);
            e2c.receive(&mut edge_set, &mut edge, &d1);
            let d2 = e2c.generate(&edge_set);
            c2e.receive(&mut cloud_set, &mut cloud, &d2);
        }
        assert_eq!(
            cloud_set.tables["kv"].to_json(),
            edge_set.tables["kv"].to_json()
        );
        assert_eq!(cloud_set.tables["kv"].len(), 3); // seed + 2 concurrent
                                                     // both servers answer queries about both rows
        for (srv, k, v) in [(&mut cloud, "from-edge", 2), (&mut edge, "from-cloud", 1)] {
            let got = srv
                .handle(&HttpRequest::get("/get", json!({"k": k})))
                .unwrap();
            assert_eq!(got.response.body[0]["v"], json!(v));
        }
    }

    #[test]
    fn sync_is_incremental_not_cumulative() {
        let init = init_state();
        let (mut cloud, mut cloud_set) = make_node(1, &init);
        let (mut edge, mut edge_set) = make_node(2, &init);
        let mut e2c = SyncEndpoint::new();
        let mut c_recv = SyncEndpoint::new();

        let mut sizes = Vec::new();
        for i in 0..3 {
            let out = edge
                .handle(&HttpRequest::post(
                    "/put",
                    json!({"k": format!("k{i}"), "v": i}),
                    vec![],
                ))
                .unwrap();
            edge_set.absorb_outcome(&out, &edge);
            let msg = e2c.generate(&edge_set);
            sizes.push(msg.wire_size());
            c_recv.receive(&mut cloud_set, &mut cloud, &msg);
            // the cloud's reply carries its ack, advancing the edge's view
            let ack = c_recv.generate(&cloud_set);
            e2c.receive(&mut edge_set, &mut edge, &ack);
        }
        // deltas stay roughly constant instead of growing with history
        assert!(sizes[2] < sizes[0] * 3);
        // nothing left to send
        assert!(e2c.generate(&edge_set).changes.is_empty());
    }

    #[test]
    fn file_changes_materialize() {
        let init = init_state();
        let (mut cloud, mut cloud_set) = make_node(1, &init);
        let (mut edge, mut edge_set) = make_node(2, &init);
        let mut e2c = SyncEndpoint::new();
        let mut c_recv = SyncEndpoint::new();
        let out = edge
            .handle(&HttpRequest::post(
                "/put",
                json!({"k": "zzz", "v": 9}),
                vec![],
            ))
            .unwrap();
        edge_set.absorb_outcome(&out, &edge);
        let delta = e2c.generate(&edge_set);
        c_recv.receive(&mut cloud_set, &mut cloud, &delta);
        assert_eq!(cloud.fs.peek("/latest.txt"), Some(&b"zzz"[..]));
    }

    #[test]
    fn unbound_state_is_not_synchronized() {
        let init = init_state();
        let narrow = CrdtBindings::from_units([StateUnit::Global("hits".into())]);
        let mut edge = ServerProcess::from_source(APP).unwrap();
        edge.init().unwrap();
        init.restore(&mut edge);
        let mut edge_set = CrdtSet::initialize(ActorId(2), &narrow, &init);
        let out = edge
            .handle(&HttpRequest::post(
                "/put",
                json!({"k": "q", "v": 1}),
                vec![],
            ))
            .unwrap();
        edge_set.absorb_outcome(&out, &edge);
        let delta = edge_set.get_changes(&SetClock::default());
        // only the globals doc produced changes beyond genesis
        assert!(delta.tables.is_empty());
    }

    /// The sync daemon's compaction loop: after a full bidirectional
    /// exchange the meet of the ack clocks covers everything, compaction
    /// empties the resident log, and replication keeps working.
    #[test]
    fn meet_frontier_compaction_bounds_history_and_keeps_syncing() {
        let init = init_state();
        let (mut cloud, mut cloud_set) = make_node(1, &init);
        let (mut edge, mut edge_set) = make_node(2, &init);
        let mut c2e = SyncEndpoint::new();
        let mut e2c = SyncEndpoint::new();

        for i in 0..10 {
            let out = edge
                .handle(&HttpRequest::post(
                    "/put",
                    json!({"k": format!("k{i}"), "v": i}),
                    vec![],
                ))
                .unwrap();
            edge_set.absorb_outcome(&out, &edge);
        }
        // two full rounds so both sides' acks cover everything
        for _ in 0..2 {
            let up = e2c.generate(&edge_set);
            c2e.receive_owned(&mut cloud_set, &mut cloud, up);
            let down = c2e.generate(&cloud_set);
            e2c.receive_owned(&mut edge_set, &mut edge, down);
        }
        assert!(cloud_set.history_len() > 0);
        // the cloud's only peer is the edge: frontier = own clock ⊓ peer ack
        let frontier = cloud_set.clock().meet(&c2e.peer_clock);
        let dropped = cloud_set.compact(&frontier);
        assert!(dropped > 0);
        assert_eq!(cloud_set.history_len(), 0, "fully acked log must empty");
        // replication continues across the compacted master
        let out = cloud
            .handle(&HttpRequest::post(
                "/put",
                json!({"k": "post-compaction", "v": 99}),
                vec![],
            ))
            .unwrap();
        cloud_set.absorb_outcome(&out, &cloud);
        let down = c2e.generate(&cloud_set);
        e2c.receive_owned(&mut edge_set, &mut edge, down);
        assert_eq!(
            cloud_set.tables["kv"].to_json(),
            edge_set.tables["kv"].to_json()
        );
    }

    /// A compacted master's save payload provisions a replica that reads
    /// the same state and keeps exchanging deltas.
    #[test]
    fn set_save_load_provisions_equivalent_replica() {
        let init = init_state();
        let (mut cloud, mut cloud_set) = make_node(1, &init);
        for i in 0..5 {
            let out = cloud
                .handle(&HttpRequest::post(
                    "/put",
                    json!({"k": format!("k{i}"), "v": i}),
                    vec![],
                ))
                .unwrap();
            cloud_set.absorb_outcome(&out, &cloud);
        }
        // compact everything: provisioning must not depend on the log
        let frontier = cloud_set.clock();
        cloud_set.compact(&frontier);
        let bytes = cloud_set.save();

        let mut fresh = ServerProcess::from_source(APP).unwrap();
        fresh.init().unwrap();
        init.restore(&mut fresh);
        let restored = CrdtSet::load(ActorId(9), &bindings(), &bytes).unwrap();
        restored.materialize_all(&mut fresh);
        assert_eq!(
            restored.tables["kv"].to_json(),
            cloud_set.tables["kv"].to_json()
        );
        assert_eq!(fresh.fs.peek("/latest.txt"), Some(&b"k4"[..]));
        // the restored replica answers queries from its materialized DB
        let got = fresh
            .handle(&HttpRequest::get("/get", json!({"k": "k3"})))
            .unwrap();
        assert_eq!(got.response.body[0]["v"], json!(3));

        // and continues to sync: a new write at the restored edge reaches
        // the cloud even though the cloud's log was compacted
        let mut restored = restored;
        let mut r2c = SyncEndpoint::new();
        let mut c2r = SyncEndpoint::new();
        // the restored replica starts from the cloud's clock, so neither
        // side resends history
        r2c.peer_clock = cloud_set.clock();
        c2r.peer_clock = restored.clock();
        let out = fresh
            .handle(&HttpRequest::post(
                "/put",
                json!({"k": "from-restored", "v": 7}),
                vec![],
            ))
            .unwrap();
        restored.absorb_outcome(&out, &fresh);
        let up = r2c.generate(&restored);
        // one table row + one file write + one global update — no history
        assert_eq!(up.changes.len(), 3, "only the new delta travels");
        c2r.receive_owned(&mut cloud_set, &mut cloud, up);
        assert_eq!(
            cloud_set.tables["kv"].to_json(),
            restored.tables["kv"].to_json()
        );
    }
}

#[cfg(test)]
mod partition_tests {
    use super::*;
    use edgstr_analysis::{InitState, ServerProcess, StateUnit};
    use edgstr_core::CrdtBindings;
    use edgstr_crdt::ActorId;
    use edgstr_net::HttpRequest;
    use serde_json::json;

    const APP: &str = r#"
        db.query("CREATE TABLE log (id INT PRIMARY KEY, msg TEXT)");
        app.post("/log", function (req, res) {
            db.query("INSERT INTO log VALUES (" + req.body.id + ", '" + req.body.msg + "')");
            res.send({ ok: req.body.id });
        });
    "#;

    /// An edge that was partitioned from the cloud for many local writes
    /// catches up with a single delta exchange — the weak-consistency
    /// tolerance the paper's WAN assumption requires (§III-F).
    #[test]
    fn partitioned_edge_catches_up_in_one_exchange() {
        let mut seed = ServerProcess::from_source(APP).unwrap();
        seed.init().unwrap();
        let init = InitState::capture(&seed);
        let bindings = CrdtBindings::from_units([StateUnit::DbTable("log".into())]);

        let mut cloud = ServerProcess::from_source(APP).unwrap();
        cloud.init().unwrap();
        init.restore(&mut cloud);
        let mut cloud_set = CrdtSet::initialize(ActorId(1), &bindings, &init);

        let mut edge = ServerProcess::from_source(APP).unwrap();
        edge.init().unwrap();
        init.restore(&mut edge);
        let mut edge_set = CrdtSet::initialize(ActorId(2), &bindings, &init);

        // 25 writes at the edge while the WAN is down; cloud writes too
        for i in 0..25 {
            let out = edge
                .handle(&HttpRequest::post(
                    "/log",
                    json!({"id": i, "msg": format!("edge{i}")}),
                    vec![],
                ))
                .unwrap();
            edge_set.absorb_outcome(&out, &edge);
        }
        for i in 100..105 {
            let out = cloud
                .handle(&HttpRequest::post(
                    "/log",
                    json!({"id": i, "msg": format!("cloud{i}")}),
                    vec![],
                ))
                .unwrap();
            cloud_set.absorb_outcome(&out, &cloud);
        }

        // partition heals: one bidirectional exchange
        let mut e2c = SyncEndpoint::new();
        let mut c2e = SyncEndpoint::new();
        let up = e2c.generate(&edge_set);
        c2e.receive(&mut cloud_set, &mut cloud, &up);
        let down = c2e.generate(&cloud_set);
        e2c.receive(&mut edge_set, &mut edge, &down);

        assert_eq!(cloud_set.tables["log"].len(), 30);
        assert_eq!(
            cloud_set.tables["log"].to_json(),
            edge_set.tables["log"].to_json()
        );
        // both SQL databases materialized the merged rows
        for srv in [&mut cloud, &mut edge] {
            match srv.db.exec("SELECT COUNT(*) FROM log").unwrap() {
                edgstr_sql::SqlResult::Rows { rows, .. } => {
                    assert_eq!(rows[0][0], edgstr_sql::SqlValue::Int(30));
                }
                other => panic!("{other:?}"),
            }
        }
    }

    /// Message loss: under the ack protocol the endpoint does not advance
    /// its view of the peer on send, so a dropped delta is regenerated
    /// verbatim on the next round and a late duplicate is harmless.
    #[test]
    fn dropped_sync_message_is_recovered() {
        let mut seed = ServerProcess::from_source(APP).unwrap();
        seed.init().unwrap();
        let init = InitState::capture(&seed);
        let bindings = CrdtBindings::from_units([StateUnit::DbTable("log".into())]);
        let mut cloud = ServerProcess::from_source(APP).unwrap();
        cloud.init().unwrap();
        init.restore(&mut cloud);
        let mut cloud_set = CrdtSet::initialize(ActorId(1), &bindings, &init);
        let mut edge = ServerProcess::from_source(APP).unwrap();
        edge.init().unwrap();
        init.restore(&mut edge);
        let mut edge_set = CrdtSet::initialize(ActorId(2), &bindings, &init);

        let out = edge
            .handle(&HttpRequest::post(
                "/log",
                json!({"id": 1, "msg": "x"}),
                vec![],
            ))
            .unwrap();
        edge_set.absorb_outcome(&out, &edge);

        let mut e2c = SyncEndpoint::new();
        let mut c2e = SyncEndpoint::new();
        // first delta is LOST in transit (never received)
        let lost = e2c.generate(&edge_set);
        assert!(!lost.changes.is_empty());
        // no ack arrived, so peer_clock is unchanged and the next round
        // regenerates exactly the same changes
        let retry = e2c.generate(&edge_set);
        assert_eq!(retry.changes, lost.changes, "delta must be regenerated");
        c2e.receive(&mut cloud_set, &mut cloud, &retry);
        assert_eq!(cloud_set.tables["log"].len(), 1);
        // the original message finally arrives late: idempotent
        c2e.receive(&mut cloud_set, &mut cloud, &lost);
        assert_eq!(cloud_set.tables["log"].len(), 1);
        // the cloud's ack reaches the edge; nothing further to send
        let ack = c2e.generate(&cloud_set);
        e2c.receive(&mut edge_set, &mut edge, &ack);
        assert!(e2c.generate(&edge_set).changes.is_empty());
    }

    /// Pre-fix ablation: an endpoint in `Optimistic` mode assumes every
    /// generated delta is delivered, so a single dropped message leaves
    /// the replicas permanently diverged no matter how many further
    /// rounds run.
    #[test]
    fn optimistic_endpoint_diverges_on_loss() {
        let mut seed = ServerProcess::from_source(APP).unwrap();
        seed.init().unwrap();
        let init = InitState::capture(&seed);
        let bindings = CrdtBindings::from_units([StateUnit::DbTable("log".into())]);
        let mut cloud = ServerProcess::from_source(APP).unwrap();
        cloud.init().unwrap();
        init.restore(&mut cloud);
        let mut cloud_set = CrdtSet::initialize(ActorId(1), &bindings, &init);
        let mut edge = ServerProcess::from_source(APP).unwrap();
        edge.init().unwrap();
        init.restore(&mut edge);
        let mut edge_set = CrdtSet::initialize(ActorId(2), &bindings, &init);

        let out = edge
            .handle(&HttpRequest::post(
                "/log",
                json!({"id": 1, "msg": "x"}),
                vec![],
            ))
            .unwrap();
        edge_set.absorb_outcome(&out, &edge);

        let mut e2c = SyncEndpoint::optimistic();
        let mut c2e = SyncEndpoint::optimistic();
        // the delta is LOST, but the optimistic sender marks it delivered
        let _lost = e2c.generate(&edge_set);
        // further rounds never resend it
        for _ in 0..5 {
            let up = e2c.generate(&edge_set);
            assert!(up.changes.is_empty(), "optimistic endpoint never retries");
            c2e.receive(&mut cloud_set, &mut cloud, &up);
            let down = c2e.generate(&cloud_set);
            e2c.receive(&mut edge_set, &mut edge, &down);
        }
        assert_eq!(cloud_set.tables["log"].len(), 0, "cloud never sees the row");
        assert_ne!(
            cloud_set.tables["log"].to_json(),
            edge_set.tables["log"].to_json(),
            "replicas stay diverged under optimistic advancement"
        );
    }
}
