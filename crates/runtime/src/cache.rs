//! Read-set-versioned edge response cache (DESIGN.md §9).
//!
//! Serving a repeated request without re-executing the handler is sound
//! only when nothing the handler *read* has changed since the cached
//! execution. Every replica therefore keeps cheap monotone version
//! counters per state unit ([`UnitVersions`]), bumped on local mutation
//! and on every remote change application, and each cache entry records
//! the versions of its read set at fill time. A lookup is a hit iff every
//! recorded version still matches — otherwise the entry is dropped as
//! invalidated and the request executes normally.
//!
//! The row/epoch split keeps row-keyed reads precise: a read that selects
//! exactly one row (a [`ReadUnit::TableKeyed`] unit) validates against the
//! row's own counter plus a per-table *epoch* counter, while a whole-table
//! read validates against a counter bumped by every mutation of the table.
//! A row upsert/delete bumps that row and the any-mutation counter, so
//! whole-table readers invalidate but *other* rows' keyed readers do not;
//! an unattributable table change (e.g. a conservative remote apply) bumps
//! the epoch, invalidating keyed readers too.

use edgstr_analysis::{json_pk_string, request_field, EffectSummary, ReadUnit, StateUnit};
use edgstr_net::{HttpRequest, HttpResponse, Verb};
use edgstr_telemetry::{Counter, Gauge, Telemetry};
use std::collections::BTreeMap;
use std::fmt;

/// Virtual CPU cycles a replica spends serving one cache hit (key lookup,
/// version comparison, response serialization) — far below the cost of any
/// handler execution, which pays at least the SQL/host dispatch base cost.
pub const CACHE_HIT_CYCLES: u64 = 5_000;

/// Which services may be served from the response cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum CachePolicy {
    /// No caching (the baseline).
    #[default]
    Off,
    /// Only services whose profile shows no writes under any run.
    ReadOnlyServices,
    /// Every cacheable service; entries are still only filled from
    /// executions that were demonstrably effect-free.
    All,
}

/// One versioned state unit. `Row`/`TableAny`/`TableEpoch` implement the
/// row/epoch split described at module level; files and globals get the
/// same treatment with a per-name counter plus a structure-wide epoch for
/// changes that cannot be attributed to a single name.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub enum UnitKey {
    /// Bumped by *every* mutation of the table (what whole-table readers
    /// validate against).
    TableAny(String),
    /// Bumped only by mutations that cannot be attributed to a single row
    /// (what row-keyed readers validate against, alongside their row).
    TableEpoch(String),
    /// One row of one table, by canonical primary-key string.
    Row(String, String),
    /// Bumped by file-structure changes not attributable to one path.
    FilesEpoch,
    /// One file, by path.
    File(String),
    /// Bumped by global-doc changes not attributable to one name.
    GlobalsEpoch,
    /// One top-level global variable.
    Global(String),
}

/// Monotone version counters per state unit. Absent units are at version
/// zero; counters only ever increase, so a recorded `(unit, version)` pair
/// stays valid exactly until the unit's next mutation.
#[derive(Debug, Clone, Default)]
pub struct UnitVersions {
    map: BTreeMap<UnitKey, u64>,
}

impl UnitVersions {
    /// Current version of `key` (zero if never touched).
    #[must_use]
    pub fn get(&self, key: &UnitKey) -> u64 {
        self.map.get(key).copied().unwrap_or(0)
    }

    fn bump(&mut self, key: UnitKey) {
        *self.map.entry(key).or_insert(0) += 1;
    }

    /// A row was upserted or deleted: the row and the table's any-mutation
    /// counter move; the table epoch does not (other rows' keyed readers
    /// stay valid).
    pub fn touch_row(&mut self, table: &str, pk: &str) {
        self.bump(UnitKey::Row(table.to_string(), pk.to_string()));
        self.bump(UnitKey::TableAny(table.to_string()));
    }

    /// The table changed in a way not attributable to single rows:
    /// invalidate whole-table *and* row-keyed readers.
    pub fn touch_table(&mut self, table: &str) {
        self.bump(UnitKey::TableAny(table.to_string()));
        self.bump(UnitKey::TableEpoch(table.to_string()));
    }

    /// One file's contents changed.
    pub fn touch_file(&mut self, path: &str) {
        self.bump(UnitKey::File(path.to_string()));
    }

    /// The file structure changed unattributably.
    pub fn touch_files_all(&mut self) {
        self.bump(UnitKey::FilesEpoch);
    }

    /// One global variable changed.
    pub fn touch_global(&mut self, name: &str) {
        self.bump(UnitKey::Global(name.to_string()));
    }

    /// The globals doc changed unattributably.
    pub fn touch_globals_all(&mut self) {
        self.bump(UnitKey::GlobalsEpoch);
    }

    /// Record the current version of every key — the validity stamp a
    /// cache entry is filled with.
    #[must_use]
    pub fn snapshot(&self, keys: &[UnitKey]) -> Vec<(UnitKey, u64)> {
        keys.iter().map(|k| (k.clone(), self.get(k))).collect()
    }
}

/// Resolve a service's abstract read set to concrete version-counter keys
/// for one request. A `TableKeyed` unit becomes the selected row plus the
/// table epoch; when the keying parameter cannot be resolved from the
/// request it degrades to the whole-table counter. File and global reads
/// validate against their own counter plus the structure epoch.
#[must_use]
pub fn resolve_reads(summary: &EffectSummary, request: &HttpRequest) -> Vec<UnitKey> {
    let mut keys = Vec::new();
    for unit in &summary.reads {
        match unit {
            ReadUnit::Table(t) => keys.push(UnitKey::TableAny(t.clone())),
            ReadUnit::TableKeyed { table, param } => {
                match request_field(request, param)
                    .as_ref()
                    .and_then(json_pk_string)
                {
                    Some(pk) => {
                        keys.push(UnitKey::Row(table.clone(), pk));
                        keys.push(UnitKey::TableEpoch(table.clone()));
                    }
                    None => keys.push(UnitKey::TableAny(table.clone())),
                }
            }
            ReadUnit::File(p) => {
                keys.push(UnitKey::File(p.clone()));
                keys.push(UnitKey::FilesEpoch);
            }
            ReadUnit::Global(g) => {
                keys.push(UnitKey::Global(g.clone()));
                keys.push(UnitKey::GlobalsEpoch);
            }
        }
    }
    keys
}

/// Bump the global-variable units a concrete [`edgstr_analysis::HandleOutcome`]
/// cannot reveal: `global_writes` lists only newly-bound globals and the
/// CRDT absorb diff only covers bound globals, so a mutation of an unbound
/// existing global is invisible to outcome-driven bumping. The profiled
/// summary's static write set fills that gap; with no summary at all,
/// every global is presumed dirty.
pub fn bump_static_global_writes(versions: &mut UnitVersions, summary: Option<&EffectSummary>) {
    match summary {
        Some(s) => {
            for w in &s.writes {
                if let StateUnit::Global(g) = w {
                    versions.touch_global(g);
                }
            }
        }
        None => versions.touch_globals_all(),
    }
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = FNV_OFFSET;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

/// Identity of one cacheable request: verb, path, canonicalized params
/// (the vendored `serde_json` map is ordered, so `to_string` is
/// canonical), and a digest of the raw body bytes.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct CacheKey {
    verb: Verb,
    path: String,
    params: String,
    body_fnv: u64,
}

impl CacheKey {
    /// The cache key identifying `request`.
    #[must_use]
    pub fn for_request(request: &HttpRequest) -> CacheKey {
        CacheKey {
            verb: request.verb,
            path: request.path.clone(),
            params: serde_json::to_string(&request.params).expect("params serialize"),
            body_fnv: fnv1a(&request.body),
        }
    }

    fn cost(&self) -> usize {
        self.path.len() + self.params.len() + 16
    }
}

/// Hit/miss/eviction/invalidation counts for one cache.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CacheStats {
    pub hits: u64,
    pub misses: u64,
    pub evictions: u64,
    pub invalidations: u64,
}

impl CacheStats {
    /// Fold `other` into `self` (aggregation across replicas).
    pub fn absorb(&mut self, other: &CacheStats) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.evictions += other.evictions;
        self.invalidations += other.invalidations;
    }

    /// Hits over cacheable lookups (zero when nothing was looked up).
    #[must_use]
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

#[derive(Debug, Clone)]
struct Entry {
    response: HttpResponse,
    /// The read set's versions at fill time; valid iff all still match.
    reads: Vec<(UnitKey, u64)>,
    bytes: usize,
    stamp: u64,
}

/// Telemetry counter indices, in `edgstr_cache_events_total` label order.
const HIT: usize = 0;
const MISS: usize = 1;
const EVICT: usize = 2;
const INVALIDATE: usize = 3;
const EVENT_OPS: [&str; 4] = ["hit", "miss", "evict", "invalidate"];

/// One replica's response cache: an LRU map under a byte budget whose
/// entries are validated against [`UnitVersions`] on every lookup.
pub struct ResponseCache {
    budget: usize,
    entries: BTreeMap<CacheKey, Entry>,
    /// Recency index: stamp → key, oldest first (the eviction order).
    recency: BTreeMap<u64, CacheKey>,
    bytes: usize,
    stamp: u64,
    stats: CacheStats,
    /// Registry counters (shared across replicas via the label set) when
    /// telemetry is enabled; `None` keeps the disabled path free.
    events: Option<[Counter; 4]>,
    hit_ratio: Option<Gauge>,
}

impl fmt::Debug for ResponseCache {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ResponseCache")
            .field("budget", &self.budget)
            .field("entries", &self.entries.len())
            .field("bytes", &self.bytes)
            .field("stats", &self.stats)
            .finish()
    }
}

impl ResponseCache {
    /// An empty cache with `budget_bytes` of entry capacity, reporting
    /// `cache.*` events to `telemetry` when it is enabled.
    #[must_use]
    pub fn new(budget_bytes: usize, telemetry: &Telemetry) -> ResponseCache {
        let events = telemetry
            .registry()
            .map(|reg| EVENT_OPS.map(|op| reg.counter("edgstr_cache_events_total", &[("op", op)])));
        let hit_ratio = telemetry
            .registry()
            .map(|reg| reg.gauge("edgstr_cache_hit_ratio", &[]));
        ResponseCache {
            budget: budget_bytes,
            entries: BTreeMap::new(),
            recency: BTreeMap::new(),
            bytes: 0,
            stamp: 0,
            stats: CacheStats::default(),
            events,
            hit_ratio,
        }
    }

    /// Lifetime hit/miss/eviction/invalidation counts.
    #[must_use]
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Resident entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache holds no entries.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Resident entry bytes (always within the budget).
    #[must_use]
    pub fn bytes(&self) -> usize {
        self.bytes
    }

    /// Drop every entry (a restarted replica's versions reset to zero, so
    /// stale entries could otherwise revalidate against fresh counters).
    pub fn clear(&mut self) {
        self.entries.clear();
        self.recency.clear();
        self.bytes = 0;
    }

    fn event(&self, idx: usize) {
        if let Some(events) = &self.events {
            events[idx].inc();
        }
    }

    fn publish_ratio(&self) {
        if let Some(g) = &self.hit_ratio {
            g.set(self.stats.hit_ratio());
        }
    }

    fn remove(&mut self, key: &CacheKey) {
        if let Some(e) = self.entries.remove(key) {
            self.recency.remove(&e.stamp);
            self.bytes -= e.bytes;
        }
    }

    /// Look up `key`, validating the stored read-set versions against
    /// `versions`. A version mismatch removes the entry (invalidation) and
    /// reports a miss.
    pub fn lookup(&mut self, key: &CacheKey, versions: &UnitVersions) -> Option<HttpResponse> {
        let valid = match self.entries.get(key) {
            None => {
                self.stats.misses += 1;
                self.event(MISS);
                self.publish_ratio();
                return None;
            }
            Some(e) => e.reads.iter().all(|(k, v)| versions.get(k) == *v),
        };
        if !valid {
            self.remove(key);
            self.stats.invalidations += 1;
            self.event(INVALIDATE);
            self.stats.misses += 1;
            self.event(MISS);
            self.publish_ratio();
            return None;
        }
        self.stamp += 1;
        let entry = self.entries.get_mut(key).expect("validated entry present");
        self.recency.remove(&entry.stamp);
        entry.stamp = self.stamp;
        self.recency.insert(self.stamp, key.clone());
        let response = entry.response.clone();
        self.stats.hits += 1;
        self.event(HIT);
        self.publish_ratio();
        Some(response)
    }

    /// Insert a response under `key` with its read-set version stamp,
    /// evicting least-recently-used entries until the budget holds. An
    /// entry larger than the whole budget is not cached.
    pub fn fill(&mut self, key: CacheKey, response: &HttpResponse, reads: Vec<(UnitKey, u64)>) {
        let bytes = response.size() + key.cost() + reads.len() * 48 + 64;
        if bytes > self.budget {
            return;
        }
        self.remove(&key);
        self.stamp += 1;
        self.recency.insert(self.stamp, key.clone());
        self.bytes += bytes;
        self.entries.insert(
            key,
            Entry {
                response: response.clone(),
                reads,
                bytes,
                stamp: self.stamp,
            },
        );
        while self.bytes > self.budget {
            let victim = self
                .recency
                .values()
                .next()
                .expect("over-budget cache has entries")
                .clone();
            self.remove(&victim);
            self.stats.evictions += 1;
            self.event(EVICT);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::json;

    fn resp(n: i64) -> HttpResponse {
        HttpResponse::ok(json!({ "n": n }))
    }

    fn key(i: usize) -> CacheKey {
        CacheKey::for_request(&HttpRequest::get("/r", json!({ "i": i })))
    }

    #[test]
    fn hit_until_read_unit_version_moves() {
        let mut v = UnitVersions::default();
        let mut c = ResponseCache::new(64 * 1024, &Telemetry::disabled());
        let reads = vec![UnitKey::TableAny("t".into())];
        c.fill(key(1), &resp(1), v.snapshot(&reads));
        assert_eq!(c.lookup(&key(1), &v), Some(resp(1)));
        v.touch_row("t", "x"); // bumps TableAny
        assert_eq!(c.lookup(&key(1), &v), None, "stale entry must invalidate");
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().invalidations, 1);
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn row_keyed_entries_survive_other_rows_writes() {
        let mut v = UnitVersions::default();
        let mut c = ResponseCache::new(64 * 1024, &Telemetry::disabled());
        let keyed = vec![
            UnitKey::Row("t".into(), "a".into()),
            UnitKey::TableEpoch("t".into()),
        ];
        let whole = vec![UnitKey::TableAny("t".into())];
        c.fill(key(1), &resp(1), v.snapshot(&keyed));
        c.fill(key(2), &resp(2), v.snapshot(&whole));
        v.touch_row("t", "b");
        assert_eq!(c.lookup(&key(1), &v), Some(resp(1)), "other row untouched");
        assert_eq!(c.lookup(&key(2), &v), None, "whole-table reader stale");
        v.touch_row("t", "a");
        assert_eq!(c.lookup(&key(1), &v), None, "own row write invalidates");
        // an unattributable table change invalidates keyed readers too
        c.fill(key(3), &resp(3), v.snapshot(&keyed));
        v.touch_table("t");
        assert_eq!(c.lookup(&key(3), &v), None);
    }

    #[test]
    fn lru_eviction_respects_byte_budget() {
        let v = UnitVersions::default();
        // measure one entry, then budget for exactly two
        let mut probe = ResponseCache::new(1 << 20, &Telemetry::disabled());
        probe.fill(key(1), &resp(1), Vec::new());
        let per_entry = probe.bytes();
        let budget = per_entry * 2 + per_entry / 2;
        let mut c = ResponseCache::new(budget, &Telemetry::disabled());
        c.fill(key(1), &resp(1), Vec::new());
        c.fill(key(2), &resp(2), Vec::new());
        assert_eq!(c.len(), 2);
        // touch 1 so 2 becomes the LRU victim
        assert!(c.lookup(&key(1), &v).is_some());
        c.fill(key(3), &resp(3), Vec::new());
        assert!(c.bytes() <= budget);
        assert!(c.lookup(&key(2), &v).is_none(), "LRU entry evicted");
        assert!(c.lookup(&key(1), &v).is_some());
        assert!(c.lookup(&key(3), &v).is_some());
        assert!(c.stats().evictions >= 1);
        // an entry larger than the whole budget is refused outright
        let mut tiny = ResponseCache::new(16, &Telemetry::disabled());
        tiny.fill(key(9), &resp(9), Vec::new());
        assert!(tiny.is_empty());
    }

    #[test]
    fn cache_key_distinguishes_params_and_body() {
        let a = CacheKey::for_request(&HttpRequest::get("/r", json!({ "k": 1 })));
        let b = CacheKey::for_request(&HttpRequest::get("/r", json!({ "k": 2 })));
        assert_ne!(a, b);
        let c = CacheKey::for_request(&HttpRequest::post("/r", json!({}), b"x".to_vec()));
        let d = CacheKey::for_request(&HttpRequest::post("/r", json!({}), b"y".to_vec()));
        assert_ne!(c, d);
        let e = CacheKey::for_request(&HttpRequest::get("/r", json!({ "k": 1 })));
        assert_eq!(a, e);
    }

    #[test]
    fn telemetry_counters_mirror_stats() {
        let telemetry = Telemetry::recording();
        let mut v = UnitVersions::default();
        let mut c = ResponseCache::new(64 * 1024, &telemetry);
        let reads = vec![UnitKey::Global("g".into())];
        assert!(c.lookup(&key(1), &v).is_none()); // miss
        c.fill(key(1), &resp(1), v.snapshot(&reads));
        assert!(c.lookup(&key(1), &v).is_some()); // hit
        v.touch_global("g");
        assert!(c.lookup(&key(1), &v).is_none()); // invalidate + miss
        let reg = telemetry.registry().unwrap();
        let count = |op: &str| {
            reg.counter("edgstr_cache_events_total", &[("op", op)])
                .get()
        };
        assert_eq!(count("hit"), c.stats().hits);
        assert_eq!(count("miss"), c.stats().misses);
        assert_eq!(count("invalidate"), c.stats().invalidations);
        let ratio = reg.gauge("edgstr_cache_hit_ratio", &[]).get();
        assert!((ratio - c.stats().hit_ratio()).abs() < 1e-12);
    }

    /// Compile-time Send audit: the whole cache — entries, version
    /// counters, and its telemetry handles (atomic since the parallel
    /// executor landed) — lives inside a worker-owned replica, so every
    /// piece must be `Send` for the replica builder to move it onto its
    /// thread.
    #[test]
    fn cache_types_are_send() {
        fn assert_send<T: Send>() {}
        assert_send::<ResponseCache>();
        assert_send::<CacheStats>();
        assert_send::<CacheKey>();
        assert_send::<UnitKey>();
        assert_send::<UnitVersions>();
    }
}
