//! Edge-cluster load balancing and elasticity (§IV-D).
//!
//! The paper's load balancer "directs client request traffic to the edge
//! nodes with the fewest active connections" and "estimates the expected
//! volume of traffic by monitoring the number of active connections",
//! dynamically creating/parking replicas as utilization changes. The
//! round-robin strategy is provided as the ablation baseline.

/// Load-balancing strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BalanceStrategy {
    /// The paper's policy: fewest active connections wins.
    LeastConnections,
    /// Ablation baseline: rotate over active replicas.
    RoundRobin,
}

/// The cluster load balancer.
#[derive(Debug, Clone)]
pub struct LoadBalancer {
    pub strategy: BalanceStrategy,
    rr_cursor: usize,
}

impl LoadBalancer {
    /// A balancer with the given strategy.
    pub fn new(strategy: BalanceStrategy) -> LoadBalancer {
        LoadBalancer {
            strategy,
            rr_cursor: 0,
        }
    }

    /// Pick a replica index. `connections[i]` is replica `i`'s active
    /// connection count; `active[i]` marks replicas that are powered on.
    /// Returns `None` when no replica is active.
    pub fn pick(&mut self, connections: &[usize], active: &[bool]) -> Option<usize> {
        let candidates: Vec<usize> = (0..connections.len()).filter(|&i| active[i]).collect();
        if candidates.is_empty() {
            return None;
        }
        match self.strategy {
            BalanceStrategy::LeastConnections => {
                candidates.into_iter().min_by_key(|&i| (connections[i], i))
            }
            BalanceStrategy::RoundRobin => {
                self.rr_cursor += 1;
                Some(candidates[self.rr_cursor % candidates.len()])
            }
        }
    }
}

/// The elasticity controller: decides how many replicas should be active
/// given the observed in-flight load. Idle replicas are parked in
/// low-power mode rather than shut down, so they can be "brought back to
/// the running mode without incurring unnecessary delays" (§IV-D).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Autoscaler {
    /// Target concurrent connections per active replica.
    pub target_per_replica: usize,
    /// Never park below this many replicas.
    pub min_active: usize,
}

impl Default for Autoscaler {
    fn default() -> Self {
        Autoscaler {
            target_per_replica: 4,
            min_active: 1,
        }
    }
}

impl Autoscaler {
    /// Desired number of active replicas for `inflight` total connections
    /// across a cluster of `total` replicas.
    pub fn desired(&self, inflight: usize, total: usize) -> usize {
        let need = inflight.div_ceil(self.target_per_replica.max(1));
        need.clamp(self.min_active, total.max(self.min_active))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn least_connections_picks_emptiest() {
        let mut lb = LoadBalancer::new(BalanceStrategy::LeastConnections);
        let picked = lb.pick(&[3, 1, 2], &[true, true, true]);
        assert_eq!(picked, Some(1));
    }

    #[test]
    fn least_connections_skips_parked() {
        let mut lb = LoadBalancer::new(BalanceStrategy::LeastConnections);
        let picked = lb.pick(&[3, 0, 2], &[true, false, true]);
        assert_eq!(picked, Some(2));
    }

    #[test]
    fn round_robin_rotates_over_active() {
        let mut lb = LoadBalancer::new(BalanceStrategy::RoundRobin);
        let active = [true, false, true];
        let a = lb.pick(&[0, 0, 0], &active).unwrap();
        let b = lb.pick(&[0, 0, 0], &active).unwrap();
        let c = lb.pick(&[0, 0, 0], &active).unwrap();
        assert_ne!(a, 1);
        assert_ne!(b, 1);
        assert_ne!(a, b);
        assert_eq!(a, c);
    }

    #[test]
    fn no_active_replicas_returns_none() {
        let mut lb = LoadBalancer::new(BalanceStrategy::LeastConnections);
        assert_eq!(lb.pick(&[0, 0], &[false, false]), None);
    }

    #[test]
    fn ties_break_deterministically() {
        let mut lb = LoadBalancer::new(BalanceStrategy::LeastConnections);
        assert_eq!(lb.pick(&[1, 1, 1], &[true, true, true]), Some(0));
    }

    #[test]
    fn autoscaler_scales_with_load() {
        let a = Autoscaler {
            target_per_replica: 4,
            min_active: 1,
        };
        assert_eq!(a.desired(0, 4), 1);
        assert_eq!(a.desired(4, 4), 1);
        assert_eq!(a.desired(5, 4), 2);
        assert_eq!(a.desired(16, 4), 4);
        assert_eq!(a.desired(100, 4), 4); // capped at cluster size
    }

    #[test]
    fn autoscaler_respects_min_active() {
        let a = Autoscaler {
            target_per_replica: 4,
            min_active: 2,
        };
        assert_eq!(a.desired(0, 4), 2);
    }
}
