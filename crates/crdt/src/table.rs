//! `CRDT-Table`: a replicated database table (§III-G.1).
//!
//! EdgStr wraps each replicated SQL table into a CRDT whose rows are keyed
//! by primary key; concurrent cell updates resolve last-writer-wins, row
//! inserts/deletes follow add-wins semantics. The runtime connects the SQL
//! engine's write statements to [`CrdtTable::upsert_row`] /
//! [`CrdtTable::update_cell`] / [`CrdtTable::delete_row`].

use crate::change::Change;
use crate::doc::{CrdtError, Doc, KeyTouch};
use crate::ids::{ActorId, VClock};
use crate::path;
use serde_json::Value as Json;

/// A replicated table: rows keyed by primary key, cells merged LWW.
#[derive(Debug, Clone)]
pub struct CrdtTable {
    doc: Doc,
    name: String,
}

impl CrdtTable {
    /// Create an empty replicated table.
    ///
    /// The `rows` container is created by the deterministic genesis actor,
    /// so two replicas that each call `new` share the container identity
    /// and concurrent row inserts union (rather than one replica's rows
    /// being shadowed by a concurrently-created container).
    pub fn new(actor: ActorId, name: impl Into<String>) -> Self {
        Self::from_snapshot(actor, name, &[])
    }

    /// Initialize from a snapshot of rows: `pk → row object`.
    ///
    /// Master and replicas initialized from the same snapshot share object
    /// identities, so subsequent changes interleave cleanly.
    pub fn from_snapshot(actor: ActorId, name: impl Into<String>, rows: &[(String, Json)]) -> Self {
        let mut map = serde_json::Map::new();
        for (pk, row) in rows {
            map.insert(pk.clone(), row.clone());
        }
        let snapshot = serde_json::json!({ "rows": Json::Object(map) });
        CrdtTable {
            doc: Doc::from_snapshot(actor, &snapshot),
            name: name.into(),
        }
    }

    /// The table name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The owning actor.
    pub fn actor(&self) -> ActorId {
        self.doc.actor()
    }

    /// This replica's change clock.
    pub fn clock(&self) -> &VClock {
        self.doc.clock()
    }

    /// Insert or overwrite the row at `pk`.
    ///
    /// # Errors
    ///
    /// Propagates document errors (should not occur for well-formed rows).
    pub fn upsert_row(&mut self, pk: &str, row: &Json) -> Result<(), CrdtError> {
        self.doc.put(&path!["rows", pk.to_string()], row.clone())
    }

    /// Update a single cell of the row at `pk` (fine-grained merge unit).
    ///
    /// # Errors
    ///
    /// Propagates document errors.
    pub fn update_cell(&mut self, pk: &str, column: &str, value: &Json) -> Result<(), CrdtError> {
        self.doc.put(
            &path!["rows", pk.to_string(), column.to_string()],
            value.clone(),
        )
    }

    /// Delete the row at `pk` (no-op when absent).
    ///
    /// # Errors
    ///
    /// Propagates document errors.
    pub fn delete_row(&mut self, pk: &str) -> Result<(), CrdtError> {
        if self.get_row(pk).is_some() {
            self.doc.delete(&path!["rows", pk.to_string()])
        } else {
            Ok(())
        }
    }

    /// Read the row at `pk`.
    pub fn get_row(&self, pk: &str) -> Option<Json> {
        self.doc.get(&path!["rows", pk.to_string()])
    }

    /// All `(pk, row)` pairs, ordered by primary key.
    pub fn rows(&self) -> Vec<(String, Json)> {
        let pks = self.doc.map_keys(&path!["rows"]);
        pks.into_iter()
            .filter_map(|pk| {
                let row = self.doc.get(&path!["rows", pk.clone()])?;
                Some((pk, row))
            })
            .collect()
    }

    /// Number of live rows.
    pub fn len(&self) -> usize {
        self.rows().len()
    }

    /// Whether the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Changes this replica knows that `since` has not observed.
    pub fn get_changes(&self, since: &VClock) -> Vec<Change> {
        self.doc.get_changes(since)
    }

    /// Apply remote changes; returns how many were applied.
    ///
    /// # Errors
    ///
    /// Propagates [`CrdtError`] on malformed changes.
    pub fn apply_changes(&mut self, changes: &[Change]) -> Result<usize, CrdtError> {
        self.doc.apply_changes(changes)
    }

    /// Consuming variant of [`CrdtTable::apply_changes`] for the hot sync
    /// path (no per-delta clone).
    ///
    /// # Errors
    ///
    /// Propagates [`CrdtError`] on malformed changes.
    pub fn apply_changes_owned(&mut self, changes: Vec<Change>) -> Result<usize, CrdtError> {
        self.doc.apply_changes_owned(changes)
    }

    /// Like [`CrdtTable::apply_changes_owned`], additionally reporting which
    /// primary keys the applied ops touched (projected onto the `rows`
    /// container; `whole` is set for anything that could not be pinned to a
    /// single row).
    ///
    /// # Errors
    ///
    /// Propagates [`CrdtError`] on malformed changes.
    pub fn apply_changes_owned_tracked(
        &mut self,
        changes: Vec<Change>,
    ) -> Result<(usize, KeyTouch), CrdtError> {
        let (applied, touched) = self.doc.apply_changes_owned_tracked(changes)?;
        Ok((applied, touched.project("rows")))
    }

    /// Retained change-log length (see [`Doc::history_len`]).
    pub fn history_len(&self) -> usize {
        self.doc.history_len()
    }

    /// Fold acked history at or below `frontier` into the snapshot; returns
    /// the number of changes dropped (see [`Doc::compact`]).
    pub fn compact(&mut self, frontier: &VClock) -> usize {
        self.doc.compact(frontier)
    }

    /// Serialize as snapshot + retained tail (see [`Doc::save`]).
    pub fn save(&self) -> Vec<u8> {
        self.doc.save()
    }

    /// [`CrdtTable::save`] as a JSON value (see [`Doc::save_json`]).
    pub fn save_json(&self) -> Json {
        self.doc.save_json()
    }

    /// Restore from [`CrdtTable::save`] bytes, owned by `actor`.
    ///
    /// # Errors
    ///
    /// Propagates [`CrdtError`] from [`Doc::load`].
    pub fn load(actor: ActorId, name: impl Into<String>, bytes: &[u8]) -> Result<Self, CrdtError> {
        Ok(CrdtTable {
            doc: Doc::load(actor, bytes)?,
            name: name.into(),
        })
    }

    /// Restore from a [`CrdtTable::save_json`] value, owned by `actor`.
    ///
    /// # Errors
    ///
    /// Propagates [`CrdtError`] from [`Doc::load_json`].
    pub fn load_json(
        actor: ActorId,
        name: impl Into<String>,
        value: &Json,
    ) -> Result<Self, CrdtError> {
        Ok(CrdtTable {
            doc: Doc::load_json(actor, value)?,
            name: name.into(),
        })
    }

    /// Full table contents as JSON (`pk → row`).
    pub fn to_json(&self) -> Json {
        self.doc
            .get(&path!["rows"])
            .unwrap_or(Json::Object(Default::default()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::json;

    #[test]
    fn upsert_get_delete() {
        let mut t = CrdtTable::new(ActorId(1), "books");
        t.upsert_row("1", &json!({"title": "Dune", "stock": 3}))
            .unwrap();
        assert_eq!(t.get_row("1").unwrap()["title"], json!("Dune"));
        assert_eq!(t.len(), 1);
        t.delete_row("1").unwrap();
        assert!(t.get_row("1").is_none());
        assert!(t.is_empty());
    }

    #[test]
    fn concurrent_cell_updates_merge_per_column() {
        let snap = vec![("1".to_string(), json!({"title": "Dune", "stock": 3}))];
        let mut cloud = CrdtTable::from_snapshot(ActorId(1), "books", &snap);
        let mut edge = CrdtTable::from_snapshot(ActorId(2), "books", &snap);
        cloud
            .update_cell("1", "title", &json!("Dune (2nd ed)"))
            .unwrap();
        edge.update_cell("1", "stock", &json!(2)).unwrap();
        let cc = cloud.get_changes(edge.clock());
        let ec = edge.get_changes(cloud.clock());
        cloud.apply_changes(&ec).unwrap();
        edge.apply_changes(&cc).unwrap();
        assert_eq!(cloud.to_json(), edge.to_json());
        let row = cloud.get_row("1").unwrap();
        assert_eq!(row["title"], json!("Dune (2nd ed)"));
        assert_eq!(row["stock"], json!(2));
    }

    #[test]
    fn concurrent_inserts_of_different_rows_union() {
        let mut a = CrdtTable::new(ActorId(1), "t");
        let mut b = CrdtTable::new(ActorId(2), "t");
        a.upsert_row("a1", &json!({"v": 1})).unwrap();
        b.upsert_row("b1", &json!({"v": 2})).unwrap();
        let ca = a.get_changes(b.clock());
        let cb = b.get_changes(a.clock());
        a.apply_changes(&cb).unwrap();
        b.apply_changes(&ca).unwrap();
        assert_eq!(a.len(), 2);
        assert_eq!(a.to_json(), b.to_json());
    }

    #[test]
    fn delete_vs_concurrent_nested_update_delete_wins() {
        // Automerge semantics: deleting a row tombstones the subtree; a
        // concurrent update *inside* the subtree does not resurrect it.
        let snap = vec![("1".to_string(), json!({"v": 1}))];
        let mut a = CrdtTable::from_snapshot(ActorId(1), "t", &snap);
        let mut b = CrdtTable::from_snapshot(ActorId(2), "t", &snap);
        a.delete_row("1").unwrap();
        b.update_cell("1", "v", &json!(2)).unwrap();
        a.apply_changes(&b.get_changes(a.clock())).unwrap();
        b.apply_changes(&a.get_changes(b.clock())).unwrap();
        assert_eq!(a.to_json(), b.to_json());
        assert!(a.get_row("1").is_none());
    }

    #[test]
    fn delete_vs_concurrent_row_upsert_add_wins() {
        // ...but a concurrent *key-level* re-assignment (row upsert)
        // survives the delete: add-wins at the key level.
        let snap = vec![("1".to_string(), json!({"v": 1}))];
        let mut a = CrdtTable::from_snapshot(ActorId(1), "t", &snap);
        let mut b = CrdtTable::from_snapshot(ActorId(2), "t", &snap);
        a.delete_row("1").unwrap();
        b.upsert_row("1", &json!({"v": 2})).unwrap();
        a.apply_changes(&b.get_changes(a.clock())).unwrap();
        b.apply_changes(&a.get_changes(b.clock())).unwrap();
        assert_eq!(a.to_json(), b.to_json());
        assert_eq!(a.get_row("1"), Some(json!({"v": 2})));
    }

    #[test]
    fn rows_ordered_by_pk() {
        let mut t = CrdtTable::new(ActorId(1), "t");
        t.upsert_row("b", &json!({})).unwrap();
        t.upsert_row("a", &json!({})).unwrap();
        let pks: Vec<String> = t.rows().into_iter().map(|(pk, _)| pk).collect();
        assert_eq!(pks, vec!["a", "b"]);
    }
}
