//! Per-peer synchronization protocol state.
//!
//! The paper's transformed services exchange `cloud_state` / `edge_state`
//! messages over a bidirectional socket (§III-G.1, Fig. 5b). A
//! [`PeerSync`] tracks what a peer is known to have, so each sync round
//! ships only the delta; [`SyncMessage::wire_size`] is the WAN cost the
//! synchronization experiments account for (Fig. 10a, Table II `WAN_e`).

use crate::change::{batch_wire_size, Change};
use crate::ids::{ActorId, VClock};
use serde::{Deserialize, Serialize};

/// One synchronization message: the sender's clock plus the changes the
/// peer was missing at generation time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SyncMessage {
    /// Replica that produced this message.
    pub sender: ActorId,
    /// The sender's clock after including `changes`.
    pub clock: VClock,
    /// The delta for the peer.
    pub changes: Vec<Change>,
}

impl SyncMessage {
    /// Bytes this message costs on the wire (clock overhead + changes).
    pub fn wire_size(&self) -> usize {
        let clock_bytes = serde_json::to_vec(&self.clock).map(|v| v.len()).unwrap_or(0);
        16 + clock_bytes + batch_wire_size(&self.changes)
    }

    /// Whether the message carries no changes (pure heartbeat).
    pub fn is_empty(&self) -> bool {
        self.changes.is_empty()
    }
}

/// Synchronization state this replica keeps about one peer.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PeerSync {
    /// The peer's clock as far as we know (from its last message).
    pub peer_clock: VClock,
    /// Total bytes sent to this peer.
    pub bytes_sent: usize,
    /// Total bytes received from this peer.
    pub bytes_received: usize,
    /// Messages sent.
    pub messages_sent: usize,
    /// Messages received.
    pub messages_received: usize,
}

impl PeerSync {
    /// Fresh state: assume the peer has nothing.
    pub fn new() -> Self {
        PeerSync::default()
    }

    /// Build the next outgoing message for this peer from any replicated
    /// structure exposing `get_changes`.
    pub fn generate<F>(&mut self, sender: ActorId, clock: VClock, get_changes: F) -> SyncMessage
    where
        F: FnOnce(&VClock) -> Vec<Change>,
    {
        let changes = get_changes(&self.peer_clock);
        let msg = SyncMessage {
            sender,
            clock,
            changes,
        };
        self.bytes_sent += msg.wire_size();
        self.messages_sent += 1;
        // optimistically assume delivery; the peer's next message corrects
        // the view if the link dropped it
        for c in &msg.changes {
            self.peer_clock.observe(c.actor, c.seq);
        }
        msg
    }

    /// Record an incoming message and return its changes for application.
    pub fn receive<'m>(&mut self, msg: &'m SyncMessage) -> &'m [Change] {
        self.bytes_received += msg.wire_size();
        self.messages_received += 1;
        self.peer_clock.merge(&msg.clock);
        &msg.changes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::doc::Doc;
    use crate::path;
    use serde_json::json;

    #[test]
    fn delta_sync_sends_each_change_once() {
        let mut cloud = Doc::new(ActorId(1));
        let mut edge = Doc::new(ActorId(2));
        let mut cloud_view = PeerSync::new(); // cloud's view of edge
        let mut edge_view = PeerSync::new(); // edge's view of cloud

        cloud.put(&path!["a"], json!(1)).unwrap();
        let m1 = cloud_view.generate(cloud.actor(), cloud.clock().clone(), |since| {
            cloud.get_changes(since)
        });
        assert_eq!(m1.changes.len(), 1);
        edge.apply_changes(edge_view.receive(&m1)).unwrap();

        // next round with no new changes is empty
        let m2 = cloud_view.generate(cloud.actor(), cloud.clock().clone(), |since| {
            cloud.get_changes(since)
        });
        assert!(m2.is_empty());

        cloud.put(&path!["b"], json!(2)).unwrap();
        let m3 = cloud_view.generate(cloud.actor(), cloud.clock().clone(), |since| {
            cloud.get_changes(since)
        });
        assert_eq!(m3.changes.len(), 1);
        edge.apply_changes(edge_view.receive(&m3)).unwrap();
        assert_eq!(edge.to_json(), cloud.to_json());
    }

    #[test]
    fn traffic_accounting_accumulates() {
        let mut doc = Doc::new(ActorId(1));
        doc.put(&path!["k"], json!("v")).unwrap();
        let mut view = PeerSync::new();
        let m = view.generate(doc.actor(), doc.clock().clone(), |s| doc.get_changes(s));
        assert!(m.wire_size() > 0);
        assert_eq!(view.bytes_sent, m.wire_size());
        assert_eq!(view.messages_sent, 1);
    }

    #[test]
    fn bidirectional_round_converges() {
        let mut a = Doc::new(ActorId(1));
        let mut b = Doc::new(ActorId(2));
        let mut a_of_b = PeerSync::new();
        let mut b_of_a = PeerSync::new();
        a.put(&path!["x"], json!(1)).unwrap();
        b.put(&path!["y"], json!(2)).unwrap();
        let ma = a_of_b.generate(a.actor(), a.clock().clone(), |s| a.get_changes(s));
        b.apply_changes(b_of_a.receive(&ma)).unwrap();
        let mb = b_of_a.generate(b.actor(), b.clock().clone(), |s| b.get_changes(s));
        a.apply_changes(a_of_b.receive(&mb)).unwrap();
        assert_eq!(a.to_json(), b.to_json());
    }
}
