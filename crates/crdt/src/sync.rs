//! Per-peer synchronization protocol state.
//!
//! The paper's transformed services exchange `cloud_state` / `edge_state`
//! messages over a bidirectional socket (§III-G.1, Fig. 5b). A
//! [`PeerSync`] tracks what a peer is known to have, so each sync round
//! ships only the delta; [`SyncMessage::wire_size`] is the WAN cost the
//! synchronization experiments account for (Fig. 10a, Table II `WAN_e`).
//!
//! Delivery is *not* assumed reliable. A [`SyncMessage`] carries an
//! explicit [`SyncMessage::ack`] clock — the sender's applied state — and
//! by default a [`PeerSync`] advances its view of the peer only when such
//! an acknowledgment arrives ([`AdvanceMode::OnAck`]). A dropped message
//! therefore leaves `peer_clock` untouched and the missing changes are
//! regenerated on the next round. The pre-fix behavior, advancing
//! optimistically at send time, is kept as [`AdvanceMode::Optimistic`]
//! purely as an ablation: under loss it silently diverges (see the
//! `optimistic_mode_diverges_on_loss` test).

use crate::change::{batch_wire_size, Change};
use crate::ids::{ActorId, VClock};
use serde::{Deserialize, Serialize};
use serde_json::{Error as JsonError, Value as Json};

/// One synchronization message: the sender's clocks plus the changes the
/// peer was missing at generation time.
#[derive(Debug, Clone, PartialEq)]
pub struct SyncMessage {
    /// Replica that produced this message.
    pub sender: ActorId,
    /// The sender's clock after including `changes`.
    pub clock: VClock,
    /// Everything the sender has durably applied — a cumulative
    /// acknowledgment of changes received from the peer. The receiver may
    /// advance its `peer_clock` this far even if `changes` is empty.
    pub ack: VClock,
    /// The delta for the peer.
    pub changes: Vec<Change>,
}

impl Serialize for SyncMessage {
    fn to_json_value(&self) -> Json {
        let mut m = serde_json::Map::new();
        m.insert("sender".into(), self.sender.to_json_value());
        m.insert("clock".into(), self.clock.to_json_value());
        m.insert("ack".into(), self.ack.to_json_value());
        m.insert(
            "changes".into(),
            Json::Array(self.changes.iter().map(Serialize::to_json_value).collect()),
        );
        Json::Object(m)
    }
}

impl Deserialize for SyncMessage {
    fn from_json_value(v: &Json) -> Result<Self, JsonError> {
        let obj = v
            .as_object()
            .ok_or_else(|| JsonError::custom("SyncMessage: expected object"))?;
        let get = |name: &str| -> Result<&Json, JsonError> {
            obj.get(name)
                .ok_or_else(|| JsonError::custom(format!("SyncMessage: missing '{name}'")))
        };
        Ok(SyncMessage {
            sender: ActorId::from_json_value(get("sender")?)?,
            clock: VClock::from_json_value(get("clock")?)?,
            ack: VClock::from_json_value(get("ack")?)?,
            changes: get("changes")?
                .as_array()
                .ok_or_else(|| JsonError::custom("SyncMessage: changes must be an array"))?
                .iter()
                .map(Change::from_json_value)
                .collect::<Result<_, _>>()?,
        })
    }
}

impl SyncMessage {
    /// Bytes this message costs on the wire (clock overhead + changes).
    ///
    /// Serialization failure here would silently zero out the traffic
    /// accounting the experiments are built on, so it panics instead.
    pub fn wire_size(&self) -> usize {
        let clock_bytes = serde_json::to_vec(&self.clock)
            .expect("SyncMessage clock must serialize for traffic accounting")
            .len();
        let ack_bytes = serde_json::to_vec(&self.ack)
            .expect("SyncMessage ack must serialize for traffic accounting")
            .len();
        16 + clock_bytes + ack_bytes + batch_wire_size(&self.changes)
    }

    /// Whether the message carries no changes (pure heartbeat/ack).
    pub fn is_empty(&self) -> bool {
        self.changes.is_empty()
    }
}

/// How a [`PeerSync`] advances its model of the peer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AdvanceMode {
    /// Advance `peer_clock` only when the peer acknowledges (default:
    /// loss-tolerant — dropped deltas are regenerated).
    #[default]
    OnAck,
    /// Advance at send time, assuming delivery (the pre-fix behavior,
    /// kept as an ablation knob; diverges permanently under loss).
    Optimistic,
}

/// Synchronization state this replica keeps about one peer.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PeerSync {
    /// The peer's clock as far as we know (from its last acknowledgment —
    /// or, in [`AdvanceMode::Optimistic`], from our own sends).
    pub peer_clock: VClock,
    /// Advancement policy for `peer_clock`.
    pub mode: AdvanceMode,
    /// Total bytes sent to this peer.
    pub bytes_sent: usize,
    /// Total bytes received from this peer.
    pub bytes_received: usize,
    /// Messages sent.
    pub messages_sent: usize,
    /// Messages received.
    pub messages_received: usize,
}

impl PeerSync {
    /// Fresh ack-driven state: assume the peer has nothing until it says
    /// otherwise.
    pub fn new() -> Self {
        PeerSync::default()
    }

    /// Fresh state using the pre-fix optimistic advancement (ablation
    /// only).
    pub fn optimistic() -> Self {
        PeerSync {
            mode: AdvanceMode::Optimistic,
            ..PeerSync::default()
        }
    }

    /// Build the next outgoing message for this peer from any replicated
    /// structure exposing `get_changes`. `clock` is the sender's applied
    /// clock after the enclosed changes; it doubles as the cumulative
    /// acknowledgment.
    pub fn generate<F>(&mut self, sender: ActorId, clock: VClock, get_changes: F) -> SyncMessage
    where
        F: FnOnce(&VClock) -> Vec<Change>,
    {
        let changes = get_changes(&self.peer_clock);
        let msg = SyncMessage {
            sender,
            ack: clock.clone(),
            clock,
            changes,
        };
        self.bytes_sent += msg.wire_size();
        self.messages_sent += 1;
        if self.mode == AdvanceMode::Optimistic {
            // Pre-fix behavior: assume delivery. If the link drops this
            // message nothing ever regenerates the changes — the peers
            // diverge until an unrelated write happens to cover the gap.
            for c in &msg.changes {
                self.peer_clock.observe(c.actor, c.seq);
            }
        }
        msg
    }

    /// Record an incoming message and return its changes for application.
    ///
    /// Both clocks advance `peer_clock`: `msg.clock` covers the changes
    /// the peer itself generated, `msg.ack` covers what it has applied
    /// from us — the acknowledgment that lets us stop resending.
    pub fn receive<'m>(&mut self, msg: &'m SyncMessage) -> &'m [Change] {
        self.bytes_received += msg.wire_size();
        self.messages_received += 1;
        self.peer_clock.merge(&msg.clock);
        self.peer_clock.merge(&msg.ack);
        &msg.changes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::doc::Doc;
    use crate::path;
    use serde_json::json;

    #[test]
    fn delta_sync_sends_each_change_once() {
        let mut cloud = Doc::new(ActorId(1));
        let mut edge = Doc::new(ActorId(2));
        let mut cloud_view = PeerSync::new(); // cloud's view of edge
        let mut edge_view = PeerSync::new(); // edge's view of cloud

        cloud.put(&path!["a"], json!(1)).unwrap();
        let m1 = cloud_view.generate(cloud.actor(), cloud.clock().clone(), |since| {
            cloud.get_changes(since)
        });
        assert_eq!(m1.changes.len(), 1);
        edge.apply_changes(edge_view.receive(&m1)).unwrap();

        // The edge acknowledges; only then does the cloud stop resending.
        let ack = edge_view.generate(edge.actor(), edge.clock().clone(), |since| {
            edge.get_changes(since)
        });
        cloud.apply_changes(cloud_view.receive(&ack)).unwrap();

        // next round with no new changes is empty
        let m2 = cloud_view.generate(cloud.actor(), cloud.clock().clone(), |since| {
            cloud.get_changes(since)
        });
        assert!(m2.is_empty());

        cloud.put(&path!["b"], json!(2)).unwrap();
        let m3 = cloud_view.generate(cloud.actor(), cloud.clock().clone(), |since| {
            cloud.get_changes(since)
        });
        assert_eq!(m3.changes.len(), 1);
        edge.apply_changes(edge_view.receive(&m3)).unwrap();
        assert_eq!(edge.to_json(), cloud.to_json());
    }

    #[test]
    fn traffic_accounting_accumulates() {
        let mut doc = Doc::new(ActorId(1));
        doc.put(&path!["k"], json!("v")).unwrap();
        let mut view = PeerSync::new();
        let m = view.generate(doc.actor(), doc.clock().clone(), |s| doc.get_changes(s));
        assert!(m.wire_size() > 0);
        assert_eq!(view.bytes_sent, m.wire_size());
        assert_eq!(view.messages_sent, 1);
    }

    #[test]
    fn bidirectional_round_converges() {
        let mut a = Doc::new(ActorId(1));
        let mut b = Doc::new(ActorId(2));
        let mut a_of_b = PeerSync::new();
        let mut b_of_a = PeerSync::new();
        a.put(&path!["x"], json!(1)).unwrap();
        b.put(&path!["y"], json!(2)).unwrap();
        let ma = a_of_b.generate(a.actor(), a.clock().clone(), |s| a.get_changes(s));
        b.apply_changes(b_of_a.receive(&ma)).unwrap();
        let mb = b_of_a.generate(b.actor(), b.clock().clone(), |s| b.get_changes(s));
        a.apply_changes(a_of_b.receive(&mb)).unwrap();
        assert_eq!(a.to_json(), b.to_json());
    }

    /// Regression anchor for the lost-delta bug: a dropped message's
    /// changes must be regenerated on the next round.
    #[test]
    fn dropped_message_is_regenerated_under_ack() {
        let mut cloud = Doc::new(ActorId(1));
        let mut edge = Doc::new(ActorId(2));
        let mut cloud_view = PeerSync::new();
        let mut edge_view = PeerSync::new();

        cloud.put(&path!["a"], json!(1)).unwrap();
        let dropped = cloud_view.generate(cloud.actor(), cloud.clock().clone(), |s| {
            cloud.get_changes(s)
        });
        assert_eq!(dropped.changes.len(), 1);
        // The network eats `dropped`. peer_clock must not have advanced:
        assert_eq!(cloud_view.peer_clock, VClock::new());

        // Next round regenerates the same delta and the edge converges.
        let retry = cloud_view.generate(cloud.actor(), cloud.clock().clone(), |s| {
            cloud.get_changes(s)
        });
        assert_eq!(retry.changes, dropped.changes);
        edge.apply_changes(edge_view.receive(&retry)).unwrap();
        assert_eq!(edge.to_json(), cloud.to_json());

        // Applying the late-arriving duplicate is harmless (idempotent).
        edge.apply_changes(&dropped.changes).unwrap();
        assert_eq!(edge.to_json(), cloud.to_json());
    }

    /// The pre-fix behavior, preserved as an ablation: optimistic
    /// advancement permanently diverges when a message is lost.
    #[test]
    fn optimistic_mode_diverges_on_loss() {
        let mut cloud = Doc::new(ActorId(1));
        let mut edge = Doc::new(ActorId(2));
        let mut cloud_view = PeerSync::optimistic();
        let mut edge_view = PeerSync::optimistic();

        cloud.put(&path!["a"], json!(1)).unwrap();
        let dropped = cloud_view.generate(cloud.actor(), cloud.clock().clone(), |s| {
            cloud.get_changes(s)
        });
        assert_eq!(dropped.changes.len(), 1);
        // The network eats the message, but the cloud already counted it
        // as delivered — every later round believes there is no delta.
        for _ in 0..5 {
            let m = cloud_view.generate(cloud.actor(), cloud.clock().clone(), |s| {
                cloud.get_changes(s)
            });
            assert!(m.is_empty(), "optimistic sender believes peer is current");
            edge.apply_changes(edge_view.receive(&m)).unwrap();
        }
        assert_ne!(
            edge.to_json(),
            cloud.to_json(),
            "replicas silently diverged"
        );
    }

    #[test]
    fn sync_message_serde_round_trip() {
        let mut doc = Doc::new(ActorId(3));
        doc.put(&path!["k"], json!({"nested": [1, 2]})).unwrap();
        let mut view = PeerSync::new();
        let m = view.generate(doc.actor(), doc.clock().clone(), |s| doc.get_changes(s));
        let bytes = serde_json::to_vec(&m).unwrap();
        let back: SyncMessage = serde_json::from_slice(&bytes).unwrap();
        assert_eq!(m, back);
    }
}
