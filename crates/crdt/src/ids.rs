//! Actor identifiers, operation identifiers, and vector clocks.

use serde::{Deserialize, Serialize};
use serde_json::{Error as JsonError, Value};
use std::collections::BTreeMap;
use std::fmt;

/// Identity of a replica (the cloud master or one edge node).
///
/// Actor ids totally order concurrent operations (ties on the Lamport
/// counter are broken by actor), so they must be unique per replica.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ActorId(pub u64);

impl Serialize for ActorId {
    fn to_json_value(&self) -> Value {
        Value::from(self.0)
    }
}

impl Deserialize for ActorId {
    fn from_json_value(v: &Value) -> Result<Self, JsonError> {
        v.as_u64()
            .map(ActorId)
            .ok_or_else(|| JsonError::custom("ActorId: expected u64"))
    }
}

impl ActorId {
    /// Construct an actor id from a raw integer.
    pub fn new(id: u64) -> Self {
        ActorId(id)
    }
}

impl fmt::Display for ActorId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "actor-{:x}", self.0)
    }
}

/// Identifier of a single CRDT operation: a Lamport counter paired with the
/// actor that generated it. The derived lexicographic order (counter first,
/// then actor) is the total order used for last-writer-wins resolution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct OpId {
    pub counter: u64,
    pub actor: ActorId,
}

// Wire format: the compact pair `[counter, actor]`.
impl Serialize for OpId {
    fn to_json_value(&self) -> Value {
        Value::Array(vec![Value::from(self.counter), self.actor.to_json_value()])
    }
}

impl Deserialize for OpId {
    fn from_json_value(v: &Value) -> Result<Self, JsonError> {
        match v.as_array().map(Vec::as_slice) {
            Some([counter, actor]) => Ok(OpId {
                counter: counter
                    .as_u64()
                    .ok_or_else(|| JsonError::custom("OpId: counter must be u64"))?,
                actor: ActorId::from_json_value(actor)?,
            }),
            _ => Err(JsonError::custom("OpId: expected [counter, actor]")),
        }
    }
}

impl OpId {
    /// Construct an op id.
    pub fn new(counter: u64, actor: ActorId) -> Self {
        OpId { counter, actor }
    }
}

impl fmt::Display for OpId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}@{}", self.counter, self.actor)
    }
}

/// A vector clock mapping each actor to the highest *change sequence
/// number* observed from it. Used both as change dependencies and as the
/// "since" cursor of `get_changes` (§III-G.1).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct VClock(pub BTreeMap<ActorId, u64>);

// Wire format: an object with decimal actor ids as keys (JSON object keys
// must be strings).
impl Serialize for VClock {
    fn to_json_value(&self) -> Value {
        let mut m = serde_json::Map::new();
        for (a, s) in &self.0 {
            m.insert(a.0.to_string(), Value::from(*s));
        }
        Value::Object(m)
    }
}

impl Deserialize for VClock {
    fn from_json_value(v: &Value) -> Result<Self, JsonError> {
        let obj = v
            .as_object()
            .ok_or_else(|| JsonError::custom("VClock: expected object"))?;
        let mut out = BTreeMap::new();
        for (k, val) in obj {
            let actor: u64 = k
                .parse()
                .map_err(|_| JsonError::custom("VClock: non-numeric actor key"))?;
            let seq = val
                .as_u64()
                .ok_or_else(|| JsonError::custom("VClock: seq must be u64"))?;
            out.insert(ActorId(actor), seq);
        }
        Ok(VClock(out))
    }
}

impl VClock {
    /// The empty clock (nothing observed).
    pub fn new() -> Self {
        VClock::default()
    }

    /// Sequence number observed for `actor` (0 when never seen).
    pub fn get(&self, actor: ActorId) -> u64 {
        self.0.get(&actor).copied().unwrap_or(0)
    }

    /// Record that `seq` changes from `actor` have been observed.
    /// Keeps the maximum.
    pub fn observe(&mut self, actor: ActorId, seq: u64) {
        let e = self.0.entry(actor).or_insert(0);
        if seq > *e {
            *e = seq;
        }
    }

    /// Whether every entry of `other` is ≤ the corresponding entry here
    /// (i.e. `other`'s dependencies are satisfied by this clock).
    pub fn dominates(&self, other: &VClock) -> bool {
        other.0.iter().all(|(a, s)| self.get(*a) >= *s)
    }

    /// Pointwise maximum with `other`.
    pub fn merge(&mut self, other: &VClock) {
        for (a, s) in &other.0 {
            self.observe(*a, *s);
        }
    }

    /// Pointwise minimum with `other` — the greatest clock dominated by
    /// both. An actor absent from either side has implicit 0, so only
    /// actors present in both with a nonzero minimum survive. This is the
    /// safe compaction frontier across a set of peer ack clocks.
    pub fn meet(&self, other: &VClock) -> VClock {
        let mut out = BTreeMap::new();
        for (a, s) in &self.0 {
            let m = (*s).min(other.get(*a));
            if m > 0 {
                out.insert(*a, m);
            }
        }
        VClock(out)
    }

    /// Total number of changes summarized by this clock.
    pub fn total(&self) -> u64 {
        self.0.values().sum()
    }

    /// Number of actors with a nonzero entry.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether no actor has been observed.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

impl fmt::Display for VClock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, (a, s)) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{a}:{s}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn opid_total_order_breaks_ties_by_actor() {
        let a = OpId::new(5, ActorId(1));
        let b = OpId::new(5, ActorId(2));
        let c = OpId::new(6, ActorId(1));
        assert!(a < b);
        assert!(b < c);
    }

    #[test]
    fn vclock_observe_keeps_max() {
        let mut c = VClock::new();
        c.observe(ActorId(1), 3);
        c.observe(ActorId(1), 2);
        assert_eq!(c.get(ActorId(1)), 3);
    }

    #[test]
    fn vclock_dominates() {
        let mut a = VClock::new();
        a.observe(ActorId(1), 2);
        a.observe(ActorId(2), 1);
        let mut deps = VClock::new();
        deps.observe(ActorId(1), 2);
        assert!(a.dominates(&deps));
        deps.observe(ActorId(3), 1);
        assert!(!a.dominates(&deps));
    }

    #[test]
    fn vclock_merge_pointwise_max() {
        let mut a = VClock::new();
        a.observe(ActorId(1), 2);
        let mut b = VClock::new();
        b.observe(ActorId(1), 1);
        b.observe(ActorId(2), 4);
        a.merge(&b);
        assert_eq!(a.get(ActorId(1)), 2);
        assert_eq!(a.get(ActorId(2)), 4);
        assert_eq!(a.total(), 6);
    }

    #[test]
    fn vclock_meet_pointwise_min() {
        let mut a = VClock::new();
        a.observe(ActorId(1), 5);
        a.observe(ActorId(2), 2);
        let mut b = VClock::new();
        b.observe(ActorId(1), 3);
        b.observe(ActorId(3), 7);
        let m = a.meet(&b);
        assert_eq!(m.get(ActorId(1)), 3);
        // actor 2 absent from b (implicit 0) and actor 3 absent from a
        assert_eq!(m.get(ActorId(2)), 0);
        assert_eq!(m.get(ActorId(3)), 0);
        assert!(a.dominates(&m));
        assert!(b.dominates(&m));
        assert_eq!(a.meet(&a), a);
    }

    #[test]
    fn serde_round_trip() {
        let id = OpId::new(7, ActorId(3));
        let s = serde_json::to_string(&id).unwrap();
        let back: OpId = serde_json::from_str(&s).unwrap();
        assert_eq!(id, back);
    }
}
